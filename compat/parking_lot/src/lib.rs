//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API surface the
//! workspace uses: infallible `lock()`/`read()`/`write()` (poisoning is
//! swallowed — a poisoned lock just hands back the inner guard, matching
//! parking_lot's no-poisoning semantics).

use std::fmt;
use std::sync::PoisonError;

/// Mutual exclusion with an infallible `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard of [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Reader–writer lock with infallible `read()`/`write()`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII read guard of [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII write guard of [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
