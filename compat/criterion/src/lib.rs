//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the Criterion API the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `bench_function`,
//! `benchmark_group`, `sample_size`, `Bencher::iter`) with a simple
//! wall-clock protocol: warm up, pick an iteration count that makes one
//! sample take a measurable slice of time, then record `sample_size`
//! samples. Results are printed per benchmark and appended as JSON lines to
//! `target/criterion-lite/<suite>.json` so downstream tooling can track
//! performance trajectories across commits.

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One measured benchmark.
#[derive(Clone, Debug)]
pub struct Record {
    /// Group name ("" when benched directly on [`Criterion`]).
    pub group: String,
    /// Benchmark id within the group.
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Median wall-clock nanoseconds per iteration.
    pub median_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
}

/// The benchmark driver; collects results and flushes them on drop.
pub struct Criterion {
    records: Vec<Record>,
    default_sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            records: Vec::new(),
            default_sample_size: 15,
            warm_up: Duration::from_millis(25),
            measurement: Duration::from_millis(75),
        }
    }
}

/// Passed to the closure of `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    /// Mean/median per-iteration nanos, filled by `iter`.
    result: Option<(f64, f64, usize)>,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher {
    /// Measures `f` and records per-iteration wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: find how many iterations fill one
        // sample's share of the measurement budget.
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < self.warm_up || iters < 3 {
            black_box(f());
            iters += 1;
            if iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
        let sample_budget =
            (self.measurement.as_nanos() as f64 / self.sample_size.max(1) as f64).max(1.0);
        let per_sample = ((sample_budget / per_iter.max(1.0)).ceil() as u64).clamp(1, 100_000);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let median = samples[samples.len() / 2];
        self.result = Some((mean, median, samples.len()));
    }
}

impl Criterion {
    /// Overrides the default number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1);
        self
    }

    /// Overrides the warm-up/calibration budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Overrides the total measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    fn run_one(
        &mut self,
        group: &str,
        name: &str,
        sample_size: usize,
        f: impl FnOnce(&mut Bencher),
    ) {
        let mut b = Bencher {
            result: None,
            sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
        };
        f(&mut b);
        let (mean_ns, median_ns, samples) = b.result.unwrap_or((f64::NAN, f64::NAN, 0));
        let id = if group.is_empty() {
            name.to_string()
        } else {
            format!("{group}/{name}")
        };
        println!(
            "bench {id:<48} mean {:>12.1} ns/iter  median {:>12.1} ns/iter",
            mean_ns, median_ns
        );
        self.records.push(Record {
            group: group.to_string(),
            name: name.to_string(),
            mean_ns,
            median_ns,
            samples,
        });
    }

    /// Benchmarks `f` under `name` (accepts `&str` or `String`, like
    /// criterion's `BenchmarkId`).
    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let n = self.default_sample_size;
        self.run_one("", name.as_ref(), n, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// All results measured so far.
    pub fn records(&self) -> &[Record] {
        &self.records
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        if self.records.is_empty() {
            return;
        }
        let suite = std::env::args()
            .next()
            .and_then(|p| {
                std::path::Path::new(&p)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
            })
            .unwrap_or_else(|| "bench".to_string());
        // Strip cargo's `-<hash>` suffix so reruns overwrite the same file.
        let suite = suite.split('-').next().unwrap_or(&suite).to_string();
        // Cargo runs bench binaries with cwd = the package dir; anchor the
        // output at the workspace root (nearest ancestor with Cargo.lock)
        // so every suite lands in the shared `target/`.
        let root = std::env::current_dir()
            .ok()
            .and_then(|d| {
                d.ancestors()
                    .find(|a| a.join("Cargo.lock").exists())
                    .map(std::path::Path::to_path_buf)
            })
            .unwrap_or_else(|| std::path::PathBuf::from("."));
        let dir = root.join("target").join("criterion-lite");
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let path = dir.join(format!("{suite}.json"));
        let Ok(mut out) = std::fs::File::create(&path) else {
            return;
        };
        let _ = writeln!(out, "[");
        for (i, r) in self.records.iter().enumerate() {
            let comma = if i + 1 == self.records.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "  {{\"group\":\"{}\",\"name\":\"{}\",\"mean_ns\":{:.1},\"median_ns\":{:.1},\"samples\":{}}}{comma}",
                r.group.escape_default(),
                r.name.escape_default(),
                r.mean_ns,
                r.median_ns,
                r.samples
            );
        }
        let _ = writeln!(out, "]");
        eprintln!("criterion-lite: wrote {}", path.display());
    }
}

/// A named group; mirrors `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks `f` under `name` within the group.
    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let n = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        let group = self.name.clone();
        self.criterion.run_one(&group, name.as_ref(), n, f);
        self
    }

    /// Ends the group (results are flushed when [`Criterion`] drops).
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group runner, mirroring criterion's macro —
/// both the positional form and the `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
        drop(g);
        let r = &c.records()[0];
        assert_eq!(r.group, "g");
        assert_eq!(r.name, "noop");
        assert!(r.mean_ns.is_finite() && r.mean_ns >= 0.0);
        c.records.clear(); // avoid writing JSON from unit tests
    }
}
