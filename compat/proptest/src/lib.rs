//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the subset of the proptest API the workspace's property tests use:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! - integer-range, tuple, [`Just`], `prop_map`, [`prop_oneof!`], and
//!   [`collection::vec`] strategies,
//! - [`any`] for primitive integers,
//! - `prop_assert!` / `prop_assert_eq!` (panic-based — no `Result` plumbing).
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports its deterministic case index
//!   instead of a minimized input.
//! - **Deterministic by construction.** Case `i` of test `t` is generated
//!   from `hash(t, i)`, so failures reproduce without a regression file.
//!   Set `PROPTEST_CASES` to override the case count globally.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! The deterministic generator driving every strategy.

    /// Splitmix64 stream, seeded per (test, case).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Generator for case `case` of the named test.
        pub fn for_case(test: &str, case: u64) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

use test_runner::TestRng;

/// Per-`proptest!`-block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count, honoring the `PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(u64::from(self.cases))
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. Unlike real proptest there is no shrinking: a
/// strategy is just a deterministic function of the [`TestRng`] stream.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates with `self`, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between type-erased alternatives.
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union of the given alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `alternatives` is empty.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one arm"
        );
        Union(alternatives)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                (*self.start() as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's full domain (see [`any`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for [`vec`](fn@vec).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy of vectors whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod strategy {
    //! Re-exports under proptest's module layout.
    pub use super::{Any, BoxedStrategy, FlatMap, Just, Map, Strategy, Union};
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
    /// Module alias so `prop::collection::vec(..)` resolves.
    pub use crate as prop;
}

/// Panic-based stand-in for proptest's `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Panic-based stand-in for proptest's `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Panic-based stand-in for proptest's `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// The test-defining macro. Each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over `cases` deterministic draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let cases = config.effective_cases();
            for case in 0..cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || $body,
                ));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest: {} failed at deterministic case {case}/{cases} \
                         (re-running reproduces it)",
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("ranges", 0);
        for _ in 0..200 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (-5i64..=5).generate(&mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![Just(1u32), Just(2), 10u32..20];
        let mut rng = crate::test_runner::TestRng::for_case("oneof", 1);
        let mut seen = [false; 3];
        for _ in 0..300 {
            match s.generate(&mut rng) {
                1 => seen[0] = true,
                2 => seen[1] = true,
                v if (10..20).contains(&v) => seen[2] = true,
                v => panic!("out of domain: {v}"),
            }
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn vec_and_map_compose() {
        let s = prop::collection::vec((0usize..4).prop_map(|x| x * 2), 1..6);
        let mut rng = crate::test_runner::TestRng::for_case("vec", 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..6).contains(&v.len()));
            assert!(v.iter().all(|x| x % 2 == 0 && *x < 8));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = crate::test_runner::TestRng::for_case("det", 7);
        let mut b = crate::test_runner::TestRng::for_case("det", 7);
        let s = (0u64..1000, 0u64..1000);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself works end to end.
        #[test]
        fn macro_smoke(a in 0usize..10, b in any::<u32>(), v in prop::collection::vec(0i64..5, 0..4)) {
            prop_assert!(a < 10);
            prop_assert_eq!(u64::from(b), u64::from(b));
            prop_assert!(v.len() < 4);
        }
    }
}
