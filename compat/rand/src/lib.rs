//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the workspace vendors the *tiny* subset of the `rand` API it actually
//! uses: a seedable deterministic generator (`rngs::StdRng`), the
//! [`SeedableRng`] and [`Rng`] traits, and [`seq::SliceRandom::shuffle`].
//!
//! Determinism is the only contract LGen-rs relies on (the autotuner's
//! "random search … deterministic per seed"); the streams differ from the
//! real `rand` crate's, which is fine because nothing golden-tests the
//! stream itself.

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers.
pub trait Rng: RngCore {
    /// Uniform sample from `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        range.start + (self.next_u64() % span) as usize
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    //! Named generator types.
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (splitmix64 core). Not the real
    /// `StdRng` algorithm — only determinism per seed is promised.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0xA076_1D64_78BD_642F,
            }
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.
    use super::RngCore;

    /// In-place random reordering.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<usize> = (0..20).collect();
        let mut rng = StdRng::seed_from_u64(7);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "20 elements virtually never shuffle to identity");
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let x = rng.gen_range(3..9);
            assert!((3..9).contains(&x));
        }
    }
}
