//! Offline stand-in for `crossbeam`.
//!
//! Provides the `crossbeam::channel` subset the workspace uses (unbounded
//! MPSC channels with cloneable senders), backed by `std::sync::mpsc`.

pub mod channel {
    //! Unbounded channels with the crossbeam API shape.

    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half; cloneable.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; fails only when the receiver is gone.
        ///
        /// # Errors
        ///
        /// Returns the message back if the channel is disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks for the next message.
        ///
        /// # Errors
        ///
        /// Errors when every sender is gone and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks for the next message with a deadline.
        ///
        /// # Errors
        ///
        /// Errors on timeout or disconnection.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// Errors when the queue is empty or disconnected.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Iterator draining the channel until disconnection.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(41).unwrap());
        tx.send(1).unwrap();
        let a = rx.recv().unwrap();
        let b = rx.recv().unwrap();
        assert_eq!(a + b, 42);
    }

    #[test]
    fn disconnection_is_reported() {
        let (tx, rx) = unbounded::<i32>();
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
