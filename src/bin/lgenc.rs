//! `lgenc` — the LGen command-line compiler.
//!
//! Reads a BLAC source file (declarations + equation, see
//! `lgen::ll::parse`), compiles it for a target processor, validates it
//! against the naive reference, prints the generated C and the simulated
//! performance.
//!
//! ```text
//! lgenc <file.blac> [--target atom|cortex-a8|cortex-a9|arm1176]
//!       [--variant base|align|mvm|full] [--tune] [--peel] [--version-align]
//!       [--verify[=paranoid]] [--threads N | -j N] [--cache-stats]
//! ```

use lgen::core::{KernelCache, SearchStrategy, VerifyLevel};
use lgen::prelude::*;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: lgenc <file.blac> [--target atom|cortex-a8|cortex-a9|arm1176]\n\
         \x20            [--variant base|align|mvm|full] [--tune] [--peel] [--version-align]\n\
         \x20            [--verify[=paranoid]] [--threads N | -j N] [--cache-stats]\n\
         \n\
         \x20 --verify            statically verify the kernel at pipeline boundaries\n\
         \x20 --verify=paranoid   verify between every optimization pass\n\
         \x20 --threads N, -j N   worker threads for tuning/compilation (0 = one per core)\n\
         \x20 --cache-stats       print kernel-cache and per-stage pipeline counters\n\
         \n\
         example input file:\n\
         \x20 alpha = scalar\n\
         \x20 A = matrix(4, 8)\n\
         \x20 x = vector(8)\n\
         \x20 y = vector(4)\n\
         \x20 y = alpha * (A * x) + y"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut target = Microarch::Atom;
    let mut variant = Variant::Full;
    let mut tune = false;
    let mut peel = false;
    let mut version_align = false;
    let mut threads = 0usize; // 0 = one worker per available core
    let mut cache_stats = false;
    let mut verify = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" | "-j" => {
                threads = match it.next().and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => usage(),
                }
            }
            "--cache-stats" => cache_stats = true,
            "--target" => {
                target = match it.next().map(String::as_str) {
                    Some("atom") => Microarch::Atom,
                    Some("cortex-a8") => Microarch::CortexA8,
                    Some("cortex-a9") => Microarch::CortexA9,
                    Some("arm1176") => Microarch::Arm1176,
                    _ => usage(),
                }
            }
            "--variant" => {
                variant = match it.next().map(String::as_str) {
                    Some("base") => Variant::Base,
                    Some("align") => Variant::Align,
                    Some("mvm") => Variant::Mvm,
                    Some("full") => Variant::Full,
                    _ => usage(),
                }
            }
            "--tune" => tune = true,
            "--peel" => peel = true,
            "--version-align" => version_align = true,
            "--verify" => verify = Some(VerifyLevel::Boundaries),
            "--verify=paranoid" | "--verify=every-pass" => verify = Some(VerifyLevel::EveryPass),
            "--help" | "-h" => usage(),
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_string()),
            _ => usage(),
        }
    }
    let Some(file) = file else { usage() };

    let src = std::fs::read_to_string(&file).unwrap_or_else(|e| {
        eprintln!("lgenc: cannot read {file}: {e}");
        std::process::exit(1);
    });
    let blac = lgen::ll::parse_blac(&src).unwrap_or_else(|e| {
        eprintln!("lgenc: {e}");
        std::process::exit(1);
    });

    let mut cfg = CompileConfig::variant(target, variant);
    if peel {
        cfg = cfg.with_peeling();
    }
    if version_align {
        cfg = cfg.with_versioning();
    }
    // --verify wins over LGEN_VERIFY (already folded in by `variant`).
    if let Some(level) = verify {
        cfg = cfg.with_verify(level);
    }

    eprintln!("lgenc: {blac}   ({} flops) for {target}", blac.flops());
    let cache = Arc::new(KernelCache::new());
    let kernel = if tune {
        eprintln!(
            "lgenc: tuning on {} worker(s)",
            lgen::core::effective_threads(threads)
        );
        let tuned = Autotuner::new(cfg)
            .with_strategy(SearchStrategy::Exhaustive)
            .with_threads(threads)
            .with_cache(cache.clone())
            .tune(&blac, "kernel");
        eprintln!(
            "lgenc: autotuned to {:?} ({} cycles over {} candidates)",
            tuned.unroll,
            tuned.measurement.cycles,
            tuned.samples.len()
        );
        if tuned.rejected > 0 {
            eprintln!(
                "lgenc: {} candidate(s) rejected by verification",
                tuned.rejected
            );
        }
        tuned.kernel
    } else {
        match cache.try_get_or_compile(&blac, "kernel", &cfg) {
            Ok(kernel) => (*kernel).clone(),
            Err(failure) => {
                eprintln!("lgenc: verification failed after pass `{}`:", failure.pass);
                eprint!("{}", lgen::cir::render(&failure.diagnostics));
                std::process::exit(1);
            }
        }
    };

    if cache_stats {
        eprintln!("lgenc: cache: {}", cache.stats());
        let stages = cache.stage_stats();
        eprintln!("lgenc: pipeline: {} compile(s)", stages.compiles());
        for (stage, ns) in stages.rows() {
            eprintln!("lgenc:   {stage:<20} {:>9.3} ms", ns as f64 / 1e6);
        }
    }

    // Validate and measure.
    match check_kernel(&blac, &kernel, target.vector_isa(), 1) {
        Ok(diff) => eprintln!("lgenc: validated, max|err| = {diff:.2e}"),
        Err(e) => {
            eprintln!("lgenc: kernel failed to execute: {e}");
            std::process::exit(1);
        }
    }
    let offsets = vec![0usize; blac.operands.len()];
    match measure_blac(&blac, &kernel, target, &offsets, 3) {
        Ok(m) => eprintln!(
            "lgenc: {} cycles, {:.3} flops/cycle (peak {:.1}), {:.2} nJ",
            m.cycles,
            m.flops_per_cycle(),
            target.peak_flops_per_cycle(),
            m.energy_pj as f64 / 1000.0
        ),
        Err(e) => eprintln!("lgenc: measurement failed: {e}"),
    }

    // The product: C on stdout.
    print!(
        "{}",
        lgen::cir::unparse::unparse(&kernel, target.vector_isa())
    );
}
