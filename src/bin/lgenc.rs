//! `lgenc` — the LGen command-line compiler.
//!
//! Reads an LL source file — a single BLAC (declarations + equation, see
//! `lgen::ll::parse`) or a multi-statement program with structure
//! annotations and `let`-bound temporaries — compiles it for a target
//! processor, validates it against the naive reference, prints the
//! generated C and the simulated performance. A program compiles to **one
//! fused kernel**: single-use temporaries are substituted into their
//! consumers before code generation.
//!
//! ```text
//! lgenc <file.blac> [--target atom|cortex-a8|cortex-a9|arm1176]
//!       [--variant base|align|mvm|full] [--passes <spec>]
//!       [--tune] [--tune-passes] [--peel] [--version-align]
//!       [--tune-deadline <dur>] [--tune-budget <dur>] [--tune-sweeps N]
//!       [--prune off|topk:N|frac:F]
//!       [--verify[=paranoid]] [--print-after-all]
//!       [--threads N | -j N] [--cache-stats]
//!       [--trace-out <file.json>] [--metrics]
//! ```
//!
//! Telemetry: `--trace-out` records spans for the whole run and writes
//! Chrome `trace_event` JSON (open in `chrome://tracing` or Perfetto);
//! `--metrics` dumps the process metrics registry to stderr at exit;
//! `LGEN_TRACE=1` records spans and prints the tree summary to stderr.

use lgen::core::{
    parse_duration, KernelCache, PassTrace, PrunePolicy, SearchStrategy, VerifyLevel,
};
use lgen::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: lgenc <file.blac> [--target atom|cortex-a8|cortex-a9|arm1176]\n\
         \x20            [--variant base|align|mvm|full] [--passes <spec>]\n\
         \x20            [--tune] [--tune-passes] [--peel] [--version-align]\n\
         \x20            [--tune-deadline <dur>] [--tune-budget <dur>] [--tune-sweeps N]\n\
         \x20            [--prune off|topk:N|frac:F]\n\
         \x20            [--verify[=paranoid]] [--print-after-all]\n\
         \x20            [--threads N | -j N] [--cache-stats]\n\
         \x20            [--trace-out <file.json>] [--metrics]\n\
         \n\
         \x20 --passes <spec>     C-IR pass schedule, e.g. \"unroll,scalrep,copyprop,dce,align\"\n\
         \x20                     or \"unroll,scalrep,repeat(copyprop,dce)\" (fixpoint group)\n\
         \x20 --print-after-all   dump the IR after codegen and after every pass (stderr)\n\
         \x20 --tune              autotune the unrolling decision (for programs: jointly\n\
         \x20                     search one unroll policy per statement)\n\
         \x20 --tune-passes       also search over pass schedules (implies --tune;\n\
         \x20                     single-kernel only — ignored with a warning for\n\
         \x20                     multi-statement programs)\n\
         \x20 --peel              peel to an aligned loop body with scalar head/tail\n\
         \x20                     (single-kernel transform; warned about and ignored\n\
         \x20                     when the input is a multi-statement program)\n\
         \x20 --version-align     emit per-alignment kernel versions behind a runtime\n\
         \x20                     dispatch (likewise warned about and ignored for\n\
         \x20                     multi-statement programs)\n\
         \x20 --tune-deadline <dur>  per-candidate time limit (e.g. 250ms, 2s); slow or hung\n\
         \x20                     candidates are abandoned and the search degrades gracefully\n\
         \x20 --tune-budget <dur> whole-search time budget; unstarted candidates are skipped\n\
         \x20 --tune-sweeps N     repeat the search N times against the warm kernel cache\n\
         \x20                     (steady-state tuning throughput; telemetry records each sweep)\n\
         \x20 --prune <policy>    model-guided pruning: rank candidates with the static cost\n\
         \x20                     predictor and simulate only the best (topk:N or frac:F,\n\
         \x20                     default off); widens when the model's rank correlation drops\n\
         \x20 --verify            statically verify the kernel at pipeline boundaries\n\
         \x20 --verify=paranoid   verify between every optimization pass\n\
         \x20 --threads N, -j N   worker threads for tuning/compilation (0 = one per core)\n\
         \x20 --cache-stats       print kernel-cache and per-pass timing counters\n\
         \x20 --trace-out <file>  write a Chrome trace_event JSON of the whole run\n\
         \x20                     (open in chrome://tracing or Perfetto)\n\
         \x20 --metrics           dump the metrics registry (name value lines) at exit\n\
         \n\
         example input file (single BLAC):\n\
         \x20 alpha = scalar\n\
         \x20 A = matrix(4, 8)\n\
         \x20 x = vector(8)\n\
         \x20 y = vector(4)\n\
         \x20 y = alpha * (A * x) + y\n\
         \n\
         example input file (program; `S` is a let-bound temporary):\n\
         \x20 F = matrix(4, 4)\n\
         \x20 P = matrix(4, 4) symmetric\n\
         \x20 Q = matrix(4, 4) symmetric\n\
         \x20 P_next = matrix(4, 4)\n\
         \x20 S = P * F';\n\
         \x20 P_next = F * S + Q;"
    );
    std::process::exit(2);
}

/// Parsed command-line options shared by the BLAC and program paths.
struct Opts {
    target: Microarch,
    tune: bool,
    tune_passes: bool,
    peel: bool,
    version_align: bool,
    print_after_all: bool,
    threads: usize,
    cache_stats: bool,
    tune_deadline: Option<Duration>,
    tune_budget: Option<Duration>,
    tune_sweeps: usize,
    prune: PrunePolicy,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut target = Microarch::Atom;
    let mut variant = Variant::Full;
    let mut passes: Option<PassPipeline> = None;
    let mut tune = false;
    let mut tune_passes = false;
    let mut peel = false;
    let mut version_align = false;
    let mut print_after_all = false;
    let mut threads = 0usize; // 0 = one worker per available core
    let mut cache_stats = false;
    let mut verify = None;
    let mut tune_deadline: Option<Duration> = None;
    let mut tune_budget: Option<Duration> = None;
    let mut tune_sweeps = 1usize;
    let mut prune = PrunePolicy::Off;
    let mut trace_out: Option<String> = None;
    let mut metrics = false;

    // Strict flag-value convention: a bad policy is a usage error (exit
    // 2), not a silent fall-back to `off`.
    let parse_prune = |v: Option<&str>| -> PrunePolicy {
        match v.map(str::parse) {
            Some(Ok(p)) => p,
            Some(Err(e)) => {
                eprintln!("lgenc: bad --prune value: {e}");
                usage();
            }
            None => usage(),
        }
    };

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" | "-j" => {
                threads = match it.next().and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => usage(),
                }
            }
            "--tune-deadline" => {
                tune_deadline = match it.next().and_then(|v| parse_duration(v)) {
                    Some(d) => Some(d),
                    None => usage(),
                }
            }
            "--tune-budget" => {
                tune_budget = match it.next().and_then(|v| parse_duration(v)) {
                    Some(d) => Some(d),
                    None => usage(),
                }
            }
            "--tune-sweeps" => {
                tune_sweeps = match it.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => usage(),
                }
            }
            "--cache-stats" => cache_stats = true,
            "--trace-out" => {
                trace_out = match it.next() {
                    Some(path) => Some(path.clone()),
                    None => usage(),
                }
            }
            "--metrics" => metrics = true,
            "--target" => {
                target = match it.next().map(String::as_str) {
                    Some("atom") => Microarch::Atom,
                    Some("cortex-a8") => Microarch::CortexA8,
                    Some("cortex-a9") => Microarch::CortexA9,
                    Some("arm1176") => Microarch::Arm1176,
                    _ => usage(),
                }
            }
            "--variant" => {
                variant = match it.next().map(String::as_str) {
                    Some("base") => Variant::Base,
                    Some("align") => Variant::Align,
                    Some("mvm") => Variant::Mvm,
                    Some("full") => Variant::Full,
                    _ => usage(),
                }
            }
            "--passes" => {
                let Some(spec) = it.next() else { usage() };
                passes = match spec.parse::<PassPipeline>() {
                    Ok(p) => Some(p),
                    Err(e) => {
                        eprintln!("lgenc: bad --passes spec: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--prune" => prune = parse_prune(it.next().map(String::as_str)),
            other if other.starts_with("--prune=") => {
                prune = parse_prune(other.strip_prefix("--prune="));
            }
            "--tune" => tune = true,
            "--tune-passes" => {
                tune = true;
                tune_passes = true;
            }
            "--peel" => peel = true,
            "--version-align" => version_align = true,
            "--print-after-all" => print_after_all = true,
            "--verify" => verify = Some(VerifyLevel::Boundaries),
            "--verify=paranoid" | "--verify=every-pass" => verify = Some(VerifyLevel::EveryPass),
            "--help" | "-h" => usage(),
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_string()),
            _ => usage(),
        }
    }
    let Some(file) = file else { usage() };

    if let Some(path) = &trace_out {
        // Fail the unwritable-path case up front (strict flag-value
        // convention), not after a whole compile/tune run.
        if let Err(e) = std::fs::write(path, "") {
            eprintln!("lgenc: cannot write --trace-out {path}: {e}");
            usage();
        }
        lgen::telemetry::set_enabled(true);
    }

    let src = std::fs::read_to_string(&file).unwrap_or_else(|e| {
        eprintln!("lgenc: cannot read {file}: {e}");
        std::process::exit(1);
    });
    // The program grammar is a strict superset of the single-BLAC one, so
    // every input parses as a program; a one-statement file without
    // temporaries then takes the original single-kernel path (where
    // peeling, alignment versioning, and pass-schedule search apply).
    let program = lgen::ll::parse_program(&src).unwrap_or_else(|e| {
        eprintln!("lgenc: {e}");
        std::process::exit(1);
    });
    let single = program.statements.len() == 1 && !program.temps.iter().any(|&t| t);

    let mut cfg = CompileConfig::variant(target, variant);
    if let Some(p) = passes {
        cfg = cfg.with_passes(p);
    }
    if peel {
        cfg = cfg.with_peeling();
    }
    if version_align {
        cfg = cfg.with_versioning();
    }
    // --verify wins over LGEN_VERIFY (already folded in by `variant`).
    if let Some(level) = verify {
        cfg = cfg.with_verify(level);
    }
    let opts = Opts {
        target,
        tune,
        tune_passes,
        peel,
        version_align,
        print_after_all,
        threads,
        cache_stats,
        tune_deadline,
        tune_budget,
        tune_sweeps,
        prune,
    };

    let kernel = if single {
        run_blac(&program.view(0), &cfg, &opts)
    } else {
        run_program(&program, cfg, &opts)
    };

    // The product: C on stdout.
    print!(
        "{}",
        lgen::cir::unparse::unparse(&kernel, target.vector_isa())
    );

    // Telemetry exports last, so they cover the whole run.
    if let Some(path) = &trace_out {
        let spans = lgen::telemetry::global().snapshot();
        let json = lgen::telemetry::chrome_trace(&spans);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("lgenc: cannot write --trace-out {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("lgenc: wrote {} span(s) to {path}", spans.len());
    }
    if std::env::var("LGEN_TRACE").is_ok_and(|v| !v.is_empty() && v != "0") {
        eprint!(
            "{}",
            lgen::telemetry::summary_tree(&lgen::telemetry::global().snapshot())
        );
    }
    if metrics {
        eprint!(
            "{}",
            lgen::telemetry::format_metrics(&lgen::telemetry::registry().snapshot())
        );
    }
}

/// The original single-BLAC path: compile or autotune one kernel,
/// validate it, measure it, return it.
fn run_blac(blac: &Blac, cfg: &CompileConfig, o: &Opts) -> lgen::cir::Kernel {
    let target = o.target;
    eprintln!(
        "lgenc: {blac}   ({} flops) for {target}, passes \"{}\"",
        blac.flops(),
        cfg.pipeline
    );
    let cache = Arc::new(KernelCache::new());
    let kernel = if o.tune {
        eprintln!(
            "lgenc: tuning on {} worker(s)",
            lgen::core::effective_threads(o.threads)
        );
        // Extra sweeps re-run the identical search against the
        // now-warm kernel cache: every sweep lands in the tune/compile
        // histograms, so the metrics dump captures steady-state
        // (memoized) tuning throughput, not just the cold first pass.
        let mut last = None;
        for _ in 0..o.tune_sweeps {
            let mut tuner = Autotuner::new(cfg.clone())
                .with_strategy(SearchStrategy::Exhaustive)
                .with_threads(o.threads)
                .with_cache(cache.clone());
            if o.tune_passes {
                tuner = tuner.with_pipeline_search();
            }
            if let Some(d) = o.tune_deadline {
                tuner = tuner.with_deadline(d);
            }
            if let Some(b) = o.tune_budget {
                tuner = tuner.with_budget(b);
            }
            if !o.prune.is_off() {
                tuner = tuner.with_prune(o.prune);
            }
            match tuner.try_tune(blac, "kernel") {
                Ok(tuned) => last = Some(tuned),
                Err(e) => {
                    eprintln!("lgenc: tuning failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        let tuned = last.expect("at least one tuning sweep");
        eprintln!(
            "lgenc: autotuned to {:?} under \"{}\" ({} cycles over {} candidates)",
            tuned.unroll,
            tuned.pipeline,
            tuned.measurement.cycles,
            tuned.samples.len()
        );
        if let Some(summary) = tuned.failure_summary() {
            eprintln!("lgenc: {summary}");
        }
        if !o.prune.is_off() {
            eprintln!(
                "lgenc: pruning ({}): {} candidate(s) skipped, rank correlation {}",
                o.prune,
                tuned.pruned,
                tuned
                    .rank_correlation
                    .map_or_else(|| "n/a".to_string(), |r| format!("{r:.3}")),
            );
        }
        if o.print_after_all {
            // Replay the winning compile with tracing on (served from the
            // cache-independent path so snapshots reflect every pass).
            let winner_cfg = cfg
                .clone()
                .with_unroll(tuned.unroll)
                .with_passes(tuned.pipeline.clone());
            let trace = PassTrace::new();
            if let Err(failure) =
                lgen::core::try_compile_traced(blac, "kernel", &winner_cfg, None, Some(&trace))
            {
                eprintln!("lgenc: verification failed after pass `{}`:", failure.pass);
                eprint!("{}", lgen::cir::render(&failure.diagnostics));
                std::process::exit(1);
            }
            dump_trace(&trace);
        }
        tuned.kernel
    } else if o.print_after_all {
        let trace = PassTrace::new();
        match lgen::core::try_compile_traced(
            blac,
            "kernel",
            cfg,
            Some(cache.pass_stats()),
            Some(&trace),
        ) {
            Ok(kernel) => {
                dump_trace(&trace);
                kernel
            }
            Err(failure) => {
                eprintln!("lgenc: verification failed after pass `{}`:", failure.pass);
                eprint!("{}", lgen::cir::render(&failure.diagnostics));
                std::process::exit(1);
            }
        }
    } else {
        match cache.try_get_or_compile(blac, "kernel", cfg) {
            Ok(kernel) => (*kernel).clone(),
            Err(failure) => {
                eprintln!("lgenc: verification failed after pass `{}`:", failure.pass);
                eprint!("{}", lgen::cir::render(&failure.diagnostics));
                std::process::exit(1);
            }
        }
    };

    if o.cache_stats {
        // One coherent snapshot: counters and per-pass rows are read
        // together, so they cannot disagree mid-run.
        for line in cache.snapshot().to_string().lines() {
            eprintln!("lgenc: {line}");
        }
    }

    // Validate and measure.
    match check_kernel(blac, &kernel, target.vector_isa(), 1) {
        Ok(diff) => eprintln!("lgenc: validated, max|err| = {diff:.2e}"),
        Err(e) => {
            eprintln!("lgenc: kernel failed to execute: {e}");
            std::process::exit(1);
        }
    }
    let offsets = vec![0usize; blac.operands.len()];
    match measure_blac(blac, &kernel, target, &offsets, 3) {
        Ok(m) => eprintln!(
            "lgenc: {} cycles, {:.3} flops/cycle (peak {:.1}), {:.2} nJ",
            m.cycles,
            m.flops_per_cycle(),
            target.peak_flops_per_cycle(),
            m.energy_pj as f64 / 1000.0
        ),
        Err(e) => eprintln!("lgenc: measurement failed: {e}"),
    }
    kernel
}

/// The program path: fuse, compile (or jointly tune) one kernel for the
/// whole statement sequence, validate it against the statement-by-statement
/// reference, measure it, return it.
fn run_program(program: &Program, mut cfg: CompileConfig, o: &Opts) -> lgen::cir::Kernel {
    let target = o.target;
    if o.peel || o.version_align {
        // Peeling and alignment versioning version a kernel on one BLAC's
        // parameter alignment classes; they have no program analogue yet.
        eprintln!(
            "lgenc: --peel/--version-align are single-kernel transforms; ignored for programs"
        );
        cfg.peeling = false;
        cfg.alignment_versioning = false;
    }
    if o.tune_passes {
        eprintln!("lgenc: --tune-passes is not supported for programs; tuning unroll genomes only");
    }
    if o.print_after_all {
        eprintln!("lgenc: --print-after-all is not supported for programs; ignored");
    }
    eprintln!(
        "lgenc: program of {} statement(s) ({} flops) for {target}, passes \"{}\"",
        program.statements.len(),
        program.flops(),
        cfg.pipeline
    );
    let cache = Arc::new(KernelCache::new());
    let (kernel, fusions) = if o.tune {
        // Sweeps re-run the identical joint search against the warm
        // program cache, mirroring the single-BLAC path.
        let mut last = None;
        for _ in 0..o.tune_sweeps {
            let mut tuner = ProgramTuner::new(cfg.clone()).with_cache(cache.clone());
            if !o.prune.is_off() {
                tuner = tuner.with_prune(o.prune);
            }
            last = Some(tuner.tune(program, "kernel"));
        }
        let tuned = last.expect("at least one tuning sweep");
        eprintln!(
            "lgenc: autotuned to {:?} ({} cycles over {} candidates)",
            tuned.policies,
            tuned.measurement.cycles,
            tuned.samples.len()
        );
        if !o.prune.is_off() {
            eprintln!(
                "lgenc: pruning ({}): {} candidate(s) skipped, rank correlation {}",
                o.prune,
                tuned.pruned,
                tuned
                    .rank_correlation
                    .map_or_else(|| "n/a".to_string(), |r| format!("{r:.3}")),
            );
        }
        (tuned.kernel, tuned.fusions)
    } else {
        let kernel = match cache.try_get_or_compile_program(program, "kernel", &cfg, None) {
            Ok(kernel) => (*kernel).clone(),
            Err(failure) => {
                eprintln!("lgenc: verification failed after pass `{}`:", failure.pass);
                eprint!("{}", lgen::cir::render(&failure.diagnostics));
                std::process::exit(1);
            }
        };
        let (_, fusions) = lgen::sigma::fuse_program(program);
        (kernel, fusions)
    };
    eprintln!(
        "lgenc: {fusions} cross-statement fusion(s), kernel covers {} statement(s)",
        program.statements.len() - fusions
    );

    if o.cache_stats {
        for line in cache.snapshot().to_string().lines() {
            eprintln!("lgenc: {line}");
        }
    }

    // Validate against the statement-by-statement reference and measure.
    match check_program(program, &kernel, target.vector_isa(), 1) {
        Ok(diff) => eprintln!("lgenc: validated, max|err| = {diff:.2e}"),
        Err(e) => {
            eprintln!("lgenc: kernel failed to execute: {e}");
            std::process::exit(1);
        }
    }
    match measure_program(program, &kernel, target, 3) {
        Ok(m) => eprintln!(
            "lgenc: {} cycles, {:.3} flops/cycle (peak {:.1}), {:.2} nJ",
            m.cycles,
            m.flops_per_cycle(),
            target.peak_flops_per_cycle(),
            m.energy_pj as f64 / 1000.0
        ),
        Err(e) => eprintln!("lgenc: measurement failed: {e}"),
    }
    kernel
}

/// Prints every recorded IR snapshot (`--print-after-all`) to stderr.
fn dump_trace(trace: &PassTrace) {
    for (stage, ir) in trace.snapshots() {
        eprintln!("== IR after {stage} ==");
        eprint!("{ir}");
    }
}
