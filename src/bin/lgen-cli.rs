//! `lgen-cli` — client for the `lgend` compile daemon.
//!
//! ```text
//! lgen-cli compile <file.blac> --socket <path> [--name <kernel>]
//!          [--tenant <id>] [--target atom|cortex-a8|cortex-a9|arm1176]
//!          [--variant base|align|mvm|full] [--passes <spec>] [--tune]
//! lgen-cli stats    --socket <path> [--json]
//! lgen-cli tail     --socket <path> [--json]
//! lgen-cli ping     --socket <path>
//! lgen-cli shutdown --socket <path>
//! lgen-cli replay   --socket <path> [--requests N] [--connections N]
//!          [--tenants N] [--duplicate-pct P] [--malformed-pct P]
//!          [--seed S] [--json <file>]
//! ```
//!
//! `stats --json` prints the daemon's stable-field-order JSON stats
//! document (per-tenant/per-verb counts, queue-wait and service-time
//! quantiles); `tail` dumps the daemon's request flight recorder — the
//! last N requests with cache tier, coalesce role, queue wait and
//! service time. `replay` drives the deterministic load harness
//! (`lgen::serve::replay`) against a running daemon and prints — or
//! writes with `--json <file>`, for `BENCH_serve.json` — the
//! client-side outcome counts plus the daemon-side latency quantiles.

use lgen::serve::{replay, Client, ReplayConfig, Request, Verb};
use std::path::PathBuf;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: lgen-cli <compile|stats|tail|ping|shutdown|replay> --socket <path> [options]\n\
         \n\
         compile <file.blac> [--name <kernel>] [--tenant <id>]\n\
         \x20       [--target atom|cortex-a8|cortex-a9|arm1176]\n\
         \x20       [--variant base|align|mvm|full] [--passes <spec>] [--tune]\n\
         stats      print the daemon's metrics/cache report\n\
         \x20       [--json]  stable-order JSON stats document instead\n\
         tail       dump the daemon's request flight recorder\n\
         \x20       [--json]  raw dump document instead of a table\n\
         ping       liveness check\n\
         shutdown   ask the daemon to drain and exit\n\
         replay     [--requests N] [--connections N] [--tenants N]\n\
         \x20       [--duplicate-pct P] [--malformed-pct P] [--seed S] [--json <file>]"
    );
    std::process::exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("lgen-cli: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args.remove(0);

    // Pull out `--flag value` pairs; whatever is left is positional.
    let mut take = |flag: &str| -> Option<String> {
        let i = args.iter().position(|a| a == flag)?;
        if i + 1 >= args.len() {
            usage();
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Some(v)
    };

    let socket = take("--socket").map(PathBuf::from);
    let name = take("--name");
    let tenant = take("--tenant");
    let target = take("--target");
    let variant = take("--variant");
    let passes = take("--passes");
    let requests = take("--requests");
    let connections = take("--connections");
    let tenants = take("--tenants");
    let duplicate_pct = take("--duplicate-pct");
    let malformed_pct = take("--malformed-pct");
    let seed = take("--seed");
    // `--json` means two different things: for `replay` it takes a file
    // path (where to write the report); for `stats`/`tail` it is a
    // boolean (emit the raw JSON document). Parse per command so
    // `stats --json` never eats a following argument.
    let json_out = if cmd == "replay" {
        take("--json")
    } else {
        None
    };
    let json_flag = if matches!(cmd.as_str(), "stats" | "tail") {
        if let Some(i) = args.iter().position(|a| a == "--json") {
            args.remove(i);
            true
        } else {
            false
        }
    } else {
        false
    };
    let tune = if let Some(i) = args.iter().position(|a| a == "--tune") {
        args.remove(i);
        true
    } else {
        false
    };
    if matches!(cmd.as_str(), "-h" | "--help" | "help") {
        usage();
    }
    let Some(socket) = socket else {
        eprintln!("lgen-cli: --socket is required");
        usage();
    };

    let connect = || {
        Client::connect_within(&socket, Duration::from_secs(5))
            .unwrap_or_else(|e| fail(format!("connect {}: {e}", socket.display())))
    };

    match cmd.as_str() {
        "compile" => {
            if args.len() != 1 {
                usage();
            }
            let file = &args[0];
            let source =
                std::fs::read_to_string(file).unwrap_or_else(|e| fail(format!("read {file}: {e}")));
            let stem = std::path::Path::new(file)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "kernel".into());
            let verb = if tune { Verb::Tune } else { Verb::Compile };
            let mut req = Request::new(verb)
                .with("name", name.as_deref().unwrap_or(&stem))
                .with_body(&source);
            if let Some(t) = &tenant {
                req = req.with("tenant", t);
            }
            if let Some(t) = &target {
                req = req.with("target", t);
            }
            if let Some(v) = &variant {
                req = req.with("variant", v);
            }
            if let Some(p) = &passes {
                req = req.with("passes", p);
            }
            let resp = connect()
                .request(&req)
                .unwrap_or_else(|e| fail(format!("request: {e}")));
            if resp.is_ok() {
                for key in ["outcome", "fingerprint", "flops", "wall_us"] {
                    if let Some(v) = resp.headers.get(key) {
                        eprintln!("{key}: {v}");
                    }
                }
                print!("{}", resp.body);
            } else {
                fail(format!(
                    "{}: {}",
                    resp.error.map(|e| e.as_str()).unwrap_or("error"),
                    resp.body.trim()
                ));
            }
        }
        "stats" => {
            if !args.is_empty() {
                usage();
            }
            let mut client = connect();
            let resp = if json_flag {
                client.stats_json()
            } else {
                client.stats()
            }
            .unwrap_or_else(|e| fail(format!("request: {e}")));
            if json_flag {
                println!("{}", resp.body.trim_end());
            } else {
                print!("{}", resp.body);
            }
        }
        "tail" => {
            if !args.is_empty() {
                usage();
            }
            let resp = connect()
                .dump()
                .unwrap_or_else(|e| fail(format!("request: {e}")));
            if json_flag {
                println!("{}", resp.body.trim_end());
            } else {
                render_flight_dump(&resp.body);
            }
        }
        "ping" => {
            if !args.is_empty() {
                usage();
            }
            let resp = connect()
                .request(&Request::new(Verb::Ping))
                .unwrap_or_else(|e| fail(format!("request: {e}")));
            println!("{}", resp.body.trim());
        }
        "shutdown" => {
            if !args.is_empty() {
                usage();
            }
            let resp = connect()
                .shutdown()
                .unwrap_or_else(|e| fail(format!("request: {e}")));
            println!("{}", resp.body.trim());
        }
        "replay" => {
            if !args.is_empty() {
                usage();
            }
            let parse = |v: Option<String>, d: usize| -> usize {
                v.map(|s| s.parse().unwrap_or_else(|_| usage()))
                    .unwrap_or(d)
            };
            let mut cfg = ReplayConfig::new(&socket);
            cfg.requests = parse(requests, cfg.requests);
            cfg.connections = parse(connections, cfg.connections);
            cfg.tenants = parse(tenants, cfg.tenants);
            cfg.duplicate_pct = parse(duplicate_pct, cfg.duplicate_pct);
            cfg.malformed_pct = parse(malformed_pct, cfg.malformed_pct);
            cfg.seed = seed
                .map(|s| s.parse().unwrap_or_else(|_| usage()))
                .unwrap_or(cfg.seed);
            let report = replay(&cfg).unwrap_or_else(|e| fail(format!("replay: {e}")));
            let json = report.to_json();
            if let Some(path) = &json_out {
                std::fs::write(path, format!("{json}\n"))
                    .unwrap_or_else(|e| fail(format!("write {path}: {e}")));
                eprintln!("lgen-cli: wrote {path}");
            }
            eprintln!(
                "replayed {} requests: {} ok, {} busy retries, {} errors",
                report.requests, report.ok, report.busy, report.errors
            );
            eprintln!(
                "outcomes: {} compiled, {} coalesced, {} memory, {} disk \
                 (hit rate {:.1}%, coalesce rate {:.1}%)",
                report.compiled,
                report.coalesced,
                report.memory_hits,
                report.disk_hits,
                report.hit_rate() * 100.0,
                report.coalesce_rate() * 100.0
            );
            eprintln!(
                "daemon latency: p50 {}us, p99 {}us; malformed: {} sent, {} answered",
                report.p50_us, report.p99_us, report.malformed_sent, report.malformed_answered
            );
            for (tenant, requests, p99) in &report.tenants {
                eprintln!("  {tenant}: {requests} requests, service p99 {p99}us");
            }
            println!("{json}");
        }
        other => {
            eprintln!("lgen-cli: unknown command `{other}`");
            usage();
        }
    }
}

/// Renders the daemon's flight-recorder dump (`lgen-cli tail`) as a
/// human-readable table, oldest request first. The dump's field order is
/// a stable contract (see `lgen::serve::recorder::FlightRecord`), which
/// is what lets this scan by key without a JSON parser.
fn render_flight_dump(body: &str) {
    eprintln!(
        "flight recorder: cap {}, recorded {}, dropped {}",
        field_u64(body, "cap"),
        field_u64(body, "recorded"),
        field_u64(body, "dropped")
    );
    let records = json_objects(body, "\"records\":[");
    if records.is_empty() {
        eprintln!("(no requests recorded)");
        return;
    }
    println!(
        "{:>8}  {:<12} {:<8} {:<10} {:<8} {:<8} {:>10} {:>11}  {:<6} fingerprint",
        "seq", "tenant", "verb", "outcome", "tier", "role", "wait_us", "service_us", "worker"
    );
    for obj in records {
        println!(
            "{:>8}  {:<12} {:<8} {:<10} {:<8} {:<8} {:>10} {:>11}  {:<6} {}",
            field_u64(obj, "seq"),
            field_str(obj, "tenant"),
            field_str(obj, "verb"),
            field_str(obj, "outcome"),
            field_str(obj, "tier"),
            field_str(obj, "role"),
            field_u64(obj, "queue_wait_ns") / 1_000,
            field_u64(obj, "service_ns") / 1_000,
            field_u64(obj, "worker"),
            field_str(obj, "fingerprint"),
        );
    }
}

/// Slices the top-level `[...]` array that starts right after `marker`
/// into its `{...}` object elements (string-aware brace matching).
fn json_objects<'a>(s: &'a str, marker: &str) -> Vec<&'a str> {
    let Some(start) = s.find(marker).map(|i| i + marker.len()) else {
        return Vec::new();
    };
    let bytes = &s.as_bytes()[start..];
    let mut objs = Vec::new();
    let (mut depth, mut obj_start) = (0usize, 0usize);
    let (mut in_str, mut escaped) = (false, false);
    for (i, &b) in bytes.iter().enumerate() {
        if escaped {
            escaped = false;
        } else if in_str {
            match b {
                b'\\' => escaped = true,
                b'"' => in_str = false,
                _ => {}
            }
        } else {
            match b {
                b'"' => in_str = true,
                b'{' => {
                    if depth == 0 {
                        obj_start = i;
                    }
                    depth += 1;
                }
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        objs.push(&s[start + obj_start..start + i + 1]);
                    }
                }
                b']' if depth == 0 => break,
                _ => {}
            }
        }
    }
    objs
}

/// The unsigned integer value of `"key":N` in `obj`, or 0.
fn field_u64(obj: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    obj.find(&pat)
        .map(|i| {
            obj[i + pat.len()..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
        })
        .and_then(|d| d.parse().ok())
        .unwrap_or(0)
}

/// The string value of `"key":"..."` in `obj`, or `""`.
fn field_str<'a>(obj: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":\"");
    match obj.find(&pat) {
        Some(i) => {
            let rest = &obj[i + pat.len()..];
            &rest[..rest.find('"').unwrap_or(0)]
        }
        None => "",
    }
}
