//! `lgen-cli` — client for the `lgend` compile daemon.
//!
//! ```text
//! lgen-cli compile <file.blac> --socket <path> [--name <kernel>]
//!          [--tenant <id>] [--target atom|cortex-a8|cortex-a9|arm1176]
//!          [--variant base|align|mvm|full] [--passes <spec>] [--tune]
//! lgen-cli stats    --socket <path>
//! lgen-cli ping     --socket <path>
//! lgen-cli shutdown --socket <path>
//! lgen-cli replay   --socket <path> [--requests N] [--connections N]
//!          [--tenants N] [--duplicate-pct P] [--malformed-pct P]
//!          [--seed S] [--json <file>]
//! ```
//!
//! `replay` drives the deterministic load harness (`lgen::serve::replay`)
//! against a running daemon and prints — or writes with `--json`, for
//! `BENCH_serve.json` — the client-side outcome counts plus the
//! daemon-side p50/p99 request latency from its metrics registry.

use lgen::serve::{replay, Client, ReplayConfig, Request, Verb};
use std::path::PathBuf;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: lgen-cli <compile|stats|ping|shutdown|replay> --socket <path> [options]\n\
         \n\
         compile <file.blac> [--name <kernel>] [--tenant <id>]\n\
         \x20       [--target atom|cortex-a8|cortex-a9|arm1176]\n\
         \x20       [--variant base|align|mvm|full] [--passes <spec>] [--tune]\n\
         stats      print the daemon's metrics/cache report\n\
         ping       liveness check\n\
         shutdown   ask the daemon to drain and exit\n\
         replay     [--requests N] [--connections N] [--tenants N]\n\
         \x20       [--duplicate-pct P] [--malformed-pct P] [--seed S] [--json <file>]"
    );
    std::process::exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("lgen-cli: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args.remove(0);

    // Pull out `--flag value` pairs; whatever is left is positional.
    let mut take = |flag: &str| -> Option<String> {
        let i = args.iter().position(|a| a == flag)?;
        if i + 1 >= args.len() {
            usage();
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Some(v)
    };

    let socket = take("--socket").map(PathBuf::from);
    let name = take("--name");
    let tenant = take("--tenant");
    let target = take("--target");
    let variant = take("--variant");
    let passes = take("--passes");
    let requests = take("--requests");
    let connections = take("--connections");
    let tenants = take("--tenants");
    let duplicate_pct = take("--duplicate-pct");
    let malformed_pct = take("--malformed-pct");
    let seed = take("--seed");
    let json_out = take("--json");
    let tune = if let Some(i) = args.iter().position(|a| a == "--tune") {
        args.remove(i);
        true
    } else {
        false
    };
    if matches!(cmd.as_str(), "-h" | "--help" | "help") {
        usage();
    }
    let Some(socket) = socket else {
        eprintln!("lgen-cli: --socket is required");
        usage();
    };

    let connect = || {
        Client::connect_within(&socket, Duration::from_secs(5))
            .unwrap_or_else(|e| fail(format!("connect {}: {e}", socket.display())))
    };

    match cmd.as_str() {
        "compile" => {
            if args.len() != 1 {
                usage();
            }
            let file = &args[0];
            let source =
                std::fs::read_to_string(file).unwrap_or_else(|e| fail(format!("read {file}: {e}")));
            let stem = std::path::Path::new(file)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "kernel".into());
            let verb = if tune { Verb::Tune } else { Verb::Compile };
            let mut req = Request::new(verb)
                .with("name", name.as_deref().unwrap_or(&stem))
                .with_body(&source);
            if let Some(t) = &tenant {
                req = req.with("tenant", t);
            }
            if let Some(t) = &target {
                req = req.with("target", t);
            }
            if let Some(v) = &variant {
                req = req.with("variant", v);
            }
            if let Some(p) = &passes {
                req = req.with("passes", p);
            }
            let resp = connect()
                .request(&req)
                .unwrap_or_else(|e| fail(format!("request: {e}")));
            if resp.is_ok() {
                for key in ["outcome", "fingerprint", "flops", "wall_us"] {
                    if let Some(v) = resp.headers.get(key) {
                        eprintln!("{key}: {v}");
                    }
                }
                print!("{}", resp.body);
            } else {
                fail(format!(
                    "{}: {}",
                    resp.error.map(|e| e.as_str()).unwrap_or("error"),
                    resp.body.trim()
                ));
            }
        }
        "stats" => {
            if !args.is_empty() {
                usage();
            }
            let resp = connect()
                .stats()
                .unwrap_or_else(|e| fail(format!("request: {e}")));
            print!("{}", resp.body);
        }
        "ping" => {
            if !args.is_empty() {
                usage();
            }
            let resp = connect()
                .request(&Request::new(Verb::Ping))
                .unwrap_or_else(|e| fail(format!("request: {e}")));
            println!("{}", resp.body.trim());
        }
        "shutdown" => {
            if !args.is_empty() {
                usage();
            }
            let resp = connect()
                .shutdown()
                .unwrap_or_else(|e| fail(format!("request: {e}")));
            println!("{}", resp.body.trim());
        }
        "replay" => {
            if !args.is_empty() {
                usage();
            }
            let parse = |v: Option<String>, d: usize| -> usize {
                v.map(|s| s.parse().unwrap_or_else(|_| usage()))
                    .unwrap_or(d)
            };
            let mut cfg = ReplayConfig::new(&socket);
            cfg.requests = parse(requests, cfg.requests);
            cfg.connections = parse(connections, cfg.connections);
            cfg.tenants = parse(tenants, cfg.tenants);
            cfg.duplicate_pct = parse(duplicate_pct, cfg.duplicate_pct);
            cfg.malformed_pct = parse(malformed_pct, cfg.malformed_pct);
            cfg.seed = seed
                .map(|s| s.parse().unwrap_or_else(|_| usage()))
                .unwrap_or(cfg.seed);
            let report = replay(&cfg).unwrap_or_else(|e| fail(format!("replay: {e}")));
            let json = report.to_json();
            if let Some(path) = &json_out {
                std::fs::write(path, format!("{json}\n"))
                    .unwrap_or_else(|e| fail(format!("write {path}: {e}")));
                eprintln!("lgen-cli: wrote {path}");
            }
            eprintln!(
                "replayed {} requests: {} ok, {} busy retries, {} errors",
                report.requests, report.ok, report.busy, report.errors
            );
            eprintln!(
                "outcomes: {} compiled, {} coalesced, {} memory, {} disk \
                 (hit rate {:.1}%, coalesce rate {:.1}%)",
                report.compiled,
                report.coalesced,
                report.memory_hits,
                report.disk_hits,
                report.hit_rate() * 100.0,
                report.coalesce_rate() * 100.0
            );
            eprintln!(
                "daemon latency: p50 {}us, p99 {}us; malformed: {} sent, {} answered",
                report.p50_us, report.p99_us, report.malformed_sent, report.malformed_answered
            );
            println!("{json}");
        }
        other => {
            eprintln!("lgen-cli: unknown command `{other}`");
            usage();
        }
    }
}
