//! `lgend` — the LGen compile daemon.
//!
//! Serves `compile`/`tune`/`stats`/`shutdown` requests over a Unix-domain
//! socket (see `lgen::serve::proto` for the wire format and `lgen-cli`
//! for the matching client). Identical in-flight requests coalesce onto
//! one compile; results persist to a content-addressed on-disk cache so
//! a restarted daemon starts warm.
//!
//! ```text
//! lgend --socket <path> [--cache-dir <dir>] [--workers N]
//!       [--queue-capacity N] [--recorder-cap N] [--slow-ms N]
//! ```
//!
//! The daemon runs until it receives a `shutdown` request (or the
//! process is killed; the on-disk cache tolerates that — entries are
//! written temp-then-rename, and anything unreadable is quarantined on
//! the next load).

use lgen::serve::{Lgend, ServeConfig, DEFAULT_RECORDER_CAP};
use std::path::PathBuf;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: lgend --socket <path> [--cache-dir <dir>] [--workers N]\n\
         \x20            [--queue-capacity N] [--recorder-cap N] [--slow-ms N]\n\
         \n\
         \x20 --socket <path>      Unix socket to listen on (required)\n\
         \x20 --cache-dir <dir>    persistent kernel cache directory; omit for\n\
         \x20                      a memory-only daemon\n\
         \x20 --workers N          compile worker threads (default 2)\n\
         \x20 --queue-capacity N   admission queue bound; excess requests are\n\
         \x20                      answered `error busy` (default 64)\n\
         \x20 --recorder-cap N     flight-recorder ring size in requests\n\
         \x20                      (default {DEFAULT_RECORDER_CAP}); dump with `lgen-cli tail`\n\
         \x20 --slow-ms N          trace requests slower than N ms to\n\
         \x20                      <socket>.slow-trace.jsonl (default: off)"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut socket: Option<PathBuf> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut workers: Option<usize> = None;
    let mut queue_capacity: Option<usize> = None;
    let mut recorder_cap: Option<usize> = None;
    let mut slow_ms: Option<u64> = None;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => socket = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--cache-dir" => {
                cache_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "--workers" => {
                workers = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--queue-capacity" => {
                queue_capacity = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--recorder-cap" => {
                recorder_cap = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--slow-ms" => {
                slow_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("lgend: unknown argument `{other}`");
                usage();
            }
        }
    }

    let Some(socket) = socket else { usage() };
    let mut cfg = ServeConfig::new(&socket);
    if let Some(dir) = &cache_dir {
        cfg = cfg.with_cache_dir(dir);
    }
    if let Some(n) = workers {
        cfg = cfg.with_workers(n);
    }
    if let Some(n) = queue_capacity {
        cfg = cfg.with_queue_capacity(n);
    }
    if let Some(n) = recorder_cap {
        cfg = cfg.with_recorder_cap(n);
    }
    if let Some(ms) = slow_ms {
        cfg = cfg.with_slow_threshold(Duration::from_millis(ms));
    }

    let daemon = match Lgend::start(cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("lgend: failed to start on {}: {e}", socket.display());
            std::process::exit(1);
        }
    };
    eprintln!(
        "lgend: serving on {}{}{}",
        socket.display(),
        cache_dir
            .as_deref()
            .map(|d| format!(" (cache: {})", d.display()))
            .unwrap_or_default(),
        slow_ms
            .map(|ms| format!(" (slow-trace: >={ms}ms)"))
            .unwrap_or_default()
    );
    daemon.join();
    eprintln!("lgend: drained, exiting");
}
