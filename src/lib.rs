//! # lgen — a basic linear algebra compiler for embedded processors
//!
//! A Rust reimplementation of **LGen**, the Spiral-style research compiler
//! for small-scale, fixed-size basic linear algebra computations (BLACs),
//! as extended for embedded processors (Intel Atom/SSSE3, ARM
//! Cortex-A8/A9 NEON, ARM1176 scalar) — see the repository's `DESIGN.md`
//! for the paper mapping.
//!
//! This facade crate re-exports the workspace layers:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`ll`] | `lgen-ll` | the LL language: BLACs, size inference, tiling grids, naive reference |
//! | [`absint`] | `lgen-absint` | abstract interpretation: Interval × Congruence reduced product |
//! | [`isa`] | `lgen-isa` | vector ISAs, machine opcodes, per-core cost tables |
//! | [`cir`] | `lgen-cir` | C-IR, generic loads/stores, passes, interpreter, C unparser |
//! | [`analysis`] | `lgen-analysis` | static instruction-mix and cost prediction over the arena C-IR |
//! | [`sigma`] | `lgen-sigma` | Σ-LL, the 18 ν-BLACs, the code generator |
//! | [`machine`] | `lgen-machine` | the microarchitecture simulator and measurement protocol |
//! | [`core`] | `lgen-core` | compile pipeline, variants, autotuner |
//! | [`baselines`] | `lgen-baselines` | competitor models (MKL/IPP/Eigen/ATLAS/compilers) |
//! | [`mediator`] | `lgen-mediator` | the experiment-farm middleware |
//! | [`serve`] | `lgen-serve` | the `lgend` compile daemon, client, and replay harness |
//!
//! # Quickstart
//!
//! Compile `y = αAx + βy` for Intel Atom, validate it, inspect the C code,
//! and measure flops/cycle:
//!
//! ```
//! use lgen::prelude::*;
//!
//! let blac = lgen::ll::paper::gemv(4, 12);
//! let cfg = CompileConfig::full(Microarch::Atom);
//! let kernel = compile(&blac, "sgemv_4x12", &cfg);
//!
//! // Numeric validation against the naive reference (§5.1.4).
//! let diff = check_kernel(&blac, &kernel, Microarch::Atom.vector_isa(), 1)?;
//! assert!(diff < 1e-3);
//!
//! // Cycle measurement on the Atom model.
//! let m = measure_blac(&blac, &kernel, Microarch::Atom, &[0; 5], 3)?;
//! assert!(m.flops_per_cycle() > 0.5);
//!
//! // The generated C.
//! let c_code = lgen::cir::unparse::unparse(&kernel, Microarch::Atom.vector_isa());
//! assert!(c_code.contains("_mm_load_ps"));
//! # Ok::<(), lgen::cir::ExecError>(())
//! ```

pub use lgen_absint as absint;
pub use lgen_analysis as analysis;
pub use lgen_baselines as baselines;
pub use lgen_cir as cir;
pub use lgen_core as core;
pub use lgen_isa as isa;
pub use lgen_ll as ll;
pub use lgen_machine as machine;
pub use lgen_mediator as mediator;
pub use lgen_serve as serve;
pub use lgen_sigma as sigma;
pub use lgen_telemetry as telemetry;

/// The most commonly used items, for `use lgen::prelude::*`.
pub mod prelude {
    pub use lgen_analysis::{analyze_kernel, StaticCost};
    pub use lgen_baselines::{compile_baseline, Competitor};
    pub use lgen_core::{
        check_kernel, check_program, compile, compile_program, measure_blac, measure_program,
        run_program_kernel, try_compile, try_compile_program, Autotuner, CompileConfig,
        CompiledProgram, FaultPlan, PassPipeline, ProgramTuner, PrunePolicy, TuneBudget, TuneError,
        TunedProgram, Variant, VerifyLevel,
    };
    pub use lgen_isa::{Microarch, VectorIsa};
    pub use lgen_ll::{parse_program, Blac, BlacBuilder, Program, ProgramBuilder, Structure};
    pub use lgen_machine::Simulator;
}
