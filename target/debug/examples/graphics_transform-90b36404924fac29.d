/root/repo/target/debug/examples/graphics_transform-90b36404924fac29.d: examples/graphics_transform.rs Cargo.toml

/root/repo/target/debug/examples/libgraphics_transform-90b36404924fac29.rmeta: examples/graphics_transform.rs Cargo.toml

examples/graphics_transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
