/root/repo/target/debug/examples/autotuning_tour-29ad16283d5e4c90.d: examples/autotuning_tour.rs

/root/repo/target/debug/examples/autotuning_tour-29ad16283d5e4c90: examples/autotuning_tour.rs

examples/autotuning_tour.rs:
