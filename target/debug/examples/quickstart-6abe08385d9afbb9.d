/root/repo/target/debug/examples/quickstart-6abe08385d9afbb9.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6abe08385d9afbb9: examples/quickstart.rs

examples/quickstart.rs:
