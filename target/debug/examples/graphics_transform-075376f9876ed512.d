/root/repo/target/debug/examples/graphics_transform-075376f9876ed512.d: examples/graphics_transform.rs

/root/repo/target/debug/examples/graphics_transform-075376f9876ed512: examples/graphics_transform.rs

examples/graphics_transform.rs:
