/root/repo/target/debug/examples/kalman_update-4fb8f24338766891.d: examples/kalman_update.rs Cargo.toml

/root/repo/target/debug/examples/libkalman_update-4fb8f24338766891.rmeta: examples/kalman_update.rs Cargo.toml

examples/kalman_update.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
