/root/repo/target/debug/examples/mediator_farm-e2bea571e0e888ec.d: examples/mediator_farm.rs Cargo.toml

/root/repo/target/debug/examples/libmediator_farm-e2bea571e0e888ec.rmeta: examples/mediator_farm.rs Cargo.toml

examples/mediator_farm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
