/root/repo/target/debug/examples/mediator_farm-1f7d0cf31dcb7f08.d: examples/mediator_farm.rs

/root/repo/target/debug/examples/mediator_farm-1f7d0cf31dcb7f08: examples/mediator_farm.rs

examples/mediator_farm.rs:
