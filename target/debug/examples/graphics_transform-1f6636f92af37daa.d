/root/repo/target/debug/examples/graphics_transform-1f6636f92af37daa.d: examples/graphics_transform.rs

/root/repo/target/debug/examples/graphics_transform-1f6636f92af37daa: examples/graphics_transform.rs

examples/graphics_transform.rs:
