/root/repo/target/debug/examples/kalman_update-efeb1ff4411833ac.d: examples/kalman_update.rs

/root/repo/target/debug/examples/kalman_update-efeb1ff4411833ac: examples/kalman_update.rs

examples/kalman_update.rs:
