/root/repo/target/debug/examples/autotuning_tour-ba38066805ae04cd.d: examples/autotuning_tour.rs Cargo.toml

/root/repo/target/debug/examples/libautotuning_tour-ba38066805ae04cd.rmeta: examples/autotuning_tour.rs Cargo.toml

examples/autotuning_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
