/root/repo/target/debug/examples/autotuning_tour-47f443d9209b017c.d: examples/autotuning_tour.rs

/root/repo/target/debug/examples/autotuning_tour-47f443d9209b017c: examples/autotuning_tour.rs

examples/autotuning_tour.rs:
