/root/repo/target/debug/examples/mediator_farm-ace342a13521a377.d: examples/mediator_farm.rs

/root/repo/target/debug/examples/mediator_farm-ace342a13521a377: examples/mediator_farm.rs

examples/mediator_farm.rs:
