/root/repo/target/debug/examples/quickstart-825650fa7cd42292.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-825650fa7cd42292: examples/quickstart.rs

examples/quickstart.rs:
