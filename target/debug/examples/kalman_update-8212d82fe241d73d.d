/root/repo/target/debug/examples/kalman_update-8212d82fe241d73d.d: examples/kalman_update.rs

/root/repo/target/debug/examples/kalman_update-8212d82fe241d73d: examples/kalman_update.rs

examples/kalman_update.rs:
