/root/repo/target/debug/deps/parking_lot-57b83f381ddc3e69.d: compat/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-57b83f381ddc3e69: compat/parking_lot/src/lib.rs

compat/parking_lot/src/lib.rs:
