/root/repo/target/debug/deps/lgen_isa-6e36fc288c4a74e4.d: crates/isa/src/lib.rs crates/isa/src/cost.rs crates/isa/src/energy.rs crates/isa/src/inst.rs crates/isa/src/ops.rs crates/isa/src/uarch.rs

/root/repo/target/debug/deps/liblgen_isa-6e36fc288c4a74e4.rlib: crates/isa/src/lib.rs crates/isa/src/cost.rs crates/isa/src/energy.rs crates/isa/src/inst.rs crates/isa/src/ops.rs crates/isa/src/uarch.rs

/root/repo/target/debug/deps/liblgen_isa-6e36fc288c4a74e4.rmeta: crates/isa/src/lib.rs crates/isa/src/cost.rs crates/isa/src/energy.rs crates/isa/src/inst.rs crates/isa/src/ops.rs crates/isa/src/uarch.rs

crates/isa/src/lib.rs:
crates/isa/src/cost.rs:
crates/isa/src/energy.rs:
crates/isa/src/inst.rs:
crates/isa/src/ops.rs:
crates/isa/src/uarch.rs:
