/root/repo/target/debug/deps/passes_preserve-3ac4ae359bee89bd.d: tests/passes_preserve.rs

/root/repo/target/debug/deps/passes_preserve-3ac4ae359bee89bd: tests/passes_preserve.rs

tests/passes_preserve.rs:
