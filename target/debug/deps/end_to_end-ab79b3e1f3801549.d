/root/repo/target/debug/deps/end_to_end-ab79b3e1f3801549.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-ab79b3e1f3801549: tests/end_to_end.rs

tests/end_to_end.rs:
