/root/repo/target/debug/deps/lgen_baselines-a5c920e0f075106d.d: crates/baselines/src/lib.rs crates/baselines/src/blas.rs crates/baselines/src/eigen.rs crates/baselines/src/emit.rs crates/baselines/src/handwritten.rs crates/baselines/src/pattern.rs Cargo.toml

/root/repo/target/debug/deps/liblgen_baselines-a5c920e0f075106d.rmeta: crates/baselines/src/lib.rs crates/baselines/src/blas.rs crates/baselines/src/eigen.rs crates/baselines/src/emit.rs crates/baselines/src/handwritten.rs crates/baselines/src/pattern.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/blas.rs:
crates/baselines/src/eigen.rs:
crates/baselines/src/emit.rs:
crates/baselines/src/handwritten.rs:
crates/baselines/src/pattern.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
