/root/repo/target/debug/deps/lgenc-da56f3224b20b7b7.d: src/bin/lgenc.rs

/root/repo/target/debug/deps/lgenc-da56f3224b20b7b7: src/bin/lgenc.rs

src/bin/lgenc.rs:
