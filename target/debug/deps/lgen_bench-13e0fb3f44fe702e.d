/root/repo/target/debug/deps/lgen_bench-13e0fb3f44fe702e.d: crates/bench/src/lib.rs crates/bench/src/drivers.rs crates/bench/src/figures.rs crates/bench/src/series.rs

/root/repo/target/debug/deps/liblgen_bench-13e0fb3f44fe702e.rlib: crates/bench/src/lib.rs crates/bench/src/drivers.rs crates/bench/src/figures.rs crates/bench/src/series.rs

/root/repo/target/debug/deps/liblgen_bench-13e0fb3f44fe702e.rmeta: crates/bench/src/lib.rs crates/bench/src/drivers.rs crates/bench/src/figures.rs crates/bench/src/series.rs

crates/bench/src/lib.rs:
crates/bench/src/drivers.rs:
crates/bench/src/figures.rs:
crates/bench/src/series.rs:
