/root/repo/target/debug/deps/lgen_baselines-e0922fef229f571b.d: crates/baselines/src/lib.rs crates/baselines/src/blas.rs crates/baselines/src/eigen.rs crates/baselines/src/emit.rs crates/baselines/src/handwritten.rs crates/baselines/src/pattern.rs

/root/repo/target/debug/deps/lgen_baselines-e0922fef229f571b: crates/baselines/src/lib.rs crates/baselines/src/blas.rs crates/baselines/src/eigen.rs crates/baselines/src/emit.rs crates/baselines/src/handwritten.rs crates/baselines/src/pattern.rs

crates/baselines/src/lib.rs:
crates/baselines/src/blas.rs:
crates/baselines/src/eigen.rs:
crates/baselines/src/emit.rs:
crates/baselines/src/handwritten.rs:
crates/baselines/src/pattern.rs:
