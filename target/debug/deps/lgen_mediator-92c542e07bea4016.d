/root/repo/target/debug/deps/lgen_mediator-92c542e07bea4016.d: crates/mediator/src/lib.rs crates/mediator/src/api.rs crates/mediator/src/measure.rs crates/mediator/src/scheduler.rs

/root/repo/target/debug/deps/liblgen_mediator-92c542e07bea4016.rlib: crates/mediator/src/lib.rs crates/mediator/src/api.rs crates/mediator/src/measure.rs crates/mediator/src/scheduler.rs

/root/repo/target/debug/deps/liblgen_mediator-92c542e07bea4016.rmeta: crates/mediator/src/lib.rs crates/mediator/src/api.rs crates/mediator/src/measure.rs crates/mediator/src/scheduler.rs

crates/mediator/src/lib.rs:
crates/mediator/src/api.rs:
crates/mediator/src/measure.rs:
crates/mediator/src/scheduler.rs:
