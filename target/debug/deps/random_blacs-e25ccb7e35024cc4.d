/root/repo/target/debug/deps/random_blacs-e25ccb7e35024cc4.d: tests/random_blacs.rs

/root/repo/target/debug/deps/random_blacs-e25ccb7e35024cc4: tests/random_blacs.rs

tests/random_blacs.rs:
