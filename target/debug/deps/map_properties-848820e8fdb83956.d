/root/repo/target/debug/deps/map_properties-848820e8fdb83956.d: crates/cir/tests/map_properties.rs

/root/repo/target/debug/deps/map_properties-848820e8fdb83956: crates/cir/tests/map_properties.rs

crates/cir/tests/map_properties.rs:
