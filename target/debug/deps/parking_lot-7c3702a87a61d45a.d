/root/repo/target/debug/deps/parking_lot-7c3702a87a61d45a.d: compat/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-7c3702a87a61d45a.rlib: compat/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-7c3702a87a61d45a.rmeta: compat/parking_lot/src/lib.rs

compat/parking_lot/src/lib.rs:
