/root/repo/target/debug/deps/passes_preserve-f9634c8d9342ed24.d: tests/passes_preserve.rs Cargo.toml

/root/repo/target/debug/deps/libpasses_preserve-f9634c8d9342ed24.rmeta: tests/passes_preserve.rs Cargo.toml

tests/passes_preserve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
