/root/repo/target/debug/deps/golden_c-ee766f8f0a54aa88.d: tests/golden_c.rs

/root/repo/target/debug/deps/golden_c-ee766f8f0a54aa88: tests/golden_c.rs

tests/golden_c.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
