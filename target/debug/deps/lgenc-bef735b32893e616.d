/root/repo/target/debug/deps/lgenc-bef735b32893e616.d: src/bin/lgenc.rs

/root/repo/target/debug/deps/lgenc-bef735b32893e616: src/bin/lgenc.rs

src/bin/lgenc.rs:
