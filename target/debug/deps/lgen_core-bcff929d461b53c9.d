/root/repo/target/debug/deps/lgen_core-bcff929d461b53c9.d: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/pipeline.rs crates/core/src/pool.rs Cargo.toml

/root/repo/target/debug/deps/liblgen_core-bcff929d461b53c9.rmeta: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/pipeline.rs crates/core/src/pool.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/autotune.rs:
crates/core/src/cache.rs:
crates/core/src/config.rs:
crates/core/src/exec.rs:
crates/core/src/pipeline.rs:
crates/core/src/pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
