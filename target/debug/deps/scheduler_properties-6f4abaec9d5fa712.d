/root/repo/target/debug/deps/scheduler_properties-6f4abaec9d5fa712.d: crates/machine/tests/scheduler_properties.rs Cargo.toml

/root/repo/target/debug/deps/libscheduler_properties-6f4abaec9d5fa712.rmeta: crates/machine/tests/scheduler_properties.rs Cargo.toml

crates/machine/tests/scheduler_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
