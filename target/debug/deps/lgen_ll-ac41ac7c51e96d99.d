/root/repo/target/debug/deps/lgen_ll-ac41ac7c51e96d99.d: crates/ll/src/lib.rs crates/ll/src/blac.rs crates/ll/src/paper.rs crates/ll/src/parse.rs crates/ll/src/reference.rs crates/ll/src/tile.rs Cargo.toml

/root/repo/target/debug/deps/liblgen_ll-ac41ac7c51e96d99.rmeta: crates/ll/src/lib.rs crates/ll/src/blac.rs crates/ll/src/paper.rs crates/ll/src/parse.rs crates/ll/src/reference.rs crates/ll/src/tile.rs Cargo.toml

crates/ll/src/lib.rs:
crates/ll/src/blac.rs:
crates/ll/src/paper.rs:
crates/ll/src/parse.rs:
crates/ll/src/reference.rs:
crates/ll/src/tile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
