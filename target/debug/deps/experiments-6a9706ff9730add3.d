/root/repo/target/debug/deps/experiments-6a9706ff9730add3.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-6a9706ff9730add3: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
