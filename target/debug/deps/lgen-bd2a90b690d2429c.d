/root/repo/target/debug/deps/lgen-bd2a90b690d2429c.d: src/lib.rs

/root/repo/target/debug/deps/lgen-bd2a90b690d2429c: src/lib.rs

src/lib.rs:
