/root/repo/target/debug/deps/lgen_sigma-e816fe17f9e8e2d7.d: crates/sigma/src/lib.rs crates/sigma/src/codegen.rs crates/sigma/src/nu_blacs.rs crates/sigma/src/sigma_ll.rs

/root/repo/target/debug/deps/liblgen_sigma-e816fe17f9e8e2d7.rlib: crates/sigma/src/lib.rs crates/sigma/src/codegen.rs crates/sigma/src/nu_blacs.rs crates/sigma/src/sigma_ll.rs

/root/repo/target/debug/deps/liblgen_sigma-e816fe17f9e8e2d7.rmeta: crates/sigma/src/lib.rs crates/sigma/src/codegen.rs crates/sigma/src/nu_blacs.rs crates/sigma/src/sigma_ll.rs

crates/sigma/src/lib.rs:
crates/sigma/src/codegen.rs:
crates/sigma/src/nu_blacs.rs:
crates/sigma/src/sigma_ll.rs:
