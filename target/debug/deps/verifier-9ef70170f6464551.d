/root/repo/target/debug/deps/verifier-9ef70170f6464551.d: tests/verifier.rs Cargo.toml

/root/repo/target/debug/deps/libverifier-9ef70170f6464551.rmeta: tests/verifier.rs Cargo.toml

tests/verifier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
