/root/repo/target/debug/deps/parking_lot-d80d9ea8d2a0a9bb.d: compat/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-d80d9ea8d2a0a9bb.rmeta: compat/parking_lot/src/lib.rs Cargo.toml

compat/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
