/root/repo/target/debug/deps/lgen_baselines-f5dce3e1cf3ddabc.d: crates/baselines/src/lib.rs crates/baselines/src/blas.rs crates/baselines/src/eigen.rs crates/baselines/src/emit.rs crates/baselines/src/handwritten.rs crates/baselines/src/pattern.rs

/root/repo/target/debug/deps/liblgen_baselines-f5dce3e1cf3ddabc.rlib: crates/baselines/src/lib.rs crates/baselines/src/blas.rs crates/baselines/src/eigen.rs crates/baselines/src/emit.rs crates/baselines/src/handwritten.rs crates/baselines/src/pattern.rs

/root/repo/target/debug/deps/liblgen_baselines-f5dce3e1cf3ddabc.rmeta: crates/baselines/src/lib.rs crates/baselines/src/blas.rs crates/baselines/src/eigen.rs crates/baselines/src/emit.rs crates/baselines/src/handwritten.rs crates/baselines/src/pattern.rs

crates/baselines/src/lib.rs:
crates/baselines/src/blas.rs:
crates/baselines/src/eigen.rs:
crates/baselines/src/emit.rs:
crates/baselines/src/handwritten.rs:
crates/baselines/src/pattern.rs:
