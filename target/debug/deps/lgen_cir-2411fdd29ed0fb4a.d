/root/repo/target/debug/deps/lgen_cir-2411fdd29ed0fb4a.d: crates/cir/src/lib.rs crates/cir/src/builder.rs crates/cir/src/diag.rs crates/cir/src/interp.rs crates/cir/src/ir.rs crates/cir/src/lower.rs crates/cir/src/map.rs crates/cir/src/passes/mod.rs crates/cir/src/passes/align.rs crates/cir/src/passes/copy_prop.rs crates/cir/src/passes/dce.rs crates/cir/src/passes/scalar_replacement.rs crates/cir/src/passes/unroll.rs crates/cir/src/unparse.rs crates/cir/src/verify.rs

/root/repo/target/debug/deps/liblgen_cir-2411fdd29ed0fb4a.rlib: crates/cir/src/lib.rs crates/cir/src/builder.rs crates/cir/src/diag.rs crates/cir/src/interp.rs crates/cir/src/ir.rs crates/cir/src/lower.rs crates/cir/src/map.rs crates/cir/src/passes/mod.rs crates/cir/src/passes/align.rs crates/cir/src/passes/copy_prop.rs crates/cir/src/passes/dce.rs crates/cir/src/passes/scalar_replacement.rs crates/cir/src/passes/unroll.rs crates/cir/src/unparse.rs crates/cir/src/verify.rs

/root/repo/target/debug/deps/liblgen_cir-2411fdd29ed0fb4a.rmeta: crates/cir/src/lib.rs crates/cir/src/builder.rs crates/cir/src/diag.rs crates/cir/src/interp.rs crates/cir/src/ir.rs crates/cir/src/lower.rs crates/cir/src/map.rs crates/cir/src/passes/mod.rs crates/cir/src/passes/align.rs crates/cir/src/passes/copy_prop.rs crates/cir/src/passes/dce.rs crates/cir/src/passes/scalar_replacement.rs crates/cir/src/passes/unroll.rs crates/cir/src/unparse.rs crates/cir/src/verify.rs

crates/cir/src/lib.rs:
crates/cir/src/builder.rs:
crates/cir/src/diag.rs:
crates/cir/src/interp.rs:
crates/cir/src/ir.rs:
crates/cir/src/lower.rs:
crates/cir/src/map.rs:
crates/cir/src/passes/mod.rs:
crates/cir/src/passes/align.rs:
crates/cir/src/passes/copy_prop.rs:
crates/cir/src/passes/dce.rs:
crates/cir/src/passes/scalar_replacement.rs:
crates/cir/src/passes/unroll.rs:
crates/cir/src/unparse.rs:
crates/cir/src/verify.rs:
