/root/repo/target/debug/deps/scheduler_properties-881f81d0a71311c9.d: crates/machine/tests/scheduler_properties.rs

/root/repo/target/debug/deps/scheduler_properties-881f81d0a71311c9: crates/machine/tests/scheduler_properties.rs

crates/machine/tests/scheduler_properties.rs:
