/root/repo/target/debug/deps/lgen_bench-eccf24acd1a62cda.d: crates/bench/src/lib.rs crates/bench/src/drivers.rs crates/bench/src/figures.rs crates/bench/src/series.rs

/root/repo/target/debug/deps/liblgen_bench-eccf24acd1a62cda.rlib: crates/bench/src/lib.rs crates/bench/src/drivers.rs crates/bench/src/figures.rs crates/bench/src/series.rs

/root/repo/target/debug/deps/liblgen_bench-eccf24acd1a62cda.rmeta: crates/bench/src/lib.rs crates/bench/src/drivers.rs crates/bench/src/figures.rs crates/bench/src/series.rs

crates/bench/src/lib.rs:
crates/bench/src/drivers.rs:
crates/bench/src/figures.rs:
crates/bench/src/series.rs:
