/root/repo/target/debug/deps/alignment-695cf1fef045858a.d: tests/alignment.rs

/root/repo/target/debug/deps/alignment-695cf1fef045858a: tests/alignment.rs

tests/alignment.rs:
