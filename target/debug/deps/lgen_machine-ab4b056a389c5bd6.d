/root/repo/target/debug/deps/lgen_machine-ab4b056a389c5bd6.d: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/measure.rs crates/machine/src/sched.rs Cargo.toml

/root/repo/target/debug/deps/liblgen_machine-ab4b056a389c5bd6.rmeta: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/measure.rs crates/machine/src/sched.rs Cargo.toml

crates/machine/src/lib.rs:
crates/machine/src/cache.rs:
crates/machine/src/measure.rs:
crates/machine/src/sched.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
