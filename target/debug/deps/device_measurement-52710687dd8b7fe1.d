/root/repo/target/debug/deps/device_measurement-52710687dd8b7fe1.d: crates/mediator/tests/device_measurement.rs Cargo.toml

/root/repo/target/debug/deps/libdevice_measurement-52710687dd8b7fe1.rmeta: crates/mediator/tests/device_measurement.rs Cargo.toml

crates/mediator/tests/device_measurement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
