/root/repo/target/debug/deps/crossbeam-ce90db2c19ca3b9a.d: compat/crossbeam/src/lib.rs

/root/repo/target/debug/deps/crossbeam-ce90db2c19ca3b9a: compat/crossbeam/src/lib.rs

compat/crossbeam/src/lib.rs:
