/root/repo/target/debug/deps/lgen_machine-e5a4181e312c5b20.d: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/measure.rs crates/machine/src/sched.rs

/root/repo/target/debug/deps/liblgen_machine-e5a4181e312c5b20.rlib: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/measure.rs crates/machine/src/sched.rs

/root/repo/target/debug/deps/liblgen_machine-e5a4181e312c5b20.rmeta: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/measure.rs crates/machine/src/sched.rs

crates/machine/src/lib.rs:
crates/machine/src/cache.rs:
crates/machine/src/measure.rs:
crates/machine/src/sched.rs:
