/root/repo/target/debug/deps/lgen_ll-fc79950ea39bb5c0.d: crates/ll/src/lib.rs crates/ll/src/blac.rs crates/ll/src/paper.rs crates/ll/src/parse.rs crates/ll/src/reference.rs crates/ll/src/tile.rs

/root/repo/target/debug/deps/lgen_ll-fc79950ea39bb5c0: crates/ll/src/lib.rs crates/ll/src/blac.rs crates/ll/src/paper.rs crates/ll/src/parse.rs crates/ll/src/reference.rs crates/ll/src/tile.rs

crates/ll/src/lib.rs:
crates/ll/src/blac.rs:
crates/ll/src/paper.rs:
crates/ll/src/parse.rs:
crates/ll/src/reference.rs:
crates/ll/src/tile.rs:
