/root/repo/target/debug/deps/experiments-dd2ed8f4939a29ae.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-dd2ed8f4939a29ae.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
