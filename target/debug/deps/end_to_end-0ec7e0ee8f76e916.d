/root/repo/target/debug/deps/end_to_end-0ec7e0ee8f76e916.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-0ec7e0ee8f76e916: tests/end_to_end.rs

tests/end_to_end.rs:
