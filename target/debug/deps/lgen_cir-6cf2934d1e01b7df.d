/root/repo/target/debug/deps/lgen_cir-6cf2934d1e01b7df.d: crates/cir/src/lib.rs crates/cir/src/builder.rs crates/cir/src/diag.rs crates/cir/src/interp.rs crates/cir/src/ir.rs crates/cir/src/lower.rs crates/cir/src/map.rs crates/cir/src/passes/mod.rs crates/cir/src/passes/align.rs crates/cir/src/passes/copy_prop.rs crates/cir/src/passes/dce.rs crates/cir/src/passes/scalar_replacement.rs crates/cir/src/passes/unroll.rs crates/cir/src/unparse.rs crates/cir/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/liblgen_cir-6cf2934d1e01b7df.rmeta: crates/cir/src/lib.rs crates/cir/src/builder.rs crates/cir/src/diag.rs crates/cir/src/interp.rs crates/cir/src/ir.rs crates/cir/src/lower.rs crates/cir/src/map.rs crates/cir/src/passes/mod.rs crates/cir/src/passes/align.rs crates/cir/src/passes/copy_prop.rs crates/cir/src/passes/dce.rs crates/cir/src/passes/scalar_replacement.rs crates/cir/src/passes/unroll.rs crates/cir/src/unparse.rs crates/cir/src/verify.rs Cargo.toml

crates/cir/src/lib.rs:
crates/cir/src/builder.rs:
crates/cir/src/diag.rs:
crates/cir/src/interp.rs:
crates/cir/src/ir.rs:
crates/cir/src/lower.rs:
crates/cir/src/map.rs:
crates/cir/src/passes/mod.rs:
crates/cir/src/passes/align.rs:
crates/cir/src/passes/copy_prop.rs:
crates/cir/src/passes/dce.rs:
crates/cir/src/passes/scalar_replacement.rs:
crates/cir/src/passes/unroll.rs:
crates/cir/src/unparse.rs:
crates/cir/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
