/root/repo/target/debug/deps/device_measurement-cf98f50e7fdeab5b.d: crates/mediator/tests/device_measurement.rs

/root/repo/target/debug/deps/device_measurement-cf98f50e7fdeab5b: crates/mediator/tests/device_measurement.rs

crates/mediator/tests/device_measurement.rs:
