/root/repo/target/debug/deps/lgen_absint-4cd943623a58bc83.d: crates/absint/src/lib.rs crates/absint/src/analysis.rs crates/absint/src/congruence.rs crates/absint/src/domain.rs crates/absint/src/interval.rs crates/absint/src/reduced.rs crates/absint/src/sign.rs

/root/repo/target/debug/deps/liblgen_absint-4cd943623a58bc83.rlib: crates/absint/src/lib.rs crates/absint/src/analysis.rs crates/absint/src/congruence.rs crates/absint/src/domain.rs crates/absint/src/interval.rs crates/absint/src/reduced.rs crates/absint/src/sign.rs

/root/repo/target/debug/deps/liblgen_absint-4cd943623a58bc83.rmeta: crates/absint/src/lib.rs crates/absint/src/analysis.rs crates/absint/src/congruence.rs crates/absint/src/domain.rs crates/absint/src/interval.rs crates/absint/src/reduced.rs crates/absint/src/sign.rs

crates/absint/src/lib.rs:
crates/absint/src/analysis.rs:
crates/absint/src/congruence.rs:
crates/absint/src/domain.rs:
crates/absint/src/interval.rs:
crates/absint/src/reduced.rs:
crates/absint/src/sign.rs:
