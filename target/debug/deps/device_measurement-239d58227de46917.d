/root/repo/target/debug/deps/device_measurement-239d58227de46917.d: crates/mediator/tests/device_measurement.rs

/root/repo/target/debug/deps/device_measurement-239d58227de46917: crates/mediator/tests/device_measurement.rs

crates/mediator/tests/device_measurement.rs:
