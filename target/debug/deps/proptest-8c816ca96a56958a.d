/root/repo/target/debug/deps/proptest-8c816ca96a56958a.d: compat/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-8c816ca96a56958a: compat/proptest/src/lib.rs

compat/proptest/src/lib.rs:
