/root/repo/target/debug/deps/lgen_absint-e4a185cc5f6fcef4.d: crates/absint/src/lib.rs crates/absint/src/analysis.rs crates/absint/src/congruence.rs crates/absint/src/domain.rs crates/absint/src/interval.rs crates/absint/src/reduced.rs crates/absint/src/sign.rs

/root/repo/target/debug/deps/lgen_absint-e4a185cc5f6fcef4: crates/absint/src/lib.rs crates/absint/src/analysis.rs crates/absint/src/congruence.rs crates/absint/src/domain.rs crates/absint/src/interval.rs crates/absint/src/reduced.rs crates/absint/src/sign.rs

crates/absint/src/lib.rs:
crates/absint/src/analysis.rs:
crates/absint/src/congruence.rs:
crates/absint/src/domain.rs:
crates/absint/src/interval.rs:
crates/absint/src/reduced.rs:
crates/absint/src/sign.rs:
