/root/repo/target/debug/deps/lgen_sigma-647ae81501c3a9b2.d: crates/sigma/src/lib.rs crates/sigma/src/codegen.rs crates/sigma/src/nu_blacs.rs crates/sigma/src/sigma_ll.rs Cargo.toml

/root/repo/target/debug/deps/liblgen_sigma-647ae81501c3a9b2.rmeta: crates/sigma/src/lib.rs crates/sigma/src/codegen.rs crates/sigma/src/nu_blacs.rs crates/sigma/src/sigma_ll.rs Cargo.toml

crates/sigma/src/lib.rs:
crates/sigma/src/codegen.rs:
crates/sigma/src/nu_blacs.rs:
crates/sigma/src/sigma_ll.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
