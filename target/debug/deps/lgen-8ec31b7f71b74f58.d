/root/repo/target/debug/deps/lgen-8ec31b7f71b74f58.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblgen-8ec31b7f71b74f58.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
