/root/repo/target/debug/deps/tune_cache-646b7d509ccd4c48.d: crates/bench/benches/tune_cache.rs Cargo.toml

/root/repo/target/debug/deps/libtune_cache-646b7d509ccd4c48.rmeta: crates/bench/benches/tune_cache.rs Cargo.toml

crates/bench/benches/tune_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
