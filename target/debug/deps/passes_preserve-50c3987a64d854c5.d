/root/repo/target/debug/deps/passes_preserve-50c3987a64d854c5.d: tests/passes_preserve.rs

/root/repo/target/debug/deps/passes_preserve-50c3987a64d854c5: tests/passes_preserve.rs

tests/passes_preserve.rs:
