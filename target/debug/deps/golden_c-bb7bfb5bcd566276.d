/root/repo/target/debug/deps/golden_c-bb7bfb5bcd566276.d: tests/golden_c.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_c-bb7bfb5bcd566276.rmeta: tests/golden_c.rs Cargo.toml

tests/golden_c.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
