/root/repo/target/debug/deps/lgenc-aff8e646eda4f1f6.d: src/bin/lgenc.rs

/root/repo/target/debug/deps/lgenc-aff8e646eda4f1f6: src/bin/lgenc.rs

src/bin/lgenc.rs:
