/root/repo/target/debug/deps/lgen-3b9f811409d3106a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblgen-3b9f811409d3106a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
