/root/repo/target/debug/deps/lgen_sigma-9f15ef2fdc8cdbb7.d: crates/sigma/src/lib.rs crates/sigma/src/codegen.rs crates/sigma/src/nu_blacs.rs crates/sigma/src/sigma_ll.rs

/root/repo/target/debug/deps/lgen_sigma-9f15ef2fdc8cdbb7: crates/sigma/src/lib.rs crates/sigma/src/codegen.rs crates/sigma/src/nu_blacs.rs crates/sigma/src/sigma_ll.rs

crates/sigma/src/lib.rs:
crates/sigma/src/codegen.rs:
crates/sigma/src/nu_blacs.rs:
crates/sigma/src/sigma_ll.rs:
