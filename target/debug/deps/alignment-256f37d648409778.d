/root/repo/target/debug/deps/alignment-256f37d648409778.d: tests/alignment.rs Cargo.toml

/root/repo/target/debug/deps/libalignment-256f37d648409778.rmeta: tests/alignment.rs Cargo.toml

tests/alignment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
