/root/repo/target/debug/deps/sigma_algebra-4bf37a842192bef1.d: crates/sigma/tests/sigma_algebra.rs

/root/repo/target/debug/deps/sigma_algebra-4bf37a842192bef1: crates/sigma/tests/sigma_algebra.rs

crates/sigma/tests/sigma_algebra.rs:
