/root/repo/target/debug/deps/lgen_ll-50e04ca0f9b4f1a6.d: crates/ll/src/lib.rs crates/ll/src/blac.rs crates/ll/src/paper.rs crates/ll/src/parse.rs crates/ll/src/reference.rs crates/ll/src/tile.rs

/root/repo/target/debug/deps/liblgen_ll-50e04ca0f9b4f1a6.rlib: crates/ll/src/lib.rs crates/ll/src/blac.rs crates/ll/src/paper.rs crates/ll/src/parse.rs crates/ll/src/reference.rs crates/ll/src/tile.rs

/root/repo/target/debug/deps/liblgen_ll-50e04ca0f9b4f1a6.rmeta: crates/ll/src/lib.rs crates/ll/src/blac.rs crates/ll/src/paper.rs crates/ll/src/parse.rs crates/ll/src/reference.rs crates/ll/src/tile.rs

crates/ll/src/lib.rs:
crates/ll/src/blac.rs:
crates/ll/src/paper.rs:
crates/ll/src/parse.rs:
crates/ll/src/reference.rs:
crates/ll/src/tile.rs:
