/root/repo/target/debug/deps/experiments-36846e558f556136.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-36846e558f556136: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
