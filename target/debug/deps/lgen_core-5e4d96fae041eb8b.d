/root/repo/target/debug/deps/lgen_core-5e4d96fae041eb8b.d: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/pipeline.rs crates/core/src/pool.rs

/root/repo/target/debug/deps/lgen_core-5e4d96fae041eb8b: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/pipeline.rs crates/core/src/pool.rs

crates/core/src/lib.rs:
crates/core/src/autotune.rs:
crates/core/src/cache.rs:
crates/core/src/config.rs:
crates/core/src/exec.rs:
crates/core/src/pipeline.rs:
crates/core/src/pool.rs:
