/root/repo/target/debug/deps/lgen_mediator-b79d4aaf1e082c6a.d: crates/mediator/src/lib.rs crates/mediator/src/api.rs crates/mediator/src/measure.rs crates/mediator/src/scheduler.rs Cargo.toml

/root/repo/target/debug/deps/liblgen_mediator-b79d4aaf1e082c6a.rmeta: crates/mediator/src/lib.rs crates/mediator/src/api.rs crates/mediator/src/measure.rs crates/mediator/src/scheduler.rs Cargo.toml

crates/mediator/src/lib.rs:
crates/mediator/src/api.rs:
crates/mediator/src/measure.rs:
crates/mediator/src/scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
