/root/repo/target/debug/deps/lgen-d868059531f253c0.d: src/lib.rs

/root/repo/target/debug/deps/lgen-d868059531f253c0: src/lib.rs

src/lib.rs:
