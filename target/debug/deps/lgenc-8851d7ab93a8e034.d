/root/repo/target/debug/deps/lgenc-8851d7ab93a8e034.d: src/bin/lgenc.rs

/root/repo/target/debug/deps/lgenc-8851d7ab93a8e034: src/bin/lgenc.rs

src/bin/lgenc.rs:
