/root/repo/target/debug/deps/lgen_mediator-74ef169a1ae2cd1a.d: crates/mediator/src/lib.rs crates/mediator/src/api.rs crates/mediator/src/measure.rs crates/mediator/src/scheduler.rs

/root/repo/target/debug/deps/lgen_mediator-74ef169a1ae2cd1a: crates/mediator/src/lib.rs crates/mediator/src/api.rs crates/mediator/src/measure.rs crates/mediator/src/scheduler.rs

crates/mediator/src/lib.rs:
crates/mediator/src/api.rs:
crates/mediator/src/measure.rs:
crates/mediator/src/scheduler.rs:
