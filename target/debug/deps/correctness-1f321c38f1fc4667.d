/root/repo/target/debug/deps/correctness-1f321c38f1fc4667.d: crates/baselines/tests/correctness.rs

/root/repo/target/debug/deps/correctness-1f321c38f1fc4667: crates/baselines/tests/correctness.rs

crates/baselines/tests/correctness.rs:
