/root/repo/target/debug/deps/lgenc-dcb06835ee378d13.d: src/bin/lgenc.rs Cargo.toml

/root/repo/target/debug/deps/liblgenc-dcb06835ee378d13.rmeta: src/bin/lgenc.rs Cargo.toml

src/bin/lgenc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
