/root/repo/target/debug/deps/kernel_cache-5e988d7487148432.d: tests/kernel_cache.rs

/root/repo/target/debug/deps/kernel_cache-5e988d7487148432: tests/kernel_cache.rs

tests/kernel_cache.rs:
