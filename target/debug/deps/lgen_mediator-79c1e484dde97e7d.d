/root/repo/target/debug/deps/lgen_mediator-79c1e484dde97e7d.d: crates/mediator/src/lib.rs crates/mediator/src/api.rs crates/mediator/src/measure.rs crates/mediator/src/scheduler.rs

/root/repo/target/debug/deps/lgen_mediator-79c1e484dde97e7d: crates/mediator/src/lib.rs crates/mediator/src/api.rs crates/mediator/src/measure.rs crates/mediator/src/scheduler.rs

crates/mediator/src/lib.rs:
crates/mediator/src/api.rs:
crates/mediator/src/measure.rs:
crates/mediator/src/scheduler.rs:
