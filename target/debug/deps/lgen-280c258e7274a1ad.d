/root/repo/target/debug/deps/lgen-280c258e7274a1ad.d: src/lib.rs

/root/repo/target/debug/deps/liblgen-280c258e7274a1ad.rlib: src/lib.rs

/root/repo/target/debug/deps/liblgen-280c258e7274a1ad.rmeta: src/lib.rs

src/lib.rs:
