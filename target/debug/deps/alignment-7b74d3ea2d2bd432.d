/root/repo/target/debug/deps/alignment-7b74d3ea2d2bd432.d: tests/alignment.rs

/root/repo/target/debug/deps/alignment-7b74d3ea2d2bd432: tests/alignment.rs

tests/alignment.rs:
