/root/repo/target/debug/deps/lgen-2379afcbfd5a2620.d: src/lib.rs

/root/repo/target/debug/deps/liblgen-2379afcbfd5a2620.rlib: src/lib.rs

/root/repo/target/debug/deps/liblgen-2379afcbfd5a2620.rmeta: src/lib.rs

src/lib.rs:
