/root/repo/target/debug/deps/sigma_algebra-8a4621b93d411322.d: crates/sigma/tests/sigma_algebra.rs Cargo.toml

/root/repo/target/debug/deps/libsigma_algebra-8a4621b93d411322.rmeta: crates/sigma/tests/sigma_algebra.rs Cargo.toml

crates/sigma/tests/sigma_algebra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
