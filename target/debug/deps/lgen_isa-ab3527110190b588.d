/root/repo/target/debug/deps/lgen_isa-ab3527110190b588.d: crates/isa/src/lib.rs crates/isa/src/cost.rs crates/isa/src/energy.rs crates/isa/src/inst.rs crates/isa/src/ops.rs crates/isa/src/uarch.rs Cargo.toml

/root/repo/target/debug/deps/liblgen_isa-ab3527110190b588.rmeta: crates/isa/src/lib.rs crates/isa/src/cost.rs crates/isa/src/energy.rs crates/isa/src/inst.rs crates/isa/src/ops.rs crates/isa/src/uarch.rs Cargo.toml

crates/isa/src/lib.rs:
crates/isa/src/cost.rs:
crates/isa/src/energy.rs:
crates/isa/src/inst.rs:
crates/isa/src/ops.rs:
crates/isa/src/uarch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
