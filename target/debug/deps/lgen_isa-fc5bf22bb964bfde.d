/root/repo/target/debug/deps/lgen_isa-fc5bf22bb964bfde.d: crates/isa/src/lib.rs crates/isa/src/cost.rs crates/isa/src/energy.rs crates/isa/src/inst.rs crates/isa/src/ops.rs crates/isa/src/uarch.rs

/root/repo/target/debug/deps/lgen_isa-fc5bf22bb964bfde: crates/isa/src/lib.rs crates/isa/src/cost.rs crates/isa/src/energy.rs crates/isa/src/inst.rs crates/isa/src/ops.rs crates/isa/src/uarch.rs

crates/isa/src/lib.rs:
crates/isa/src/cost.rs:
crates/isa/src/energy.rs:
crates/isa/src/inst.rs:
crates/isa/src/ops.rs:
crates/isa/src/uarch.rs:
