/root/repo/target/debug/deps/golden_c-1c799676ae380392.d: tests/golden_c.rs

/root/repo/target/debug/deps/golden_c-1c799676ae380392: tests/golden_c.rs

tests/golden_c.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
