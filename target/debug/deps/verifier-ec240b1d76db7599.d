/root/repo/target/debug/deps/verifier-ec240b1d76db7599.d: tests/verifier.rs

/root/repo/target/debug/deps/verifier-ec240b1d76db7599: tests/verifier.rs

tests/verifier.rs:
