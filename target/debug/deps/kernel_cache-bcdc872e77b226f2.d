/root/repo/target/debug/deps/kernel_cache-bcdc872e77b226f2.d: tests/kernel_cache.rs Cargo.toml

/root/repo/target/debug/deps/libkernel_cache-bcdc872e77b226f2.rmeta: tests/kernel_cache.rs Cargo.toml

tests/kernel_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
