/root/repo/target/debug/deps/crossbeam-16c6bc8c7c806c64.d: compat/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-16c6bc8c7c806c64.rlib: compat/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-16c6bc8c7c806c64.rmeta: compat/crossbeam/src/lib.rs

compat/crossbeam/src/lib.rs:
