/root/repo/target/debug/deps/lgen_core-2ed6885c58172bf7.d: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/pipeline.rs

/root/repo/target/debug/deps/lgen_core-2ed6885c58172bf7: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/pipeline.rs

crates/core/src/lib.rs:
crates/core/src/autotune.rs:
crates/core/src/config.rs:
crates/core/src/exec.rs:
crates/core/src/pipeline.rs:
