/root/repo/target/debug/deps/lgen_bench-1b1fb1ed0088ca75.d: crates/bench/src/lib.rs crates/bench/src/drivers.rs crates/bench/src/figures.rs crates/bench/src/series.rs

/root/repo/target/debug/deps/lgen_bench-1b1fb1ed0088ca75: crates/bench/src/lib.rs crates/bench/src/drivers.rs crates/bench/src/figures.rs crates/bench/src/series.rs

crates/bench/src/lib.rs:
crates/bench/src/drivers.rs:
crates/bench/src/figures.rs:
crates/bench/src/series.rs:
