/root/repo/target/debug/deps/random_blacs-4f40c57d87881734.d: tests/random_blacs.rs

/root/repo/target/debug/deps/random_blacs-4f40c57d87881734: tests/random_blacs.rs

tests/random_blacs.rs:
