/root/repo/target/debug/deps/lgen_core-9121ce2fb42dcb9b.d: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/pipeline.rs

/root/repo/target/debug/deps/liblgen_core-9121ce2fb42dcb9b.rlib: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/pipeline.rs

/root/repo/target/debug/deps/liblgen_core-9121ce2fb42dcb9b.rmeta: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/pipeline.rs

crates/core/src/lib.rs:
crates/core/src/autotune.rs:
crates/core/src/config.rs:
crates/core/src/exec.rs:
crates/core/src/pipeline.rs:
