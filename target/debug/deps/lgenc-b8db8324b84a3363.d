/root/repo/target/debug/deps/lgenc-b8db8324b84a3363.d: src/bin/lgenc.rs Cargo.toml

/root/repo/target/debug/deps/liblgenc-b8db8324b84a3363.rmeta: src/bin/lgenc.rs Cargo.toml

src/bin/lgenc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
