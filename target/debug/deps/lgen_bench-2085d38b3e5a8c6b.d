/root/repo/target/debug/deps/lgen_bench-2085d38b3e5a8c6b.d: crates/bench/src/lib.rs crates/bench/src/drivers.rs crates/bench/src/figures.rs crates/bench/src/series.rs Cargo.toml

/root/repo/target/debug/deps/liblgen_bench-2085d38b3e5a8c6b.rmeta: crates/bench/src/lib.rs crates/bench/src/drivers.rs crates/bench/src/figures.rs crates/bench/src/series.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/drivers.rs:
crates/bench/src/figures.rs:
crates/bench/src/series.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
