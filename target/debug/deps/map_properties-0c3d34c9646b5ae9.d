/root/repo/target/debug/deps/map_properties-0c3d34c9646b5ae9.d: crates/cir/tests/map_properties.rs Cargo.toml

/root/repo/target/debug/deps/libmap_properties-0c3d34c9646b5ae9.rmeta: crates/cir/tests/map_properties.rs Cargo.toml

crates/cir/tests/map_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
