/root/repo/target/debug/deps/compiler_passes-492d2c5fd03d9421.d: crates/bench/benches/compiler_passes.rs Cargo.toml

/root/repo/target/debug/deps/libcompiler_passes-492d2c5fd03d9421.rmeta: crates/bench/benches/compiler_passes.rs Cargo.toml

crates/bench/benches/compiler_passes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
