/root/repo/target/debug/deps/lgen_machine-3611e5ad0b66a9dd.d: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/measure.rs crates/machine/src/sched.rs

/root/repo/target/debug/deps/lgen_machine-3611e5ad0b66a9dd: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/measure.rs crates/machine/src/sched.rs

crates/machine/src/lib.rs:
crates/machine/src/cache.rs:
crates/machine/src/measure.rs:
crates/machine/src/sched.rs:
