/root/repo/target/debug/deps/lgen_ll-9e145e900e1a546c.d: crates/ll/src/lib.rs crates/ll/src/blac.rs crates/ll/src/paper.rs crates/ll/src/parse.rs crates/ll/src/reference.rs crates/ll/src/tile.rs Cargo.toml

/root/repo/target/debug/deps/liblgen_ll-9e145e900e1a546c.rmeta: crates/ll/src/lib.rs crates/ll/src/blac.rs crates/ll/src/paper.rs crates/ll/src/parse.rs crates/ll/src/reference.rs crates/ll/src/tile.rs Cargo.toml

crates/ll/src/lib.rs:
crates/ll/src/blac.rs:
crates/ll/src/paper.rs:
crates/ll/src/parse.rs:
crates/ll/src/reference.rs:
crates/ll/src/tile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
