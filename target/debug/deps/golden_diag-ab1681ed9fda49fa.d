/root/repo/target/debug/deps/golden_diag-ab1681ed9fda49fa.d: tests/golden_diag.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_diag-ab1681ed9fda49fa.rmeta: tests/golden_diag.rs Cargo.toml

tests/golden_diag.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
