/root/repo/target/debug/deps/random_blacs-4812cbe56a4c8f7d.d: tests/random_blacs.rs Cargo.toml

/root/repo/target/debug/deps/librandom_blacs-4812cbe56a4c8f7d.rmeta: tests/random_blacs.rs Cargo.toml

tests/random_blacs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
