/root/repo/target/debug/deps/lgen_core-bc7889bc3d7c10db.d: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/pipeline.rs crates/core/src/pool.rs

/root/repo/target/debug/deps/liblgen_core-bc7889bc3d7c10db.rlib: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/pipeline.rs crates/core/src/pool.rs

/root/repo/target/debug/deps/liblgen_core-bc7889bc3d7c10db.rmeta: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/pipeline.rs crates/core/src/pool.rs

crates/core/src/lib.rs:
crates/core/src/autotune.rs:
crates/core/src/cache.rs:
crates/core/src/config.rs:
crates/core/src/exec.rs:
crates/core/src/pipeline.rs:
crates/core/src/pool.rs:
