/root/repo/target/debug/deps/lgen_bench-cb1ddfcd03227231.d: crates/bench/src/lib.rs crates/bench/src/drivers.rs crates/bench/src/figures.rs crates/bench/src/series.rs

/root/repo/target/debug/deps/lgen_bench-cb1ddfcd03227231: crates/bench/src/lib.rs crates/bench/src/drivers.rs crates/bench/src/figures.rs crates/bench/src/series.rs

crates/bench/src/lib.rs:
crates/bench/src/drivers.rs:
crates/bench/src/figures.rs:
crates/bench/src/series.rs:
