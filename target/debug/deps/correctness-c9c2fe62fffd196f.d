/root/repo/target/debug/deps/correctness-c9c2fe62fffd196f.d: crates/baselines/tests/correctness.rs Cargo.toml

/root/repo/target/debug/deps/libcorrectness-c9c2fe62fffd196f.rmeta: crates/baselines/tests/correctness.rs Cargo.toml

crates/baselines/tests/correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
