/root/repo/target/debug/deps/lgen_absint-38d31bea1dde382f.d: crates/absint/src/lib.rs crates/absint/src/analysis.rs crates/absint/src/congruence.rs crates/absint/src/domain.rs crates/absint/src/interval.rs crates/absint/src/reduced.rs crates/absint/src/sign.rs Cargo.toml

/root/repo/target/debug/deps/liblgen_absint-38d31bea1dde382f.rmeta: crates/absint/src/lib.rs crates/absint/src/analysis.rs crates/absint/src/congruence.rs crates/absint/src/domain.rs crates/absint/src/interval.rs crates/absint/src/reduced.rs crates/absint/src/sign.rs Cargo.toml

crates/absint/src/lib.rs:
crates/absint/src/analysis.rs:
crates/absint/src/congruence.rs:
crates/absint/src/domain.rs:
crates/absint/src/interval.rs:
crates/absint/src/reduced.rs:
crates/absint/src/sign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
