/root/repo/target/debug/deps/parking_lot-dc00196d4ce9be5b.d: compat/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-dc00196d4ce9be5b.rmeta: compat/parking_lot/src/lib.rs Cargo.toml

compat/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
