/root/repo/target/debug/deps/golden_diag-f068a312a607ba62.d: tests/golden_diag.rs

/root/repo/target/debug/deps/golden_diag-f068a312a607ba62: tests/golden_diag.rs

tests/golden_diag.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
