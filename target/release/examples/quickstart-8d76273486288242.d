/root/repo/target/release/examples/quickstart-8d76273486288242.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-8d76273486288242: examples/quickstart.rs

examples/quickstart.rs:
