/root/repo/target/release/examples/kalman_update-ead0938b08edd312.d: examples/kalman_update.rs

/root/repo/target/release/examples/kalman_update-ead0938b08edd312: examples/kalman_update.rs

examples/kalman_update.rs:
