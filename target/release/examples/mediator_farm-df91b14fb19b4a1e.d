/root/repo/target/release/examples/mediator_farm-df91b14fb19b4a1e.d: examples/mediator_farm.rs

/root/repo/target/release/examples/mediator_farm-df91b14fb19b4a1e: examples/mediator_farm.rs

examples/mediator_farm.rs:
