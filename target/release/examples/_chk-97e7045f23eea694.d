/root/repo/target/release/examples/_chk-97e7045f23eea694.d: examples/_chk.rs

/root/repo/target/release/examples/_chk-97e7045f23eea694: examples/_chk.rs

examples/_chk.rs:
