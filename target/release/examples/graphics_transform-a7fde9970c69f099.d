/root/repo/target/release/examples/graphics_transform-a7fde9970c69f099.d: examples/graphics_transform.rs

/root/repo/target/release/examples/graphics_transform-a7fde9970c69f099: examples/graphics_transform.rs

examples/graphics_transform.rs:
