/root/repo/target/release/examples/autotuning_tour-4934ee62185546ee.d: examples/autotuning_tour.rs

/root/repo/target/release/examples/autotuning_tour-4934ee62185546ee: examples/autotuning_tour.rs

examples/autotuning_tour.rs:
