/root/repo/target/release/deps/lgen-a1a3c214004c244a.d: src/lib.rs

/root/repo/target/release/deps/liblgen-a1a3c214004c244a.rlib: src/lib.rs

/root/repo/target/release/deps/liblgen-a1a3c214004c244a.rmeta: src/lib.rs

src/lib.rs:
