/root/repo/target/release/deps/lgen_baselines-d53a7686c0a7caa6.d: crates/baselines/src/lib.rs crates/baselines/src/blas.rs crates/baselines/src/eigen.rs crates/baselines/src/emit.rs crates/baselines/src/handwritten.rs crates/baselines/src/pattern.rs

/root/repo/target/release/deps/liblgen_baselines-d53a7686c0a7caa6.rlib: crates/baselines/src/lib.rs crates/baselines/src/blas.rs crates/baselines/src/eigen.rs crates/baselines/src/emit.rs crates/baselines/src/handwritten.rs crates/baselines/src/pattern.rs

/root/repo/target/release/deps/liblgen_baselines-d53a7686c0a7caa6.rmeta: crates/baselines/src/lib.rs crates/baselines/src/blas.rs crates/baselines/src/eigen.rs crates/baselines/src/emit.rs crates/baselines/src/handwritten.rs crates/baselines/src/pattern.rs

crates/baselines/src/lib.rs:
crates/baselines/src/blas.rs:
crates/baselines/src/eigen.rs:
crates/baselines/src/emit.rs:
crates/baselines/src/handwritten.rs:
crates/baselines/src/pattern.rs:
