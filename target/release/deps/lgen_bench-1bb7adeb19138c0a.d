/root/repo/target/release/deps/lgen_bench-1bb7adeb19138c0a.d: crates/bench/src/lib.rs crates/bench/src/drivers.rs crates/bench/src/figures.rs crates/bench/src/series.rs

/root/repo/target/release/deps/liblgen_bench-1bb7adeb19138c0a.rlib: crates/bench/src/lib.rs crates/bench/src/drivers.rs crates/bench/src/figures.rs crates/bench/src/series.rs

/root/repo/target/release/deps/liblgen_bench-1bb7adeb19138c0a.rmeta: crates/bench/src/lib.rs crates/bench/src/drivers.rs crates/bench/src/figures.rs crates/bench/src/series.rs

crates/bench/src/lib.rs:
crates/bench/src/drivers.rs:
crates/bench/src/figures.rs:
crates/bench/src/series.rs:
