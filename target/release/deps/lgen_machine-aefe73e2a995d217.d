/root/repo/target/release/deps/lgen_machine-aefe73e2a995d217.d: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/measure.rs crates/machine/src/sched.rs

/root/repo/target/release/deps/lgen_machine-aefe73e2a995d217: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/measure.rs crates/machine/src/sched.rs

crates/machine/src/lib.rs:
crates/machine/src/cache.rs:
crates/machine/src/measure.rs:
crates/machine/src/sched.rs:
