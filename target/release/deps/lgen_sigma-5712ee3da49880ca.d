/root/repo/target/release/deps/lgen_sigma-5712ee3da49880ca.d: crates/sigma/src/lib.rs crates/sigma/src/codegen.rs crates/sigma/src/nu_blacs.rs crates/sigma/src/sigma_ll.rs

/root/repo/target/release/deps/lgen_sigma-5712ee3da49880ca: crates/sigma/src/lib.rs crates/sigma/src/codegen.rs crates/sigma/src/nu_blacs.rs crates/sigma/src/sigma_ll.rs

crates/sigma/src/lib.rs:
crates/sigma/src/codegen.rs:
crates/sigma/src/nu_blacs.rs:
crates/sigma/src/sigma_ll.rs:
