/root/repo/target/release/deps/parking_lot-88e7b9dec50961a7.d: compat/parking_lot/src/lib.rs

/root/repo/target/release/deps/parking_lot-88e7b9dec50961a7: compat/parking_lot/src/lib.rs

compat/parking_lot/src/lib.rs:
