/root/repo/target/release/deps/crossbeam-4a26201afe7ef903.d: compat/crossbeam/src/lib.rs

/root/repo/target/release/deps/crossbeam-4a26201afe7ef903: compat/crossbeam/src/lib.rs

compat/crossbeam/src/lib.rs:
