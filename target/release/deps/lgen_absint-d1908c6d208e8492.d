/root/repo/target/release/deps/lgen_absint-d1908c6d208e8492.d: crates/absint/src/lib.rs crates/absint/src/analysis.rs crates/absint/src/congruence.rs crates/absint/src/domain.rs crates/absint/src/interval.rs crates/absint/src/reduced.rs crates/absint/src/sign.rs

/root/repo/target/release/deps/lgen_absint-d1908c6d208e8492: crates/absint/src/lib.rs crates/absint/src/analysis.rs crates/absint/src/congruence.rs crates/absint/src/domain.rs crates/absint/src/interval.rs crates/absint/src/reduced.rs crates/absint/src/sign.rs

crates/absint/src/lib.rs:
crates/absint/src/analysis.rs:
crates/absint/src/congruence.rs:
crates/absint/src/domain.rs:
crates/absint/src/interval.rs:
crates/absint/src/reduced.rs:
crates/absint/src/sign.rs:
