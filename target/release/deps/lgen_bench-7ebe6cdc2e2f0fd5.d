/root/repo/target/release/deps/lgen_bench-7ebe6cdc2e2f0fd5.d: crates/bench/src/lib.rs crates/bench/src/drivers.rs crates/bench/src/figures.rs crates/bench/src/series.rs

/root/repo/target/release/deps/lgen_bench-7ebe6cdc2e2f0fd5: crates/bench/src/lib.rs crates/bench/src/drivers.rs crates/bench/src/figures.rs crates/bench/src/series.rs

crates/bench/src/lib.rs:
crates/bench/src/drivers.rs:
crates/bench/src/figures.rs:
crates/bench/src/series.rs:
