/root/repo/target/release/deps/lgen_machine-65004a560a01f79a.d: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/measure.rs crates/machine/src/sched.rs

/root/repo/target/release/deps/liblgen_machine-65004a560a01f79a.rlib: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/measure.rs crates/machine/src/sched.rs

/root/repo/target/release/deps/liblgen_machine-65004a560a01f79a.rmeta: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/measure.rs crates/machine/src/sched.rs

crates/machine/src/lib.rs:
crates/machine/src/cache.rs:
crates/machine/src/measure.rs:
crates/machine/src/sched.rs:
