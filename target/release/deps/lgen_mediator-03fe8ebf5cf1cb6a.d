/root/repo/target/release/deps/lgen_mediator-03fe8ebf5cf1cb6a.d: crates/mediator/src/lib.rs crates/mediator/src/api.rs crates/mediator/src/measure.rs crates/mediator/src/scheduler.rs

/root/repo/target/release/deps/lgen_mediator-03fe8ebf5cf1cb6a: crates/mediator/src/lib.rs crates/mediator/src/api.rs crates/mediator/src/measure.rs crates/mediator/src/scheduler.rs

crates/mediator/src/lib.rs:
crates/mediator/src/api.rs:
crates/mediator/src/measure.rs:
crates/mediator/src/scheduler.rs:
