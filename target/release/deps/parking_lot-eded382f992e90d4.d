/root/repo/target/release/deps/parking_lot-eded382f992e90d4.d: compat/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-eded382f992e90d4.rlib: compat/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-eded382f992e90d4.rmeta: compat/parking_lot/src/lib.rs

compat/parking_lot/src/lib.rs:
