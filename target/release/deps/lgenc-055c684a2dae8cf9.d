/root/repo/target/release/deps/lgenc-055c684a2dae8cf9.d: src/bin/lgenc.rs

/root/repo/target/release/deps/lgenc-055c684a2dae8cf9: src/bin/lgenc.rs

src/bin/lgenc.rs:
