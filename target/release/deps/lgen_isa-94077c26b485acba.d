/root/repo/target/release/deps/lgen_isa-94077c26b485acba.d: crates/isa/src/lib.rs crates/isa/src/cost.rs crates/isa/src/energy.rs crates/isa/src/inst.rs crates/isa/src/ops.rs crates/isa/src/uarch.rs

/root/repo/target/release/deps/lgen_isa-94077c26b485acba: crates/isa/src/lib.rs crates/isa/src/cost.rs crates/isa/src/energy.rs crates/isa/src/inst.rs crates/isa/src/ops.rs crates/isa/src/uarch.rs

crates/isa/src/lib.rs:
crates/isa/src/cost.rs:
crates/isa/src/energy.rs:
crates/isa/src/inst.rs:
crates/isa/src/ops.rs:
crates/isa/src/uarch.rs:
