/root/repo/target/release/deps/lgen_absint-957724115c53926c.d: crates/absint/src/lib.rs crates/absint/src/analysis.rs crates/absint/src/congruence.rs crates/absint/src/domain.rs crates/absint/src/interval.rs crates/absint/src/reduced.rs crates/absint/src/sign.rs

/root/repo/target/release/deps/liblgen_absint-957724115c53926c.rlib: crates/absint/src/lib.rs crates/absint/src/analysis.rs crates/absint/src/congruence.rs crates/absint/src/domain.rs crates/absint/src/interval.rs crates/absint/src/reduced.rs crates/absint/src/sign.rs

/root/repo/target/release/deps/liblgen_absint-957724115c53926c.rmeta: crates/absint/src/lib.rs crates/absint/src/analysis.rs crates/absint/src/congruence.rs crates/absint/src/domain.rs crates/absint/src/interval.rs crates/absint/src/reduced.rs crates/absint/src/sign.rs

crates/absint/src/lib.rs:
crates/absint/src/analysis.rs:
crates/absint/src/congruence.rs:
crates/absint/src/domain.rs:
crates/absint/src/interval.rs:
crates/absint/src/reduced.rs:
crates/absint/src/sign.rs:
