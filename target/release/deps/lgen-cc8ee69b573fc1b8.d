/root/repo/target/release/deps/lgen-cc8ee69b573fc1b8.d: src/lib.rs

/root/repo/target/release/deps/liblgen-cc8ee69b573fc1b8.rlib: src/lib.rs

/root/repo/target/release/deps/liblgen-cc8ee69b573fc1b8.rmeta: src/lib.rs

src/lib.rs:
