/root/repo/target/release/deps/lgen_core-754d02b7d0f08666.d: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/pipeline.rs crates/core/src/pool.rs

/root/repo/target/release/deps/lgen_core-754d02b7d0f08666: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/pipeline.rs crates/core/src/pool.rs

crates/core/src/lib.rs:
crates/core/src/autotune.rs:
crates/core/src/cache.rs:
crates/core/src/config.rs:
crates/core/src/exec.rs:
crates/core/src/pipeline.rs:
crates/core/src/pool.rs:
