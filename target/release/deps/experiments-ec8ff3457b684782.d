/root/repo/target/release/deps/experiments-ec8ff3457b684782.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-ec8ff3457b684782: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
