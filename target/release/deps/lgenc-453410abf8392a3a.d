/root/repo/target/release/deps/lgenc-453410abf8392a3a.d: src/bin/lgenc.rs

/root/repo/target/release/deps/lgenc-453410abf8392a3a: src/bin/lgenc.rs

src/bin/lgenc.rs:
