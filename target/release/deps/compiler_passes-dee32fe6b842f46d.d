/root/repo/target/release/deps/compiler_passes-dee32fe6b842f46d.d: crates/bench/benches/compiler_passes.rs

/root/repo/target/release/deps/compiler_passes-dee32fe6b842f46d: crates/bench/benches/compiler_passes.rs

crates/bench/benches/compiler_passes.rs:
