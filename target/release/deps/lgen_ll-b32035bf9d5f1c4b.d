/root/repo/target/release/deps/lgen_ll-b32035bf9d5f1c4b.d: crates/ll/src/lib.rs crates/ll/src/blac.rs crates/ll/src/paper.rs crates/ll/src/parse.rs crates/ll/src/reference.rs crates/ll/src/tile.rs

/root/repo/target/release/deps/liblgen_ll-b32035bf9d5f1c4b.rlib: crates/ll/src/lib.rs crates/ll/src/blac.rs crates/ll/src/paper.rs crates/ll/src/parse.rs crates/ll/src/reference.rs crates/ll/src/tile.rs

/root/repo/target/release/deps/liblgen_ll-b32035bf9d5f1c4b.rmeta: crates/ll/src/lib.rs crates/ll/src/blac.rs crates/ll/src/paper.rs crates/ll/src/parse.rs crates/ll/src/reference.rs crates/ll/src/tile.rs

crates/ll/src/lib.rs:
crates/ll/src/blac.rs:
crates/ll/src/paper.rs:
crates/ll/src/parse.rs:
crates/ll/src/reference.rs:
crates/ll/src/tile.rs:
