/root/repo/target/release/deps/experiments-f1da3530ecf07159.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-f1da3530ecf07159: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
