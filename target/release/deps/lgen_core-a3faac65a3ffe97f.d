/root/repo/target/release/deps/lgen_core-a3faac65a3ffe97f.d: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/pipeline.rs

/root/repo/target/release/deps/liblgen_core-a3faac65a3ffe97f.rlib: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/pipeline.rs

/root/repo/target/release/deps/liblgen_core-a3faac65a3ffe97f.rmeta: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/pipeline.rs

crates/core/src/lib.rs:
crates/core/src/autotune.rs:
crates/core/src/config.rs:
crates/core/src/exec.rs:
crates/core/src/pipeline.rs:
