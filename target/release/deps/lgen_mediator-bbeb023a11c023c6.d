/root/repo/target/release/deps/lgen_mediator-bbeb023a11c023c6.d: crates/mediator/src/lib.rs crates/mediator/src/api.rs crates/mediator/src/measure.rs crates/mediator/src/scheduler.rs

/root/repo/target/release/deps/liblgen_mediator-bbeb023a11c023c6.rlib: crates/mediator/src/lib.rs crates/mediator/src/api.rs crates/mediator/src/measure.rs crates/mediator/src/scheduler.rs

/root/repo/target/release/deps/liblgen_mediator-bbeb023a11c023c6.rmeta: crates/mediator/src/lib.rs crates/mediator/src/api.rs crates/mediator/src/measure.rs crates/mediator/src/scheduler.rs

crates/mediator/src/lib.rs:
crates/mediator/src/api.rs:
crates/mediator/src/measure.rs:
crates/mediator/src/scheduler.rs:
