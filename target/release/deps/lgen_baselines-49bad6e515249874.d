/root/repo/target/release/deps/lgen_baselines-49bad6e515249874.d: crates/baselines/src/lib.rs crates/baselines/src/blas.rs crates/baselines/src/eigen.rs crates/baselines/src/emit.rs crates/baselines/src/handwritten.rs crates/baselines/src/pattern.rs

/root/repo/target/release/deps/lgen_baselines-49bad6e515249874: crates/baselines/src/lib.rs crates/baselines/src/blas.rs crates/baselines/src/eigen.rs crates/baselines/src/emit.rs crates/baselines/src/handwritten.rs crates/baselines/src/pattern.rs

crates/baselines/src/lib.rs:
crates/baselines/src/blas.rs:
crates/baselines/src/eigen.rs:
crates/baselines/src/emit.rs:
crates/baselines/src/handwritten.rs:
crates/baselines/src/pattern.rs:
