/root/repo/target/release/deps/lgen_ll-4390b1b10ee627bd.d: crates/ll/src/lib.rs crates/ll/src/blac.rs crates/ll/src/paper.rs crates/ll/src/parse.rs crates/ll/src/reference.rs crates/ll/src/tile.rs

/root/repo/target/release/deps/lgen_ll-4390b1b10ee627bd: crates/ll/src/lib.rs crates/ll/src/blac.rs crates/ll/src/paper.rs crates/ll/src/parse.rs crates/ll/src/reference.rs crates/ll/src/tile.rs

crates/ll/src/lib.rs:
crates/ll/src/blac.rs:
crates/ll/src/paper.rs:
crates/ll/src/parse.rs:
crates/ll/src/reference.rs:
crates/ll/src/tile.rs:
