/root/repo/target/release/deps/lgenc-23460cce8e01035a.d: src/bin/lgenc.rs

/root/repo/target/release/deps/lgenc-23460cce8e01035a: src/bin/lgenc.rs

src/bin/lgenc.rs:
