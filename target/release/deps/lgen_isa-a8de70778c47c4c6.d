/root/repo/target/release/deps/lgen_isa-a8de70778c47c4c6.d: crates/isa/src/lib.rs crates/isa/src/cost.rs crates/isa/src/energy.rs crates/isa/src/inst.rs crates/isa/src/ops.rs crates/isa/src/uarch.rs

/root/repo/target/release/deps/liblgen_isa-a8de70778c47c4c6.rlib: crates/isa/src/lib.rs crates/isa/src/cost.rs crates/isa/src/energy.rs crates/isa/src/inst.rs crates/isa/src/ops.rs crates/isa/src/uarch.rs

/root/repo/target/release/deps/liblgen_isa-a8de70778c47c4c6.rmeta: crates/isa/src/lib.rs crates/isa/src/cost.rs crates/isa/src/energy.rs crates/isa/src/inst.rs crates/isa/src/ops.rs crates/isa/src/uarch.rs

crates/isa/src/lib.rs:
crates/isa/src/cost.rs:
crates/isa/src/energy.rs:
crates/isa/src/inst.rs:
crates/isa/src/ops.rs:
crates/isa/src/uarch.rs:
