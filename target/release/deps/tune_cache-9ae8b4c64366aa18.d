/root/repo/target/release/deps/tune_cache-9ae8b4c64366aa18.d: crates/bench/benches/tune_cache.rs

/root/repo/target/release/deps/tune_cache-9ae8b4c64366aa18: crates/bench/benches/tune_cache.rs

crates/bench/benches/tune_cache.rs:
