/root/repo/target/release/deps/lgen-17e451b039e949e3.d: src/lib.rs

/root/repo/target/release/deps/lgen-17e451b039e949e3: src/lib.rs

src/lib.rs:
