/root/repo/target/release/deps/crossbeam-83b06b7f349c5c82.d: compat/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-83b06b7f349c5c82.rlib: compat/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-83b06b7f349c5c82.rmeta: compat/crossbeam/src/lib.rs

compat/crossbeam/src/lib.rs:
