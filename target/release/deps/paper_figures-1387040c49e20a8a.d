/root/repo/target/release/deps/paper_figures-1387040c49e20a8a.d: crates/bench/benches/paper_figures.rs

/root/repo/target/release/deps/paper_figures-1387040c49e20a8a: crates/bench/benches/paper_figures.rs

crates/bench/benches/paper_figures.rs:
