/root/repo/target/release/deps/lgen_core-58610c7b1da6f479.d: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/pipeline.rs crates/core/src/pool.rs

/root/repo/target/release/deps/liblgen_core-58610c7b1da6f479.rlib: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/pipeline.rs crates/core/src/pool.rs

/root/repo/target/release/deps/liblgen_core-58610c7b1da6f479.rmeta: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/pipeline.rs crates/core/src/pool.rs

crates/core/src/lib.rs:
crates/core/src/autotune.rs:
crates/core/src/cache.rs:
crates/core/src/config.rs:
crates/core/src/exec.rs:
crates/core/src/pipeline.rs:
crates/core/src/pool.rs:
