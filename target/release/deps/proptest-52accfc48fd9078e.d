/root/repo/target/release/deps/proptest-52accfc48fd9078e.d: compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-52accfc48fd9078e.rlib: compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-52accfc48fd9078e.rmeta: compat/proptest/src/lib.rs

compat/proptest/src/lib.rs:
