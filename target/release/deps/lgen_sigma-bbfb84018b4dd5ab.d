/root/repo/target/release/deps/lgen_sigma-bbfb84018b4dd5ab.d: crates/sigma/src/lib.rs crates/sigma/src/codegen.rs crates/sigma/src/nu_blacs.rs crates/sigma/src/sigma_ll.rs

/root/repo/target/release/deps/liblgen_sigma-bbfb84018b4dd5ab.rlib: crates/sigma/src/lib.rs crates/sigma/src/codegen.rs crates/sigma/src/nu_blacs.rs crates/sigma/src/sigma_ll.rs

/root/repo/target/release/deps/liblgen_sigma-bbfb84018b4dd5ab.rmeta: crates/sigma/src/lib.rs crates/sigma/src/codegen.rs crates/sigma/src/nu_blacs.rs crates/sigma/src/sigma_ll.rs

crates/sigma/src/lib.rs:
crates/sigma/src/codegen.rs:
crates/sigma/src/nu_blacs.rs:
crates/sigma/src/sigma_ll.rs:
