//! Benchmarks for the parallel autotuner and the kernel cache: sequential
//! vs parallel tuning of one GEMV/GEMM suite, and cold vs warm cache
//! compilation. Results land in `target/criterion-lite/tune_cache.json`
//! (JSON, via the criterion harness) for cross-commit tracking.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lgen_core::{compile_many, Autotuner, CompileConfig, KernelCache, SearchStrategy};
use lgen_isa::Microarch;
use lgen_ll::paper;
use std::sync::Arc;

const SAMPLE: usize = 16;

fn suite() -> Vec<(lgen_ll::Blac, String)> {
    vec![
        (paper::gemv(4, 32), "gemv_4x32".to_string()),
        (paper::gemm(4, 8, 8), "gemm_4x8x8".to_string()),
        (paper::mvm(8, 24), "mvm_8x24".to_string()),
    ]
}

fn bench_tune(c: &mut Criterion) {
    let jobs = suite();
    let cfg = CompileConfig::full(Microarch::Atom);
    let mut g = c.benchmark_group("autotune");
    g.sample_size(10);
    // Each tune gets a fresh cache so the comparison measures evaluation
    // throughput, not cache warmth.
    g.bench_function(format!("sequential/sample-{SAMPLE}").as_str(), |b| {
        b.iter(|| {
            let tuner = Autotuner::new(cfg.clone())
                .with_sample_size(SAMPLE)
                .with_threads(1)
                .with_cache(Arc::new(KernelCache::new()));
            black_box(tuner.tune_many(&jobs))
        })
    });
    g.bench_function(format!("parallel/sample-{SAMPLE}").as_str(), |b| {
        b.iter(|| {
            let tuner = Autotuner::new(cfg.clone())
                .with_sample_size(SAMPLE)
                .with_threads(0) // one worker per available core
                .with_cache(Arc::new(KernelCache::new()));
            black_box(tuner.tune_many(&jobs))
        })
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let cfg = CompileConfig::full(Microarch::Atom);
    let jobs: Vec<(lgen_ll::Blac, String, CompileConfig)> = suite()
        .into_iter()
        .map(|(blac, name)| (blac, name, cfg.clone()))
        .collect();
    let mut g = c.benchmark_group("kernel-cache");
    g.sample_size(10);
    g.bench_function("cold/compile-suite", |b| {
        b.iter(|| {
            let cache = KernelCache::new();
            black_box(compile_many(&jobs, 1, &cache))
        })
    });
    let warm = KernelCache::new();
    compile_many(&jobs, 1, &warm);
    g.bench_function("warm/compile-suite", |b| {
        b.iter(|| black_box(compile_many(&jobs, 1, &warm)))
    });
    g.finish();
}

fn bench_tune_strategies(c: &mut Criterion) {
    let blac = paper::gemv(4, 48);
    let cfg = CompileConfig::full(Microarch::Atom);
    let mut g = c.benchmark_group("autotune-strategy");
    g.sample_size(10);
    g.bench_function("exhaustive/gemv-4x48", |b| {
        b.iter(|| {
            let tuner = Autotuner::new(cfg.clone()).with_strategy(SearchStrategy::Exhaustive);
            black_box(tuner.tune(&blac, "k"))
        })
    });
    g.bench_function("guided/gemv-4x48", |b| {
        b.iter(|| {
            let tuner = Autotuner::new(cfg.clone()).with_strategy(SearchStrategy::Guided);
            black_box(tuner.tune(&blac, "k"))
        })
    });
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10)
}

criterion_group!(name = benches; config = quick(); targets = bench_tune, bench_cache, bench_tune_strategies);
criterion_main!(benches);
