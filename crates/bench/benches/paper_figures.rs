//! Criterion benchmarks: one group per paper artifact family.
//!
//! Each target regenerates a representative point of the corresponding
//! table/figure (compile → simulate → f/c); the full sweeps live in the
//! `experiments` binary. Criterion measures host-side regeneration time,
//! making regressions in the compiler or simulator visible; the scientific
//! output (flops/cycle series) is printed by `experiments`.

use criterion::{criterion_group, criterion_main, Criterion};
use lgen_baselines::Competitor;
use lgen_bench::drivers::{measure_competitor, measure_lgen};
use lgen_core::Variant;
use lgen_isa::Microarch;
use lgen_ll::paper;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.bench_function("table-2.1", |b| {
        b.iter(|| black_box(lgen_bench::figures::run("table-2.1")))
    });
    g.bench_function("table-3.1", |b| {
        b.iter(|| black_box(lgen_bench::figures::run("table-3.1")))
    });
    g.bench_function("table-3.2", |b| {
        b.iter(|| black_box(lgen_bench::figures::run("table-3.2")))
    });
    g.finish();
}

fn bench_atom_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("atom");
    g.sample_size(10);
    g.bench_function("fig-5.1a/mvm-4x64", |b| {
        b.iter(|| {
            black_box(measure_lgen(
                &paper::mvm(4, 64),
                Microarch::Atom,
                Variant::Full,
            ))
        })
    });
    g.bench_function("fig-5.2a/gemv-64x4", |b| {
        b.iter(|| {
            black_box(measure_lgen(
                &paper::gemv(64, 4),
                Microarch::Atom,
                Variant::Full,
            ))
        })
    });
    g.bench_function("fig-5.3a/mvm-7x7", |b| {
        b.iter(|| {
            black_box(measure_lgen(
                &paper::mvm(7, 7),
                Microarch::Atom,
                Variant::Full,
            ))
        })
    });
    g.bench_function("fig-5.4a/mmm-4x4x48", |b| {
        b.iter(|| {
            black_box(measure_lgen(
                &paper::mmm(4, 4, 48),
                Microarch::Atom,
                Variant::Full,
            ))
        })
    });
    g.bench_function("fig-5.5a/mmm-4x48x4", |b| {
        b.iter(|| {
            black_box(measure_lgen(
                &paper::mmm(4, 48, 4),
                Microarch::Atom,
                Variant::Full,
            ))
        })
    });
    g.bench_function("fig-5.6/mmm-6x6x6", |b| {
        b.iter(|| {
            black_box(measure_lgen(
                &paper::mmm(6, 6, 6),
                Microarch::Atom,
                Variant::Full,
            ))
        })
    });
    g.bench_function("fig-5.7a/gemv-30x44", |b| {
        b.iter(|| {
            black_box(measure_lgen(
                &paper::gemv(30, 44),
                Microarch::Atom,
                Variant::Full,
            ))
        })
    });
    g.bench_function("fig-5.8/axpy-1082", |b| {
        b.iter(|| {
            black_box(measure_lgen(
                &paper::axpy(1082),
                Microarch::Atom,
                Variant::Full,
            ))
        })
    });
    g.bench_function("fig-5.9/mkl-misaligned", |b| {
        b.iter(|| {
            black_box(lgen_bench::drivers::measure_competitor_offsets(
                &paper::gemv(30, 44),
                Microarch::Atom,
                Competitor::Mkl,
                Some(&[0, 0, 1, 1, 1]),
            ))
        })
    });
    g.finish();
}

fn bench_arm_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("arm");
    g.sample_size(10);
    g.bench_function("fig-5.10a/a8-mvm-64x4", |b| {
        b.iter(|| {
            black_box(measure_lgen(
                &paper::mvm(64, 4),
                Microarch::CortexA8,
                Variant::Full,
            ))
        })
    });
    g.bench_function("fig-5.11b/a8-gemv-4x64", |b| {
        b.iter(|| {
            black_box(measure_lgen(
                &paper::gemv(4, 64),
                Microarch::CortexA8,
                Variant::Full,
            ))
        })
    });
    g.bench_function("fig-5.12b/a8-mmm-6x6x6", |b| {
        b.iter(|| {
            black_box(measure_lgen(
                &paper::mmm(6, 6, 6),
                Microarch::CortexA8,
                Variant::Full,
            ))
        })
    });
    g.bench_function("fig-5.13b/a8-leftovers-100x6x6", |b| {
        b.iter(|| {
            black_box(measure_lgen(
                &paper::mmm(100, 6, 6),
                Microarch::CortexA8,
                Variant::Full,
            ))
        })
    });
    g.bench_function("fig-5.14a/a9-mvm-64x4", |b| {
        b.iter(|| {
            black_box(measure_lgen(
                &paper::mvm(64, 4),
                Microarch::CortexA9,
                Variant::Full,
            ))
        })
    });
    g.bench_function("fig-5.16b/a9-bilinear-4x64", |b| {
        b.iter(|| {
            black_box(measure_lgen(
                &paper::bilinear(4, 64),
                Microarch::CortexA9,
                Variant::Full,
            ))
        })
    });
    g.bench_function("fig-5.17b/a9-mmm-6x6x6", |b| {
        b.iter(|| {
            black_box(measure_lgen(
                &paper::mmm(6, 6, 6),
                Microarch::CortexA9,
                Variant::Full,
            ))
        })
    });
    g.bench_function("fig-5.18b/a9-leftovers-100x6x6", |b| {
        b.iter(|| {
            black_box(measure_lgen(
                &paper::mmm(100, 6, 6),
                Microarch::CortexA9,
                Variant::Full,
            ))
        })
    });
    g.bench_function("fig-5.19d/1176-gemv-4x64", |b| {
        b.iter(|| {
            black_box(measure_lgen(
                &paper::gemv(4, 64),
                Microarch::Arm1176,
                Variant::Full,
            ))
        })
    });
    g.finish();
}

fn bench_competitors(c: &mut Criterion) {
    let mut g = c.benchmark_group("competitors");
    g.sample_size(10);
    for comp in Competitor::ALL {
        if !comp.available_on(Microarch::Atom) {
            continue;
        }
        g.bench_function(format!("gemv-4x64/{}", comp.label()), |b| {
            b.iter(|| {
                black_box(measure_competitor(
                    &paper::gemv(4, 64),
                    Microarch::Atom,
                    comp,
                ))
            })
        });
    }
    g.finish();
}

fn quick() -> Criterion {
    // Keep full-suite bench runs affordable; pass --measurement-time to
    // override for precision runs.
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10)
}

criterion_group!(name = benches; config = quick(); targets = bench_tables, bench_atom_figures, bench_arm_figures, bench_competitors);
criterion_main!(benches);
