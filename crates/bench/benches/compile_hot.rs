//! Hot-path compile benchmarks with allocation accounting.
//!
//! Two shapes the arena/memoization work targets: a single-kernel compile
//! served from the warm kernel cache, and a 32-candidate tuning sweep
//! against a warm cache (the cross-candidate subtree memo's steady
//! state). A counting global allocator asserts the hot paths stay within
//! an allocation budget — the point of the arena-backed C-IR is that a
//! served compile does not rebuild the IR, and a memoized sweep allocates
//! per *distinct* decision vector, not per candidate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lgen_core::{Autotuner, CompileConfig, KernelCache, SearchStrategy};
use lgen_isa::Microarch;
use lgen_ll::paper;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counts every heap allocation made through the global allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = f();
    (out, ALLOCS.load(Ordering::Relaxed) - before)
}

fn bench_compile_hot(c: &mut Criterion) {
    let blac = paper::gemv(4, 8);
    let cfg = CompileConfig::full(Microarch::Atom);
    let cache = KernelCache::new();
    cache
        .try_get_or_compile_tagged(&blac, "k", &cfg)
        .expect("seed compile");

    // A served compile is a fingerprint + map probe: it must not rebuild
    // or re-walk the C-IR. The budget is ~2x the measured count so the
    // assert flags an accidental clone of the kernel body, not noise.
    let ((), hit_allocs) = allocs_during(|| {
        let (kernel, hit) = cache
            .try_get_or_compile_tagged(&blac, "k", &cfg)
            .expect("warm compile");
        assert!(hit, "second compile must be a cache hit");
        black_box(kernel);
    });
    assert!(
        hit_allocs <= 64,
        "cache-hit compile made {hit_allocs} allocations (budget 64)"
    );

    let mut g = c.benchmark_group("compile-hot");
    g.sample_size(20);
    g.bench_function("hit/gemv-4x8", |b| {
        b.iter(|| black_box(cache.try_get_or_compile_tagged(&blac, "k", &cfg)))
    });
    g.finish();
}

fn bench_sweep_32(c: &mut Criterion) {
    let blac = paper::gemv(4, 8);
    let cfg = CompileConfig::full(Microarch::Atom);
    let cache = Arc::new(KernelCache::new());
    let sweep = |cache: &Arc<KernelCache>| {
        // Random(32) over the 90-point unroll x pass-schedule space: a
        // 32-candidate sweep, every compile flowing through the subtree
        // memo once the cache is warm.
        Autotuner::new(cfg.clone())
            .with_strategy(SearchStrategy::Random(32))
            .with_pipeline_search()
            .with_threads(1)
            .with_cache(Arc::clone(cache))
            .tune(&blac, "k")
    };

    // Warm every decision vector (the random strategy reshuffles, so one
    // full-space pass warms all 90), then budget the steady state.
    let full = Autotuner::new(cfg.clone())
        .with_strategy(SearchStrategy::Exhaustive)
        .with_pipeline_search()
        .with_threads(1)
        .with_cache(Arc::clone(&cache))
        .tune(&blac, "k");
    assert!(
        full.samples.len() >= 32,
        "search space smaller than a sweep"
    );

    let (tuned, sweep_allocs) = allocs_during(|| sweep(&cache));
    assert_eq!(tuned.samples.len(), 32, "expected a 32-candidate sweep");
    // Warm sweeps still allocate per candidate (measurement buffers,
    // sample bookkeeping) but must not re-lower or re-optimize: the
    // budget of ~200 allocations/candidate holds only when compiles are
    // served and equivalent candidates share one memoized kernel.
    let budget = 200 * tuned.samples.len() as u64;
    assert!(
        sweep_allocs <= budget,
        "warm 32-candidate sweep made {sweep_allocs} allocations (budget {budget})"
    );

    let mut g = c.benchmark_group("compile-hot");
    g.sample_size(10);
    g.bench_function("sweep-32/gemv-4x8", |b| b.iter(|| black_box(sweep(&cache))));
    g.finish();
}

criterion_group!(benches, bench_compile_hot, bench_sweep_32);
criterion_main!(benches);
