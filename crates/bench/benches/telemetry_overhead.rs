//! Telemetry overhead benchmarks: the cost of a span on the disabled path
//! (the default for every production compile) versus the recording path,
//! and of the cached metric-handle macros. Results land in
//! `target/criterion-lite/telemetry_overhead.json`.
//!
//! The disabled path is required to be a no-op — one relaxed atomic load
//! and an inert guard. `assert_disabled_path_is_noop` enforces that with a
//! hard bound before the comparative benchmarks run, so a regression fails
//! `cargo bench` rather than silently shifting a chart.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lgen_core::{try_compile, CompileConfig};
use lgen_isa::Microarch;
use lgen_ll::paper;
use lgen_telemetry::{metric_counter, Telemetry};
use std::time::Instant;

/// Hard gate: a disabled span must cost nanoseconds, not microseconds.
/// The bound is deliberately generous (debug-friendly, CI-noise-proof);
/// the real figure is in the criterion output.
fn assert_disabled_path_is_noop(_c: &mut Criterion) {
    let t = Telemetry::new(false);
    const N: u32 = 1_000_000;
    let start = Instant::now();
    for i in 0..N {
        let mut g = t.span(black_box("noop"));
        if g.is_recording() {
            g.attr("i", i);
        }
    }
    let per_span_ns = start.elapsed().as_nanos() / u128::from(N);
    assert!(t.snapshot().is_empty(), "disabled collector recorded spans");
    assert!(
        per_span_ns < 1_000,
        "disabled span path costs {per_span_ns}ns — no longer a no-op"
    );
    eprintln!("disabled span path: {per_span_ns}ns/span (bound 1000ns)");
}

fn bench_span(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry-span");
    let off = Telemetry::new(false);
    g.bench_function("disabled/open-drop", |b| {
        b.iter(|| black_box(off.span(black_box("work"))))
    });
    let on = Telemetry::new(true);
    g.bench_function("enabled/open-drop", |b| {
        b.iter(|| black_box(on.span(black_box("work"))))
    });
    g.bench_function("enabled/with-attrs", |b| {
        b.iter(|| {
            let mut s = on.span(black_box("work"));
            s.attr("pass_ns", 1234u64);
            s.attr("changed", true);
            black_box(s)
        })
    });
    g.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry-metrics");
    g.bench_function("counter/cached-handle-inc", |b| {
        b.iter(|| metric_counter!("lgen.bench.ticks").inc())
    });
    g.finish();
}

fn bench_compile(c: &mut Criterion) {
    let blac = paper::gemv(4, 8);
    let cfg = CompileConfig::full(Microarch::Atom);
    let mut g = c.benchmark_group("telemetry-compile");
    g.sample_size(10);
    lgen_telemetry::set_enabled(false);
    g.bench_function("tracing-off/gemv-4x8", |b| {
        b.iter(|| black_box(try_compile(&blac, "bench_off", &cfg)))
    });
    lgen_telemetry::set_enabled(true);
    g.bench_function("tracing-on/gemv-4x8", |b| {
        b.iter(|| black_box(try_compile(&blac, "bench_on", &cfg)))
    });
    lgen_telemetry::set_enabled(false);
    lgen_telemetry::global().drain();
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(20)
}

criterion_group!(
    name = benches;
    config = quick();
    targets = assert_disabled_path_is_noop, bench_span, bench_metrics, bench_compile
);
criterion_main!(benches);
