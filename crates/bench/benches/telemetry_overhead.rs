//! Telemetry overhead benchmarks: the cost of a span on the disabled path
//! (the default for every production compile) versus the recording path,
//! and of the cached metric-handle macros. Results land in
//! `target/criterion-lite/telemetry_overhead.json`.
//!
//! The disabled path is required to be a no-op — one relaxed atomic load
//! and an inert guard. `assert_disabled_path_is_noop` enforces that with a
//! hard bound before the comparative benchmarks run, so a regression fails
//! `cargo bench` rather than silently shifting a chart.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lgen_core::{try_compile, CompileConfig};
use lgen_isa::Microarch;
use lgen_ll::paper;
use lgen_telemetry::{metric_counter, metric_counter_family, Telemetry};
use std::time::Instant;

/// Hard gate: a disabled span must cost nanoseconds, not microseconds.
/// The bound is deliberately generous (debug-friendly, CI-noise-proof);
/// the real figure is in the criterion output.
fn assert_disabled_path_is_noop(_c: &mut Criterion) {
    let t = Telemetry::new(false);
    const N: u32 = 1_000_000;
    let start = Instant::now();
    for i in 0..N {
        let mut g = t.span(black_box("noop"));
        if g.is_recording() {
            g.attr("i", i);
        }
    }
    let per_span_ns = start.elapsed().as_nanos() / u128::from(N);
    assert!(t.snapshot().is_empty(), "disabled collector recorded spans");
    assert!(
        per_span_ns < 1_000,
        "disabled span path costs {per_span_ns}ns — no longer a no-op"
    );
    eprintln!("disabled span path: {per_span_ns}ns/span (bound 1000ns)");
}

fn bench_span(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry-span");
    let off = Telemetry::new(false);
    g.bench_function("disabled/open-drop", |b| {
        b.iter(|| black_box(off.span(black_box("work"))))
    });
    let on = Telemetry::new(true);
    g.bench_function("enabled/open-drop", |b| {
        b.iter(|| black_box(on.span(black_box("work"))))
    });
    g.bench_function("enabled/with-attrs", |b| {
        b.iter(|| {
            let mut s = on.span(black_box("work"));
            s.attr("pass_ns", 1234u64);
            s.attr("changed", true);
            black_box(s)
        })
    });
    g.finish();
}

/// Hard gate: a labeled counter whose series handle has been resolved
/// once must cost the same as the unlabeled counter — the label lookup
/// (hash + slot probe) is strictly a resolution-time cost, never a
/// hot-path one. Both loops are a single relaxed `fetch_add` on a leaked
/// static; the 2x bound leaves room for scheduler noise, which best-of-3
/// timing already mostly removes.
fn assert_labeled_handle_within_2x_of_unlabeled(_c: &mut Criterion) {
    const N: u32 = 1_000_000;
    let best_of_3 = |f: &dyn Fn()| {
        (0..3)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..N {
                    f();
                }
                start.elapsed().as_nanos().max(1)
            })
            .min()
            .unwrap()
    };
    let plain = metric_counter!("lgen.bench.unlabeled_ticks");
    let handle = metric_counter_family!("lgen.bench.labeled_ticks", "tenant").with(&["bench"]);
    // Warm both paths (page in the statics, settle the clock) first.
    for _ in 0..N / 4 {
        plain.inc();
        handle.inc();
    }
    let plain_ns = best_of_3(&|| plain.inc());
    let labeled_ns = best_of_3(&|| handle.inc());
    assert!(
        labeled_ns < plain_ns * 2,
        "resolved labeled-series inc ({}ns/1M) is more than 2x the \
         unlabeled counter inc ({}ns/1M)",
        labeled_ns,
        plain_ns
    );
    eprintln!(
        "labeled resolved-handle inc: {:.1}ns vs unlabeled {:.1}ns per op (bound 2x)",
        labeled_ns as f64 / f64::from(N),
        plain_ns as f64 / f64::from(N)
    );
}

fn bench_metrics(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry-metrics");
    g.bench_function("counter/cached-handle-inc", |b| {
        b.iter(|| metric_counter!("lgen.bench.ticks").inc())
    });
    // Full per-call label resolution: FNV over the values + slot probe.
    g.bench_function("counter-family/with-inc", |b| {
        b.iter(|| {
            metric_counter_family!("lgen.bench.family_ticks", "tenant")
                .with(black_box(&["tenant-0"]))
                .inc()
        })
    });
    // Resolution hoisted out of the loop: the shape the serve hot path
    // uses when one request touches a series more than once.
    let resolved = metric_counter_family!("lgen.bench.family_ticks", "tenant").with(&["tenant-0"]);
    g.bench_function("counter-family/resolved-handle-inc", |b| {
        b.iter(|| resolved.inc())
    });
    g.finish();
}

fn bench_compile(c: &mut Criterion) {
    let blac = paper::gemv(4, 8);
    let cfg = CompileConfig::full(Microarch::Atom);
    let mut g = c.benchmark_group("telemetry-compile");
    g.sample_size(10);
    lgen_telemetry::set_enabled(false);
    g.bench_function("tracing-off/gemv-4x8", |b| {
        b.iter(|| black_box(try_compile(&blac, "bench_off", &cfg)))
    });
    lgen_telemetry::set_enabled(true);
    g.bench_function("tracing-on/gemv-4x8", |b| {
        b.iter(|| black_box(try_compile(&blac, "bench_on", &cfg)))
    });
    lgen_telemetry::set_enabled(false);
    lgen_telemetry::global().drain();
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(20)
}

criterion_group!(
    name = benches;
    config = quick();
    targets = assert_disabled_path_is_noop, assert_labeled_handle_within_2x_of_unlabeled,
        bench_span, bench_metrics, bench_compile
);
criterion_main!(benches);
