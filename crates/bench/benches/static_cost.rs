//! Static prediction vs. full simulation: the economics of pruning.
//!
//! Model-guided pruning only pays if ranking a candidate statically is
//! far cheaper than fully evaluating it. This bench times both paths on
//! the same compiled kernel — `lgen_analysis::analyze_kernel` (one C-IR
//! walk, no execution) against the tuner's per-candidate evaluation
//! (numeric validation via `check_kernel` plus the §5.1.4 warm-up and
//! timed simulator passes of `measure_blac`) — and *asserts* the ≥50x
//! advantage the pruned autotuner's throughput claim rests on. The gap is
//! asymptotic, not constant-factor: analysis walks each loop *body* once
//! (cost ∝ code size), while validation and simulation execute every
//! iteration (cost ∝ dynamic instructions), so it widens with trip count.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lgen_analysis::analyze_kernel;
use lgen_core::{check_kernel, compile, measure_blac, CompileConfig};
use lgen_isa::Microarch;
use lgen_ll::paper;
use std::time::Instant;

fn bench_static_cost(c: &mut Criterion) {
    let arch = Microarch::Atom;
    let isa = arch.vector_isa();
    let blac = paper::gemv(4, 512);
    let cfg = CompileConfig::full(arch);
    let kernel = compile(&blac, "k", &cfg);
    let offsets = vec![0usize; blac.operands.len()];
    // The tuner's full evaluation of one already-compiled candidate:
    // validate against the naive reference, then measure.
    let evaluate = || {
        let diff = check_kernel(&blac, &kernel, isa, 11).unwrap();
        assert!(diff < 1.0);
        measure_blac(&blac, &kernel, arch, &offsets, 1).unwrap()
    };

    let mut group = c.benchmark_group("static_cost");
    group.sample_size(30);
    group.bench_function("analyze_kernel/gemv_4x512", |b| {
        b.iter(|| black_box(analyze_kernel(black_box(&kernel), arch)))
    });
    group.bench_function("validate_and_measure/gemv_4x512", |b| {
        b.iter(|| black_box(evaluate()))
    });
    group.finish();

    // The acceptance gate: compare best-of-N round times, not totals —
    // scheduler noise only ever *inflates* a round, and a single stall
    // on the microsecond-scale analysis side would otherwise swamp the
    // ratio. The minimum is the honest cost of each path.
    let rounds = 100;
    let best = |f: &mut dyn FnMut()| {
        (0..rounds)
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed()
            })
            .min()
            .unwrap()
    };
    let analyze = best(&mut || {
        black_box(analyze_kernel(black_box(&kernel), arch));
    });
    let measure = best(&mut || {
        black_box(evaluate());
    });
    let speedup = measure.as_secs_f64() / analyze.as_secs_f64().max(f64::EPSILON);
    assert!(
        speedup >= 50.0,
        "static prediction must be >=50x cheaper than full evaluation, got {speedup:.1}x \
         (best analyze round {analyze:?} vs best validate+measure round {measure:?} of {rounds})"
    );
    eprintln!("static_cost: analysis is {speedup:.0}x cheaper than one candidate evaluation");
}

criterion_group!(benches, bench_static_cost);
criterion_main!(benches);
