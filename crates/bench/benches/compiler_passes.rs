//! Criterion benchmarks of the compiler itself: per-pass cost and the
//! ablations DESIGN.md calls out (generic-memory forwarding, alignment
//! analysis, versioning, unparsing).

use criterion::{criterion_group, criterion_main, Criterion};
use lgen_cir::passes::{
    copy_prop, dce, detect_alignment, scalar_replacement, unroll, UnrollPolicy,
};
use lgen_core::CompileConfig;
use lgen_isa::Microarch;
use lgen_ll::paper;
use lgen_sigma::{compile_blac, CodegenOptions};
use std::hint::black_box;

fn bench_codegen(c: &mut Criterion) {
    let blac = paper::gemm(30, 44, 30);
    let opts = CodegenOptions::full(lgen_isa::VectorIsa::Ssse3);
    let mut g = c.benchmark_group("codegen");
    g.bench_function("emit/gemm-30x44x30", |b| {
        b.iter(|| black_box(compile_blac(&blac, "k", &opts)))
    });
    g.bench_function("full-pipeline/gemm-30x44x30", |b| {
        b.iter(|| {
            black_box(lgen_core::compile(
                &blac,
                "k",
                &CompileConfig::full(Microarch::Atom),
            ))
        })
    });
    g.finish();
}

fn bench_passes(c: &mut Criterion) {
    let blac = paper::gemv(30, 100);
    let opts = CodegenOptions::full(lgen_isa::VectorIsa::Ssse3);
    let raw = compile_blac(&blac, "k", &opts);
    let mut g = c.benchmark_group("passes");
    g.bench_function("unroll-full", |b| {
        b.iter(|| {
            black_box(unroll(
                raw.body().to_vec(),
                UnrollPolicy::Full { max_trip: 32 },
            ))
        })
    });
    let unrolled = unroll(raw.body().to_vec(), UnrollPolicy::Full { max_trip: 32 });
    g.bench_function("scalar-replacement", |b| {
        b.iter(|| black_box(scalar_replacement(unrolled.clone(), &raw.arrays)))
    });
    let replaced = scalar_replacement(unrolled.clone(), &raw.arrays);
    g.bench_function("copy-prop+dce", |b| {
        b.iter(|| black_box(dce(copy_prop(replaced.clone()), &raw.arrays)))
    });
    let mut cleaned = dce(copy_prop(replaced), &raw.arrays);
    g.bench_function("alignment-detection", |b| {
        b.iter(|| {
            detect_alignment(&mut cleaned, &vec![0; raw.arrays.len()]);
            black_box(&cleaned);
        })
    });
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    // Versioning multiplies code size by 4^a + 1: measure its cost.
    let blac = paper::gemv(30, 44);
    g.bench_function("alignment-versioning/gemv-30x44", |b| {
        b.iter(|| {
            black_box(lgen_core::compile(
                &blac,
                "k",
                &CompileConfig::full(Microarch::Atom).with_versioning(),
            ))
        })
    });
    // C unparsing.
    let kernel = lgen_core::compile(&blac, "k", &CompileConfig::full(Microarch::Atom));
    g.bench_function("unparse-c/gemv-30x44", |b| {
        b.iter(|| {
            black_box(lgen_cir::unparse::unparse(
                &kernel,
                lgen_isa::VectorIsa::Ssse3,
            ))
        })
    });
    // Simulator throughput.
    g.bench_function("simulate/gemv-30x44-atom", |b| {
        b.iter(|| {
            black_box(lgen_core::measure_blac(
                &blac,
                &kernel,
                Microarch::Atom,
                &[0; 5],
                1,
            ))
        })
    });
    g.finish();
}

fn quick() -> Criterion {
    // Keep full-suite bench runs affordable; pass --measurement-time to
    // override for precision runs.
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10)
}

criterion_group!(name = benches; config = quick(); targets = bench_codegen, bench_passes, bench_ablations);
criterion_main!(benches);
