//! Measurement drivers: one point = one (BLAC, competitor, core) triple.

use crate::series::{Figure, Series};
use lgen_baselines::{compile_baseline, Competitor};
use lgen_core::{compile, measure_blac, Autotuner, CompileConfig, Variant};
use lgen_isa::Microarch;
use lgen_ll::Blac;

/// Repetitions for the median (the simulator is deterministic, so 3 ≡ 15).
pub const REPS: usize = 3;

/// Autotuner sample size used by the sweep drivers (the paper uses 10; the
/// space here has 9 points, so 6 random samples cover it well at a fraction
/// of the time).
pub const TUNE_SAMPLES: usize = 6;

/// Measures an LGen variant on a BLAC: autotunes (random search, §5.1.5)
/// and returns flops/cycle of the best kernel.
pub fn measure_lgen(blac: &Blac, arch: Microarch, variant: Variant) -> f64 {
    let cfg = CompileConfig::variant(arch, variant);
    let tuned = Autotuner::new(cfg)
        .with_sample_size(TUNE_SAMPLES)
        .tune(blac, "lgen");
    tuned.measurement.flops_per_cycle()
}

/// Measures an LGen variant without autotuning, at explicit per-parameter
/// float offsets (the Fig. 5.9 misalignment protocol).
pub fn measure_lgen_offsets(
    blac: &Blac,
    arch: Microarch,
    cfg: &CompileConfig,
    offsets: &[usize],
) -> f64 {
    let kernel = compile(blac, "lgen", cfg);
    measure_blac(blac, &kernel, arch, offsets, REPS)
        .expect("lgen kernel must execute")
        .flops_per_cycle()
}

/// Measures a competitor; `None` when it is unavailable on the platform or
/// does not cover the BLAC.
pub fn measure_competitor(blac: &Blac, arch: Microarch, comp: Competitor) -> Option<f64> {
    measure_competitor_offsets(blac, arch, comp, None)
}

/// [`measure_competitor`] at explicit float offsets.
pub fn measure_competitor_offsets(
    blac: &Blac,
    arch: Microarch,
    comp: Competitor,
    offsets: Option<&[usize]>,
) -> Option<f64> {
    let kernel = compile_baseline(blac, comp, arch)?;
    let zeros = vec![0usize; blac.operands.len()];
    let offs = offsets.unwrap_or(&zeros);
    Some(
        measure_blac(blac, &kernel, arch, offs, REPS)
            .expect("baseline kernel must execute")
            .flops_per_cycle(),
    )
}

/// Builds a figure by sweeping `ns` and measuring a set of LGen variants
/// plus all available competitors.
pub struct SeriesBuilder<'a> {
    arch: Microarch,
    blac_of: Box<dyn Fn(usize) -> Blac + 'a>,
    variants: Vec<Variant>,
    competitors: Vec<Competitor>,
}

impl<'a> SeriesBuilder<'a> {
    /// A builder for `arch` with the BLAC-per-x generator.
    pub fn new(arch: Microarch, blac_of: impl Fn(usize) -> Blac + 'a) -> Self {
        SeriesBuilder {
            arch,
            blac_of: Box::new(blac_of),
            variants: vec![Variant::Full, Variant::Base],
            competitors: Competitor::ALL.to_vec(),
        }
    }

    /// Selects the LGen variants to plot (default: Full and Base).
    #[must_use]
    pub fn variants(mut self, v: &[Variant]) -> Self {
        self.variants = v.to_vec();
        self
    }

    /// Selects the competitors to plot (default: all available).
    #[must_use]
    pub fn competitors(mut self, c: &[Competitor]) -> Self {
        self.competitors = c.to_vec();
        self
    }

    /// Runs the sweep and assembles the figure.
    pub fn run(self, id: &str, title: &str, ns: &[usize]) -> Figure {
        let mut fig = Figure::new(id, title, "n");
        for v in &self.variants {
            fig.series.push(Series::new(v.label()));
        }
        for c in &self.competitors {
            fig.series.push(Series::new(c.label()));
        }
        for &n in ns {
            let blac = (self.blac_of)(n);
            let mut col = 0;
            for v in &self.variants {
                let fc = measure_lgen(&blac, self.arch, *v);
                fig.series[col].points.push((n, Some(fc)));
                col += 1;
            }
            for c in &self.competitors {
                let fc = measure_competitor(&blac, self.arch, *c);
                fig.series[col].points.push((n, fc));
                col += 1;
            }
        }
        fig
    }
}

/// The size sweeps used throughout Chapter 5, shortened to keep runtimes
/// reasonable while preserving the paper's ranges and the mod-4 structure
/// (alignment ripple, prime-tile-count dips).
pub mod sweeps {
    /// Long-dimension sweep for panels (the paper plots 2…1190).
    pub fn panel() -> Vec<usize> {
        vec![
            2, 5, 8, 16, 23, 36, 64, 101, 128, 254, 361, 512, 695, 893, 1024, 1190,
        ]
    }

    /// Short panel sweep for expensive kernels (the paper plots 2…946).
    pub fn panel_short() -> Vec<usize> {
        vec![2, 6, 12, 24, 48, 96, 190, 380, 574, 710, 946]
    }

    /// Micro-BLAC sizes (the paper plots 2…10).
    pub fn micro() -> Vec<usize> {
        (2..=10).collect()
    }

    /// Varying-shape sweep (the paper plots 2…100 for 30×n).
    pub fn varying() -> Vec<usize> {
        vec![2, 9, 16, 23, 30, 37, 44, 58, 72, 86, 100]
    }

    /// Vector-length sweep for axpy (the paper plots 2…3782).
    pub fn vector() -> Vec<usize> {
        vec![16, 64, 256, 542, 1082, 2162, 3242, 3782, 4400]
    }

    /// Leftover-heavy sweep (the paper plots 2…24).
    pub fn leftover() -> Vec<usize> {
        (2..=24).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lgen_ll::paper;

    #[test]
    fn lgen_beats_base_and_competitors_on_atom_mvm_panel() {
        // The headline claim (Fig. 5.1a): LGen-Full wins on 4×n MVM.
        let blac = paper::mvm(4, 64);
        let full = measure_lgen(&blac, Microarch::Atom, Variant::Full);
        let base = measure_lgen(&blac, Microarch::Atom, Variant::Base);
        assert!(full > base, "Full {full} must beat Base {base}");
        for comp in Competitor::ALL {
            if let Some(fc) = measure_competitor(&blac, Microarch::Atom, comp) {
                assert!(
                    full > fc,
                    "LGen-Full {full} must beat {} {fc}",
                    comp.label()
                );
            }
        }
    }

    #[test]
    fn series_builder_produces_full_grid() {
        let fig = SeriesBuilder::new(Microarch::Atom, |n| paper::mvm(4, n))
            .variants(&[Variant::Full])
            .competitors(&[Competitor::Mkl, Competitor::Eigen])
            .run("t", "t", &[8, 16]);
        assert_eq!(fig.series.len(), 3);
        assert!(fig.series.iter().all(|s| s.points.len() == 2));
        assert!(fig.series("LGen-Full").unwrap().peak() > 0.0);
    }
}

#[cfg(test)]
mod sweep_tests {
    use super::sweeps;

    #[test]
    fn sweeps_are_sorted_and_cover_the_paper_ranges() {
        for (name, s, max) in [
            ("panel", sweeps::panel(), 1190),
            ("panel_short", sweeps::panel_short(), 946),
            ("micro", sweeps::micro(), 10),
            ("varying", sweeps::varying(), 100),
            ("vector", sweeps::vector(), 3782),
            ("leftover", sweeps::leftover(), 24),
        ] {
            assert!(s.windows(2).all(|w| w[0] < w[1]), "{name} not increasing");
            assert!(*s.last().unwrap() >= max, "{name} misses the paper's range");
            assert!(s[0] <= 16, "{name} misses small sizes");
        }
        // The panel sweeps include the prime-tile dip points of §5.2.1.
        assert!(sweeps::panel().contains(&695));
        assert!(sweeps::panel().contains(&893));
        // And both n mod 4 classes (the alignment ripple).
        assert!(sweeps::panel().iter().any(|n| n % 4 == 0));
        assert!(sweeps::panel().iter().any(|n| n % 4 != 0));
    }
}
