//! One driver per paper artifact: every table and figure of the evaluation
//! (Chapter 5) and representative complete sets of Appendix B.
//!
//! Each driver regenerates the artifact's data — same BLACs, same sweep
//! structure, same competitor set — and renders it as text. Absolute
//! numbers are simulator cycles; EXPERIMENTS.md records the shape
//! comparison against the paper.
//!
//! Appendix figures B.9 and B.14 are the paper's own duplicates of
//! Figs. 5.13 and 5.18 (the leftover experiments) and are served by those
//! ids.

use crate::drivers::{
    measure_competitor_offsets, measure_lgen, measure_lgen_offsets, sweeps, SeriesBuilder,
};
use crate::series::{Figure, Series};
use lgen_baselines::Competitor;
use lgen_cir::{run_kernel, MemLayout};
use lgen_core::{CompileConfig, Variant};
use lgen_isa::inst::CountingSink;
use lgen_isa::{MOp, Microarch};
use lgen_ll::paper;
use lgen_sigma::nu_blacs::NuBlacKind;
use std::fmt::Write as _;

/// A runnable experiment.
pub struct Experiment {
    /// Artifact id, e.g. "fig-5.1".
    pub id: &'static str,
    /// What it reproduces.
    pub title: &'static str,
    /// Runs the experiment and renders its output.
    pub run: fn() -> String,
}

/// The full registry, in paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table-2.1",
            title: "the 18 required ν-BLACs",
            run: table_2_1,
        },
        Experiment {
            id: "table-3.1",
            title: "vector add vs hadd per µarch",
            run: table_3_1,
        },
        Experiment {
            id: "table-3.2",
            title: "old vs new MVM operation counts",
            run: table_3_2,
        },
        Experiment {
            id: "fig-5.1",
            title: "MVM BLACs on 4×n panels (Atom)",
            run: fig_5_1,
        },
        Experiment {
            id: "fig-5.2",
            title: "MVM BLACs on n×4 panels (Atom)",
            run: fig_5_2,
        },
        Experiment {
            id: "fig-5.3",
            title: "micro-BLACs with MVM (Atom)",
            run: fig_5_3,
        },
        Experiment {
            id: "fig-5.4",
            title: "MMM BLACs, right operand 4×n (Atom)",
            run: fig_5_4,
        },
        Experiment {
            id: "fig-5.5",
            title: "MMM BLACs, right operand ·×4 (Atom)",
            run: fig_5_5,
        },
        Experiment {
            id: "fig-5.6",
            title: "C = AB micro-BLAC (Atom)",
            run: fig_5_6,
        },
        Experiment {
            id: "fig-5.7",
            title: "BLACs on varying shapes (Atom)",
            run: fig_5_7,
        },
        Experiment {
            id: "fig-5.8",
            title: "y = αx + y (Atom)",
            run: fig_5_8,
        },
        Experiment {
            id: "fig-5.9",
            title: "gemv with misaligned arrays (Atom)",
            run: fig_5_9,
        },
        Experiment {
            id: "fig-5.10",
            title: "simple BLACs (Cortex-A8)",
            run: fig_5_10,
        },
        Experiment {
            id: "fig-5.11",
            title: "BLAS-like BLACs (Cortex-A8)",
            run: fig_5_11,
        },
        Experiment {
            id: "fig-5.12",
            title: "micro-BLACs (Cortex-A8)",
            run: fig_5_12,
        },
        Experiment {
            id: "fig-5.13",
            title: "leftover-heavy C = AB (Cortex-A8)",
            run: fig_5_13,
        },
        Experiment {
            id: "fig-5.14",
            title: "simple BLACs (Cortex-A9)",
            run: fig_5_14,
        },
        Experiment {
            id: "fig-5.15",
            title: "BLAS-like BLACs (Cortex-A9)",
            run: fig_5_15,
        },
        Experiment {
            id: "fig-5.16",
            title: "multi-BLAS BLACs (Cortex-A9)",
            run: fig_5_16,
        },
        Experiment {
            id: "fig-5.17",
            title: "micro-BLACs (Cortex-A9)",
            run: fig_5_17,
        },
        Experiment {
            id: "fig-5.18",
            title: "leftover-heavy C = AB (Cortex-A9)",
            run: fig_5_18,
        },
        Experiment {
            id: "fig-5.19",
            title: "various BLACs (ARM1176)",
            run: fig_5_19,
        },
        Experiment {
            id: "fig-B.1",
            title: "simple BLACs, complete (Atom)",
            run: fig_b1,
        },
        Experiment {
            id: "fig-B.2",
            title: "BLAS-matching BLACs, complete (Atom)",
            run: fig_b2,
        },
        Experiment {
            id: "fig-B.3",
            title: "multi-BLAS BLACs, complete (Atom)",
            run: fig_b3,
        },
        Experiment {
            id: "fig-B.4",
            title: "micro-BLACs, complete (Atom)",
            run: fig_b4,
        },
        Experiment {
            id: "fig-B.5",
            title: "simple BLACs, complete (Cortex-A8)",
            run: fig_b5,
        },
        Experiment {
            id: "fig-B.6",
            title: "BLAS-matching BLACs, complete (Cortex-A8)",
            run: fig_b6,
        },
        Experiment {
            id: "fig-B.7",
            title: "multi-BLAS BLACs, complete (Cortex-A8)",
            run: fig_b7,
        },
        Experiment {
            id: "fig-B.8",
            title: "micro-BLACs, complete (Cortex-A8)",
            run: fig_b8,
        },
        Experiment {
            id: "fig-B.10",
            title: "simple BLACs, complete (Cortex-A9)",
            run: fig_b10,
        },
        Experiment {
            id: "fig-B.11",
            title: "BLAS-matching BLACs, complete (Cortex-A9)",
            run: fig_b11,
        },
        Experiment {
            id: "fig-B.12",
            title: "multi-BLAS BLACs, complete (Cortex-A9)",
            run: fig_b12,
        },
        Experiment {
            id: "fig-B.13",
            title: "micro-BLACs, complete (Cortex-A9)",
            run: fig_b13,
        },
        Experiment {
            id: "fig-B.15",
            title: "simple BLACs, complete (ARM1176)",
            run: fig_b15,
        },
        Experiment {
            id: "fig-B.16",
            title: "BLAS-matching BLACs, complete (ARM1176)",
            run: fig_b16,
        },
        Experiment {
            id: "fig-B.17",
            title: "multi-BLAS BLACs, complete (ARM1176)",
            run: fig_b17,
        },
        Experiment {
            id: "fig-B.18",
            title: "micro-BLACs, complete (ARM1176)",
            run: fig_b18,
        },
        Experiment {
            id: "ext-energy",
            title: "energy-aware autotuning (§6 extension)",
            run: ext_energy,
        },
        Experiment {
            id: "ext-peel",
            title: "LGen-side loop peeling (§6 extension)",
            run: ext_peel,
        },
        Experiment {
            id: "ext-search",
            title: "guided vs random search (§6 extension)",
            run: ext_search,
        },
    ]
}

/// Runs one experiment by id.
pub fn run(id: &str) -> Option<String> {
    all().into_iter().find(|e| e.id == id).map(|e| (e.run)())
}

/// Lists available experiment ids.
pub fn list() -> Vec<&'static str> {
    all().into_iter().map(|e| e.id).collect()
}

// --------------------------------------------------------------- tables ---

fn table_2_1() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== table-2.1: the 18 required ν-BLACs ==");
    for op in [
        lgen_sigma::nu_blacs::Operator::Addition,
        lgen_sigma::nu_blacs::Operator::ScalarMultiplication,
        lgen_sigma::nu_blacs::Operator::MatrixMultiplication,
        lgen_sigma::nu_blacs::Operator::Transposition,
    ] {
        let members: Vec<&str> = NuBlacKind::all()
            .iter()
            .filter(|k| k.operator() == op)
            .map(|k| k.name())
            .collect();
        let _ = writeln!(
            out,
            "{op:?} ({} ν-BLACs): {}",
            members.len(),
            members.join(", ")
        );
    }
    let _ = writeln!(out, "total: {} (paper: 18)", NuBlacKind::all().len());
    out
}

fn table_3_1() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== table-3.1: _mm_add_ps vs _mm_hadd_ps (latency/throughput) =="
    );
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>12}",
        "µarch", "mm_add_ps", "mm_hadd_ps"
    );
    for (m, add, hadd) in lgen_isa::haswell_family_add_vs_hadd() {
        let _ = writeln!(
            out,
            "{:<14} {:>9}/{:<2} {:>9}/{:<2}{}",
            m.name(),
            add.latency,
            add.issue,
            hadd.latency,
            hadd.issue,
            if hadd.ports.blocks_all() {
                "  (occupies both ports)"
            } else {
                ""
            }
        );
    }
    out
}

fn table_3_2() -> String {
    let (m, n) = (8usize, 16usize);
    let blac = paper::mvm(m, n);
    let count = |variant: Variant| {
        let cfg = CompileConfig::variant(Microarch::Atom, variant)
            .with_unroll(lgen_cir::passes::UnrollPolicy::None);
        let kernel = lgen_core::compile(&blac, "mvm", &cfg);
        let mut a = vec![0.5f32; m * n];
        let mut x = vec![0.5f32; n];
        let mut y = vec![0.0f32; m];
        let layout = MemLayout::aligned(&kernel);
        let mut sink = CountingSink::new();
        run_kernel(
            &kernel,
            &mut [&mut a, &mut x, &mut y],
            &layout,
            lgen_isa::VectorIsa::Ssse3,
            &mut sink,
        )
        .expect("kernel runs");
        (
            sink.count(MOp::MmMulPs),
            sink.count(MOp::MmAddPs),
            sink.count(MOp::MmHaddPs),
        )
    };
    let (mul_o, add_o, hadd_o) = count(Variant::Base);
    let (mul_n, add_n, hadd_n) = count(Variant::Mvm);
    let (m64, n64) = (m as u64, n as u64);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== table-3.2: arithmetic operations, old vs new MVM (M={m}, N={n}) =="
    );
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>10}",
        "operation", "old MVM", "new MVM"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>10}   (paper: MN/4 = {})",
        "mmMulPs",
        mul_o,
        mul_n,
        m64 * n64 / 4
    );
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>10}   (paper: (M/4)(N/4-1) = {} vs M(N/4-1) = {})",
        "mmAddPs",
        add_o,
        add_n,
        (m64 / 4) * (n64 / 4 - 1),
        m64 * (n64 / 4 - 1)
    );
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>10}   (paper: 3MN/16 = {} vs 3M/4 = {})",
        "mmHaddPs",
        hadd_o,
        hadd_n,
        3 * m64 * n64 / 16,
        3 * m64 / 4
    );
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>10}   (paper: both (M/4)(2N-1) = {})",
        "total",
        mul_o + add_o + hadd_o,
        mul_n + add_n + hadd_n,
        (m64 / 4) * (2 * n64 - 1)
    );
    out
}

// -------------------------------------------------------------- helpers ---

const ATOM_VARIANTS: [Variant; 4] = [Variant::Full, Variant::Align, Variant::Mvm, Variant::Base];
const FULL_BASE: [Variant; 2] = [Variant::Full, Variant::Base];
const FULL_ONLY: [Variant; 1] = [Variant::Full];

fn render(figs: &[Figure]) -> String {
    figs.iter()
        .map(Figure::render)
        .collect::<Vec<_>>()
        .join("\n")
}

// ----------------------------------------------------------- Atom (§5.2) ---

fn fig_5_1() -> String {
    let ns = sweeps::panel();
    let figs = vec![
        SeriesBuilder::new(Microarch::Atom, |n| paper::mvm(4, n))
            .variants(&ATOM_VARIANTS)
            .run("fig-5.1a", "y = Ax, A is 4×n (Atom)", &ns),
        SeriesBuilder::new(Microarch::Atom, |n| paper::two_gemv(4, n))
            .variants(&ATOM_VARIANTS)
            .run("fig-5.1b", "y = αAx + βBx, A,B are 4×n (Atom)", &ns),
        SeriesBuilder::new(Microarch::Atom, |n| paper::bilinear(4, n))
            .variants(&ATOM_VARIANTS)
            .run("fig-5.1c", "α = xᵀAy, A is 4×n (Atom)", &ns),
    ];
    render(&figs)
}

fn fig_5_2() -> String {
    let ns = sweeps::panel();
    let figs = vec![
        SeriesBuilder::new(Microarch::Atom, |n| paper::gemv(n, 4))
            .variants(&ATOM_VARIANTS)
            .run("fig-5.2a", "y = αAx + βy, A is n×4 (Atom)", &ns),
        SeriesBuilder::new(Microarch::Atom, |n| paper::two_gemv(n, 4))
            .variants(&ATOM_VARIANTS)
            .run("fig-5.2b", "y = αAx + βBx, A,B are n×4 (Atom)", &ns),
        SeriesBuilder::new(Microarch::Atom, |n| paper::bilinear(n, 4))
            .variants(&ATOM_VARIANTS)
            .run("fig-5.2c", "α = xᵀAy, A is n×4 (Atom)", &ns),
    ];
    render(&figs)
}

fn fig_5_3() -> String {
    let ns = sweeps::micro();
    let figs = vec![
        SeriesBuilder::new(Microarch::Atom, |n| paper::mvm(n, n))
            .variants(&ATOM_VARIANTS)
            .run("fig-5.3a", "y = Ax, A is n×n (Atom micro)", &ns),
        SeriesBuilder::new(Microarch::Atom, |n| paper::bilinear(n, n))
            .variants(&ATOM_VARIANTS)
            .run("fig-5.3b", "α = xᵀAy, A is n×n (Atom micro)", &ns),
    ];
    render(&figs)
}

fn fig_5_4() -> String {
    let ns = sweeps::panel_short();
    let varying = sweeps::varying();
    let figs = vec![
        SeriesBuilder::new(Microarch::Atom, |n| paper::mmm(4, 4, n))
            .variants(&FULL_BASE)
            .run("fig-5.4a", "C = AB, A is 4×4, B is 4×n (Atom)", &ns),
        SeriesBuilder::new(Microarch::Atom, |n| paper::gemm(4, 4, n))
            .variants(&FULL_BASE)
            .run("fig-5.4b", "C = αAB + βC, A is 4×4, B is 4×n (Atom)", &ns),
        SeriesBuilder::new(Microarch::Atom, |n| paper::addt_gemm(4, n, n))
            .variants(&FULL_BASE)
            .run(
                "fig-5.4c",
                "C = α(A0+A1)ᵀB + βC, A0,A1 are 4×n (Atom)",
                &varying,
            ),
    ];
    render(&figs)
}

fn fig_5_5() -> String {
    let ns = sweeps::panel_short();
    let figs = vec![
        SeriesBuilder::new(Microarch::Atom, |n| paper::mmm(4, n, 4))
            .variants(&FULL_BASE)
            .run("fig-5.5a", "C = AB, A is 4×n, B is n×4 (Atom)", &ns),
        SeriesBuilder::new(Microarch::Atom, |n| paper::gemm(4, n, 4))
            .variants(&FULL_BASE)
            .run("fig-5.5b", "C = αAB + βC, A is 4×n, B is n×4 (Atom)", &ns),
        SeriesBuilder::new(Microarch::Atom, |n| paper::addt_gemm(4, n, 4))
            .variants(&FULL_BASE)
            .run(
                "fig-5.5c",
                "C = α(A0+A1)ᵀB + βC, A0,A1 are 4×n, B is 4×4 (Atom)",
                &ns,
            ),
    ];
    render(&figs)
}

fn fig_5_6() -> String {
    let figs = vec![SeriesBuilder::new(Microarch::Atom, |n| paper::mmm(n, n, n))
        .variants(&FULL_BASE)
        .run(
            "fig-5.6",
            "C = AB, A and B are n×n (Atom micro)",
            &sweeps::micro(),
        )];
    render(&figs)
}

fn fig_5_7() -> String {
    let ns = sweeps::varying();
    let short: Vec<usize> = ns.iter().copied().filter(|&n| n <= 62).collect();
    let figs = vec![
        SeriesBuilder::new(Microarch::Atom, |n| paper::gemv(30, n))
            .variants(&ATOM_VARIANTS)
            .run("fig-5.7a", "y = αAx + βy, A is 30×n (Atom)", &ns),
        SeriesBuilder::new(Microarch::Atom, |n| paper::gemm(30, n, 30))
            .variants(&FULL_BASE)
            .run(
                "fig-5.7b",
                "C = αAB + βC, A is 30×n, B is n×30 (Atom)",
                &short,
            ),
        SeriesBuilder::new(Microarch::Atom, |n| paper::addt_gemm(n, 30, 30))
            .variants(&FULL_BASE)
            .run(
                "fig-5.7c",
                "C = α(A0+A1)ᵀB + βC, A0,A1,B are n×30 (Atom)",
                &short,
            ),
    ];
    render(&figs)
}

fn fig_5_8() -> String {
    let figs = vec![SeriesBuilder::new(Microarch::Atom, paper::axpy)
        .variants(&FULL_BASE)
        .run("fig-5.8", "y = αx + y (Atom)", &sweeps::vector())];
    render(&figs)
}

fn fig_5_9() -> String {
    // y = αAx + βy on 30×n, all arrays allocated aligned + offset.
    let ns = sweeps::varying();
    let mut out = String::new();
    for (sub, off_floats, label) in [
        ("a", 0usize, "offset 0 bytes"),
        ("b", 1, "offset 4 bytes"),
        ("c", 2, "offset 8 bytes"),
    ] {
        let mut fig = Figure::new(
            &format!("fig-5.9{sub}"),
            &format!("y = αAx + βy, A is 30×n, {label} (Atom)"),
            "n",
        );
        let mut lgen_full = Series::new("LGen-Full");
        let mut lgen_mvm = Series::new("LGen-MVM");
        let mut eigen = Series::new("Eigen-3.2.0");
        let mut mkl = Series::new("MKL 11.1");
        let mut hand = Series::new("Handwritten fixed");
        for &n in &ns {
            let blac = paper::gemv(30, n);
            // Parameter order: alpha, beta, A, x, y — scalars stay aligned.
            let offs = vec![0, 0, off_floats, off_floats, off_floats];
            let full_cfg = CompileConfig::full(Microarch::Atom).with_versioning();
            let mvm_cfg = CompileConfig::variant(Microarch::Atom, Variant::Mvm);
            lgen_full.points.push((
                n,
                Some(measure_lgen_offsets(
                    &blac,
                    Microarch::Atom,
                    &full_cfg,
                    &offs,
                )),
            ));
            lgen_mvm.points.push((
                n,
                Some(measure_lgen_offsets(
                    &blac,
                    Microarch::Atom,
                    &mvm_cfg,
                    &offs,
                )),
            ));
            for (series, comp) in [
                (&mut eigen, Competitor::Eigen),
                (&mut mkl, Competitor::Mkl),
                (&mut hand, Competitor::HandwrittenFixed),
            ] {
                series.points.push((
                    n,
                    measure_competitor_offsets(&blac, Microarch::Atom, comp, Some(&offs)),
                ));
            }
        }
        fig.series = vec![lgen_full, lgen_mvm, eigen, mkl, hand];
        let _ = writeln!(out, "{}", fig.render());
    }
    out
}

// ------------------------------------------------- Cortex-A8/A9 (§5.3–4) ---

fn arm_simple(arch: Microarch, id_prefix: &str) -> String {
    let ns = sweeps::panel();
    let short = sweeps::panel_short();
    let rank: Vec<usize> = sweeps::varying()
        .iter()
        .copied()
        .filter(|&n| n <= 86)
        .collect();
    let figs = vec![
        SeriesBuilder::new(arch, |n| paper::mvm(n, 4))
            .variants(&FULL_ONLY)
            .run(
                &format!("{id_prefix}a"),
                &format!("y = Ax, A is n×4 ({arch})"),
                &ns,
            ),
        SeriesBuilder::new(arch, |n| paper::mmm(4, n, 4))
            .variants(&FULL_ONLY)
            .run(
                &format!("{id_prefix}b"),
                &format!("C = AB, A is 4×n, B is n×4 ({arch})"),
                &short,
            ),
        SeriesBuilder::new(arch, |n| paper::mmm(n, 4, n))
            .variants(&FULL_ONLY)
            .run(
                &format!("{id_prefix}c"),
                &format!("C = AB, A is n×4, B is 4×n ({arch})"),
                &rank,
            ),
    ];
    render(&figs)
}

fn arm_blas_like(arch: Microarch, id_prefix: &str) -> String {
    let ns = sweeps::panel();
    let varying = sweeps::varying();
    let figs = vec![
        SeriesBuilder::new(arch, paper::axpy)
            .variants(&FULL_ONLY)
            .run(
                &format!("{id_prefix}a"),
                &format!("y = αx + y ({arch})"),
                &sweeps::vector(),
            ),
        SeriesBuilder::new(arch, |n| paper::gemv(4, n))
            .variants(&FULL_ONLY)
            .run(
                &format!("{id_prefix}b"),
                &format!("y = αAx + βy, A is 4×n ({arch})"),
                &ns,
            ),
        SeriesBuilder::new(arch, |n| paper::gemv(30, n))
            .variants(&FULL_ONLY)
            .run(
                &format!("{id_prefix}c"),
                &format!("y = αAx + βy, A is 30×n ({arch})"),
                &varying,
            ),
        SeriesBuilder::new(arch, |n| paper::gemm(30, n, 30))
            .variants(&FULL_ONLY)
            .run(
                &format!("{id_prefix}d"),
                &format!("C = αAB + βC, A is 30×n, B is n×30 ({arch})"),
                &varying
                    .iter()
                    .copied()
                    .filter(|&n| n <= 62)
                    .collect::<Vec<_>>(),
            ),
    ];
    render(&figs)
}

fn arm_multi_blas(arch: Microarch, id_prefix: &str) -> String {
    let ns = sweeps::panel();
    let short: Vec<usize> = sweeps::varying()
        .iter()
        .copied()
        .filter(|&n| n <= 86)
        .collect();
    let figs = vec![
        SeriesBuilder::new(arch, |n| paper::two_gemv(4, n))
            .variants(&FULL_ONLY)
            .run(
                &format!("{id_prefix}a"),
                &format!("y = αAx + βBx, A,B are 4×n ({arch})"),
                &ns,
            ),
        SeriesBuilder::new(arch, |n| paper::bilinear(4, n))
            .variants(&FULL_ONLY)
            .run(
                &format!("{id_prefix}b"),
                &format!("α = xᵀAy, A is 4×n ({arch})"),
                &ns,
            ),
        SeriesBuilder::new(arch, |n| paper::addt_gemm(4, n, n))
            .variants(&FULL_ONLY)
            .run(
                &format!("{id_prefix}c"),
                &format!("C = α(A0+A1)ᵀB + βC, A0,A1 are 4×n ({arch})"),
                &short,
            ),
    ];
    render(&figs)
}

fn arm_micro(arch: Microarch, id_prefix: &str) -> String {
    let ns = sweeps::micro();
    let figs = vec![
        SeriesBuilder::new(arch, |n| paper::mvm(n, n))
            .variants(&FULL_BASE)
            .run(
                &format!("{id_prefix}a"),
                &format!("y = Ax, n×n ({arch} micro)"),
                &ns,
            ),
        SeriesBuilder::new(arch, |n| paper::mmm(n, n, n))
            .variants(&FULL_BASE)
            .run(
                &format!("{id_prefix}b"),
                &format!("C = AB, n×n ({arch} micro)"),
                &ns,
            ),
        SeriesBuilder::new(arch, |n| paper::bilinear(n, n))
            .variants(&FULL_BASE)
            .run(
                &format!("{id_prefix}c"),
                &format!("α = xᵀAy, n×n ({arch} micro)"),
                &ns,
            ),
    ];
    render(&figs)
}

fn arm_leftovers(arch: Microarch, id: &str) -> String {
    // (a) all small M×K×N shapes; (b) 100×n×n with a leftover-heavy sweep.
    let mut out = String::new();
    let mut fig_a = Figure::new(
        &format!("{id}a"),
        &format!("C = AB, M,K,N ∈ [1,4], MK>1, KN>1 ({arch})"),
        "case",
    );
    let mut padded = Series::new("LGen");
    let mut special = Series::new("LGen-Full");
    let mut case = 0usize;
    for m in 1..=4usize {
        for k in 1..=4usize {
            for n in 1..=4usize {
                if m * k <= 1 || k * n <= 1 {
                    continue;
                }
                case += 1;
                let blac = paper::mmm(m, k, n);
                padded
                    .points
                    .push((case, Some(measure_lgen(&blac, arch, Variant::Base))));
                special
                    .points
                    .push((case, Some(measure_lgen(&blac, arch, Variant::Full))));
            }
        }
    }
    fig_a.series = vec![special, padded];
    let _ = writeln!(out, "{}", fig_a.render());

    let fig_b = SeriesBuilder::new(arch, |n| paper::mmm(100, n, n))
        .variants(&FULL_BASE)
        .competitors(&[
            Competitor::HandwrittenFixed,
            Competitor::HandwrittenGen,
            Competitor::Eigen,
            Competitor::Atlas,
        ])
        .run(
            &format!("{id}b"),
            &format!("C = AB, A is 100×n, B is n×n ({arch})"),
            &sweeps::leftover(),
        );
    let _ = writeln!(out, "{}", fig_b.render());
    out
}

fn fig_5_10() -> String {
    arm_simple(Microarch::CortexA8, "fig-5.10")
}

fn fig_5_11() -> String {
    arm_blas_like(Microarch::CortexA8, "fig-5.11")
}

fn fig_5_12() -> String {
    arm_micro(Microarch::CortexA8, "fig-5.12")
}

fn fig_5_13() -> String {
    arm_leftovers(Microarch::CortexA8, "fig-5.13")
}

fn fig_5_14() -> String {
    arm_simple(Microarch::CortexA9, "fig-5.14")
}

fn fig_5_15() -> String {
    arm_blas_like(Microarch::CortexA9, "fig-5.15")
}

fn fig_5_16() -> String {
    arm_multi_blas(Microarch::CortexA9, "fig-5.16")
}

fn fig_5_17() -> String {
    arm_micro(Microarch::CortexA9, "fig-5.17")
}

fn fig_5_18() -> String {
    arm_leftovers(Microarch::CortexA9, "fig-5.18")
}

// -------------------------------------------------------- ARM1176 (§5.5) ---

fn fig_5_19() -> String {
    let arch = Microarch::Arm1176;
    let ns = sweeps::panel_short();
    let figs = vec![
        SeriesBuilder::new(arch, |n| paper::mvm(4, n))
            .variants(&FULL_ONLY)
            .run("fig-5.19a", "y = Ax, A is 4×n (ARM1176)", &ns),
        SeriesBuilder::new(arch, |n| paper::mmm(4, n, 4))
            .variants(&FULL_ONLY)
            .run("fig-5.19b", "C = AB, A is 4×n, B is n×4 (ARM1176)", &ns),
        SeriesBuilder::new(arch, paper::axpy)
            .variants(&FULL_ONLY)
            .run("fig-5.19c", "y = αx + y (ARM1176)", &sweeps::vector()),
        SeriesBuilder::new(arch, |n| paper::gemv(4, n))
            .variants(&FULL_ONLY)
            .run("fig-5.19d", "y = αAx + βy, A is 4×n (ARM1176)", &ns),
        SeriesBuilder::new(arch, |n| paper::gemm(4, n, 4))
            .variants(&FULL_ONLY)
            .run(
                "fig-5.19e",
                "C = αAB + βC, A is 4×n, B is n×4 (ARM1176)",
                &ns,
            ),
        SeriesBuilder::new(arch, |n| paper::two_gemv(4, n))
            .variants(&FULL_ONLY)
            .run("fig-5.19f", "y = αAx + βBx, A,B are 4×n (ARM1176)", &ns),
        SeriesBuilder::new(arch, |n| paper::bilinear(4, n))
            .variants(&FULL_ONLY)
            .run("fig-5.19g", "α = xᵀAy, A is 4×n (ARM1176)", &ns),
        SeriesBuilder::new(arch, |n| paper::addt_gemm(n, 4, 4))
            .variants(&FULL_ONLY)
            .run(
                "fig-5.19h",
                "C = α(A0+A1)ᵀB + βC, A0,A1,B are n×4 (ARM1176)",
                &ns,
            ),
    ];
    render(&figs)
}

// ------------------------------------------------------------ Appendix B ---

fn fig_b2() -> String {
    let ns = sweeps::panel_short();
    let figs = vec![
        SeriesBuilder::new(Microarch::Atom, paper::axpy)
            .variants(&FULL_BASE)
            .run("fig-B.2a", "y = αx + y (Atom)", &sweeps::vector()),
        SeriesBuilder::new(Microarch::Atom, |n| paper::gemv(n, 4))
            .variants(&FULL_BASE)
            .run("fig-B.2b", "y = αAx + βy, A is n×4 (Atom)", &ns),
        SeriesBuilder::new(Microarch::Atom, |n| paper::gemv(4, n))
            .variants(&FULL_BASE)
            .run("fig-B.2c", "y = αAx + βy, A is 4×n (Atom)", &ns),
        SeriesBuilder::new(Microarch::Atom, |n| paper::gemm(n, 4, n))
            .variants(&FULL_BASE)
            .run(
                "fig-B.2h",
                "C = αAB + βC, A is n×4, B is 4×n (Atom)",
                &sweeps::varying()
                    .iter()
                    .copied()
                    .filter(|&n| n <= 86)
                    .collect::<Vec<_>>(),
            ),
    ];
    render(&figs)
}

fn fig_b1() -> String {
    let ns = sweeps::panel_short();
    let figs = vec![
        SeriesBuilder::new(Microarch::Atom, |n| paper::mvm(n, 4))
            .variants(&FULL_BASE)
            .run("fig-B.1a", "y = Ax, A is n×4 (Atom)", &ns),
        SeriesBuilder::new(Microarch::Atom, |n| paper::mvm(4, n))
            .variants(&FULL_BASE)
            .run("fig-B.1b", "y = Ax, A is 4×n (Atom)", &ns),
        SeriesBuilder::new(Microarch::Atom, |n| paper::mmm(n, 4, 4))
            .variants(&FULL_BASE)
            .run("fig-B.1c", "C = AB, A is n×4, B is 4×4 (Atom)", &ns),
        SeriesBuilder::new(Microarch::Atom, |n| paper::mmm(4, 4, n))
            .variants(&FULL_BASE)
            .run("fig-B.1d", "C = AB, A is 4×4, B is 4×n (Atom)", &ns),
    ];
    render(&figs)
}

fn fig_b3() -> String {
    arm_multi_blas(Microarch::Atom, "fig-B.3")
}

fn fig_b4() -> String {
    arm_micro(Microarch::Atom, "fig-B.4")
}

fn fig_b5() -> String {
    arm_simple(Microarch::CortexA8, "fig-B.5")
}

fn fig_b6() -> String {
    arm_blas_like(Microarch::CortexA8, "fig-B.6")
}

fn fig_b7() -> String {
    arm_multi_blas(Microarch::CortexA8, "fig-B.7")
}

fn fig_b8() -> String {
    arm_micro(Microarch::CortexA8, "fig-B.8")
}

fn fig_b10() -> String {
    arm_simple(Microarch::CortexA9, "fig-B.10")
}

fn fig_b11() -> String {
    arm_blas_like(Microarch::CortexA9, "fig-B.11")
}

fn fig_b12() -> String {
    arm_multi_blas(Microarch::CortexA9, "fig-B.12")
}

fn fig_b13() -> String {
    arm_micro(Microarch::CortexA9, "fig-B.13")
}

fn fig_b15() -> String {
    let arch = Microarch::Arm1176;
    let ns = sweeps::panel_short();
    let figs = vec![
        SeriesBuilder::new(arch, |n| paper::mvm(n, 4))
            .variants(&FULL_ONLY)
            .run("fig-B.15a", "y = Ax, A is n×4 (ARM1176)", &ns),
        SeriesBuilder::new(arch, |n| paper::mvm(4, n))
            .variants(&FULL_ONLY)
            .run("fig-B.15b", "y = Ax, A is 4×n (ARM1176)", &ns),
        SeriesBuilder::new(arch, |n| paper::mmm(4, n, 4))
            .variants(&FULL_ONLY)
            .run("fig-B.15c", "C = AB, A is 4×n, B is n×4 (ARM1176)", &ns),
    ];
    render(&figs)
}

fn fig_b17() -> String {
    arm_multi_blas(Microarch::Arm1176, "fig-B.17")
}

fn fig_b18() -> String {
    arm_micro(Microarch::Arm1176, "fig-B.18")
}

fn fig_b16() -> String {
    let arch = Microarch::Arm1176;
    let ns = sweeps::panel_short();
    let figs = vec![
        SeriesBuilder::new(arch, |n| paper::gemv(n, 4))
            .variants(&FULL_ONLY)
            .run("fig-B.16b", "y = αAx + βy, A is n×4 (ARM1176)", &ns),
        SeriesBuilder::new(arch, |n| paper::gemm(n, 4, n))
            .variants(&FULL_ONLY)
            .run(
                "fig-B.16g",
                "C = αAB + βC, A is n×4, B is 4×n (ARM1176)",
                &sweeps::varying()
                    .iter()
                    .copied()
                    .filter(|&n| n <= 86)
                    .collect::<Vec<_>>(),
            ),
    ];
    render(&figs)
}

// ------------------------------------------------------- §6 extensions ---

/// Energy-aware autotuning: cycles-optimal vs energy-optimal kernels per
/// BLAC on the NEON cores.
fn ext_energy() -> String {
    use lgen_core::{Autotuner, Objective, SearchStrategy};
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== ext-energy: tuning objective comparison (Cortex-A8) =="
    );
    let _ = writeln!(
        out,
        "{:<18} {:>14} {:>14} {:>12} {:>12}",
        "BLAC", "cycles(cyc-opt)", "cycles(E-opt)", "nJ(cyc-opt)", "nJ(E-opt)"
    );
    for (name, blac) in [
        ("mvm 4x64", paper::mvm(4, 64)),
        ("mmm 4x16x4", paper::mmm(4, 16, 4)),
        ("gemv 30x23", paper::gemv(30, 23)),
        ("axpy 256", paper::axpy(256)),
    ] {
        let cfg = CompileConfig::full(Microarch::CortexA8);
        let by_cycles = Autotuner::new(cfg.clone())
            .with_strategy(SearchStrategy::Exhaustive)
            .with_objective(Objective::Cycles)
            .tune(&blac, "k");
        let by_energy = Autotuner::new(cfg)
            .with_strategy(SearchStrategy::Exhaustive)
            .with_objective(Objective::Energy)
            .tune(&blac, "k");
        let _ = writeln!(
            out,
            "{:<18} {:>14} {:>14} {:>12.2} {:>12.2}",
            name,
            by_cycles.measurement.cycles,
            by_energy.measurement.cycles,
            by_cycles.measurement.energy_pj as f64 / 1000.0,
            by_energy.measurement.energy_pj as f64 / 1000.0,
        );
    }
    out
}

/// LGen-side loop peeling vs plain alignment versioning on misaligned
/// element-wise kernels (the Fig. 5.9 limitation, fixed).
fn ext_peel() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== ext-peel: y = αx + y at shared offset 1 float (Atom) =="
    );
    let _ = writeln!(
        out,
        "{:>8} {:>16} {:>16} {:>16}",
        "n", "LGen-Versioned", "LGen-Peel", "Eigen-3.2.0"
    );
    for n in [32usize, 64, 128, 256, 512, 1024] {
        let blac = paper::axpy(n);
        let offs = [0usize, 1, 1];
        let versioned = lgen_core::compile(
            &blac,
            "k",
            &CompileConfig::full(Microarch::Atom).with_versioning(),
        );
        let peeled = lgen_core::compile(
            &blac,
            "k",
            &CompileConfig::full(Microarch::Atom).with_peeling(),
        );
        let mv = lgen_core::measure_blac(&blac, &versioned, Microarch::Atom, &offs, 3).unwrap();
        let mp = lgen_core::measure_blac(&blac, &peeled, Microarch::Atom, &offs, 3).unwrap();
        let eig =
            measure_competitor_offsets(&blac, Microarch::Atom, Competitor::Eigen, Some(&offs));
        let _ = writeln!(
            out,
            "{:>8} {:>16.3} {:>16.3} {:>16.3}",
            n,
            mv.flops_per_cycle(),
            mp.flops_per_cycle(),
            eig.unwrap_or(0.0)
        );
    }
    out
}

/// Guided hill climbing vs the paper's random search on ARM1176, where the
/// paper observes random search visiting too little of the space.
fn ext_search() -> String {
    use lgen_core::{Autotuner, SearchStrategy};
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== ext-search: search strategies on ARM1176 gemv 4×n =="
    );
    let _ = writeln!(
        out,
        "{:>6} {:>14} {:>14} {:>14} {:>10} {:>10}",
        "n", "random3(cyc)", "guided(cyc)", "exhaust(cyc)", "gd-evals", "ex-evals"
    );
    for n in [24usize, 48, 96, 190] {
        let blac = paper::gemv(4, n);
        let cfg = CompileConfig::full(Microarch::Arm1176);
        let r = Autotuner::new(cfg.clone())
            .with_sample_size(3)
            .tune(&blac, "k");
        let g = Autotuner::new(cfg.clone())
            .with_strategy(SearchStrategy::Guided)
            .tune(&blac, "k");
        let e = Autotuner::new(cfg)
            .with_strategy(SearchStrategy::Exhaustive)
            .tune(&blac, "k");
        let _ = writeln!(
            out,
            "{:>6} {:>14} {:>14} {:>14} {:>10} {:>10}",
            n,
            r.measurement.cycles,
            g.measurement.cycles,
            e.measurement.cycles,
            g.samples.len(),
            e.samples.len()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_cover_every_chapter5_artifact() {
        let ids = list();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "duplicate experiment ids");
        for required in [
            "table-2.1",
            "table-3.1",
            "table-3.2",
            "fig-5.1",
            "fig-5.2",
            "fig-5.3",
            "fig-5.4",
            "fig-5.5",
            "fig-5.6",
            "fig-5.7",
            "fig-5.8",
            "fig-5.9",
            "fig-5.10",
            "fig-5.11",
            "fig-5.12",
            "fig-5.13",
            "fig-5.14",
            "fig-5.15",
            "fig-5.16",
            "fig-5.17",
            "fig-5.18",
            "fig-5.19",
        ] {
            assert!(ids.contains(&required), "missing {required}");
        }
    }

    #[test]
    fn tables_render() {
        let t = run("table-2.1").unwrap();
        assert!(t.contains("total: 18"));
        let t = run("table-3.1").unwrap();
        assert!(t.contains("Intel Atom"));
        assert!(t.contains("occupies both ports"));
        let t = run("table-3.2").unwrap();
        assert!(t.contains("mmHaddPs"));
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run("fig-99").is_none());
    }
}
