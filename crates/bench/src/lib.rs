//! Experiment drivers reproducing the paper's evaluation (Chapter 5 and
//! Appendix B).
//!
//! Every figure and table has a driver that regenerates its data series:
//! the same BLACs, the same size sweeps, the same competitor set, measured
//! with the same protocol — on the microarchitecture simulator instead of
//! silicon. Run them via the `experiments` binary:
//!
//! ```text
//! cargo run -p lgen-bench --release --bin experiments -- list
//! cargo run -p lgen-bench --release --bin experiments -- fig-5.1
//! cargo run -p lgen-bench --release --bin experiments -- all
//! ```

pub mod drivers;
pub mod figures;
pub mod series;

pub use drivers::{measure_competitor, measure_lgen, SeriesBuilder};
pub use series::{Figure, Series};
