//! Data series and rendering of experiment results.

use std::fmt::Write as _;

/// One line of a plot: a label and `(n, flops/cycle)` points.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Legend label (e.g. "LGen-Full", "MKL 11.1").
    pub label: String,
    /// `(x, f/c)` samples; `None` marks a competitor unavailable at that x.
    pub points: Vec<(usize, Option<f64>)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// The maximum f/c over the sweep (0 if empty/unavailable).
    pub fn peak(&self) -> f64 {
        self.points.iter().filter_map(|p| p.1).fold(0.0, f64::max)
    }

    /// Geometric mean of f/c over available points (0 if none).
    pub fn geomean(&self) -> f64 {
        let vals: Vec<f64> = self.points.iter().filter_map(|p| p.1).collect();
        if vals.is_empty() {
            0.0
        } else {
            (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
        }
    }
}

/// A whole figure: id, caption, and its series over a shared x sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct Figure {
    /// Paper artifact id, e.g. "fig-5.1a".
    pub id: String,
    /// Caption, e.g. "y = Ax, A is 4×n (Intel Atom)".
    pub title: String,
    /// X-axis meaning.
    pub xlabel: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(id: &str, title: &str, xlabel: &str) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            xlabel: xlabel.into(),
            series: Vec::new(),
        }
    }

    /// The series with the given label, if present.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Renders the figure as an aligned text table (performance in f/c,
    /// matching the paper's y-axes).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {}: {} ==", self.id, self.title);
        let _ = write!(out, "{:>8}", self.xlabel);
        for s in &self.series {
            let _ = write!(out, "  {:>18}", truncate(&s.label, 18));
        }
        let _ = writeln!(out);
        let xs: Vec<usize> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|p| p.0).collect())
            .unwrap_or_default();
        for (row, &x) in xs.iter().enumerate() {
            let _ = write!(out, "{x:>8}");
            for s in &self.series {
                match s.points.get(row).and_then(|p| p.1) {
                    Some(v) => {
                        let _ = write!(out, "  {v:>18.3}");
                    }
                    None => {
                        let _ = write!(out, "  {:>18}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders as CSV (one row per x, one column per series).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.xlabel);
        for s in &self.series {
            let _ = write!(out, ",{}", s.label);
        }
        let _ = writeln!(out);
        let xs: Vec<usize> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|p| p.0).collect())
            .unwrap_or_default();
        for (row, &x) in xs.iter().enumerate() {
            let _ = write!(out, "{x}");
            for s in &self.series {
                match s.points.get(row).and_then(|p| p.1) {
                    Some(v) => {
                        let _ = write!(out, ",{v:.4}");
                    }
                    None => {
                        let _ = write!(out, ",");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        let mut f = Figure::new("fig-x", "test", "n");
        let mut a = Series::new("A");
        a.points = vec![(2, Some(1.0)), (4, Some(2.0))];
        let mut b = Series::new("B");
        b.points = vec![(2, None), (4, Some(0.5))];
        f.series = vec![a, b];
        f
    }

    #[test]
    fn render_contains_all_points() {
        let txt = sample().render();
        assert!(txt.contains("fig-x"));
        assert!(txt.contains("1.000"));
        assert!(txt.contains("0.500"));
        assert!(txt.contains('-'));
    }

    #[test]
    fn csv_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "n,A,B");
        assert_eq!(lines[1], "2,1.0000,");
        assert_eq!(lines[2], "4,2.0000,0.5000");
    }

    #[test]
    fn stats() {
        let f = sample();
        assert_eq!(f.series("A").unwrap().peak(), 2.0);
        assert!(f.series("B").unwrap().geomean() > 0.49);
    }
}
