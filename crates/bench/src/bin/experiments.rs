//! Regenerates the paper's tables and figures on the simulator.
//!
//! Usage:
//!
//! ```text
//! experiments list            # available artifact ids
//! experiments fig-5.1 …       # run specific artifacts
//! experiments all             # run everything (slow)
//! ```

use lgen_bench::figures;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "list" {
        println!("available experiments:");
        for e in figures::all() {
            println!("  {:<12} {}", e.id, e.title);
        }
        println!("\nrun with: experiments <id> [<id> ...] | all");
        return;
    }
    let ids: Vec<String> = if args[0] == "all" {
        figures::list().into_iter().map(String::from).collect()
    } else {
        args
    };
    for id in ids {
        match figures::run(&id) {
            Some(output) => println!("{output}"),
            None => eprintln!("unknown experiment '{id}' (try 'list')"),
        }
    }
}
