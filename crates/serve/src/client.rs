//! A blocking client for the `lgend` protocol.

use crate::proto::{read_frame, write_frame, ProtoError, Request, Response, Verb};
use std::io::{self, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// One connection to a daemon; requests run in lockstep.
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connects to the daemon at `socket`.
    pub fn connect(socket: impl AsRef<Path>) -> io::Result<Client> {
        Ok(Client {
            stream: UnixStream::connect(socket)?,
        })
    }

    /// [`connect`](Self::connect) that retries until the daemon has bound
    /// the socket (it starts asynchronously) or `timeout` elapses.
    pub fn connect_within(socket: impl AsRef<Path>, timeout: Duration) -> io::Result<Client> {
        let socket = socket.as_ref();
        let deadline = Instant::now() + timeout;
        loop {
            match UnixStream::connect(socket) {
                Ok(stream) => return Ok(Client { stream }),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// Sends one request and waits for its response.
    pub fn request(&mut self, req: &Request) -> Result<Response, ProtoError> {
        write_frame(&mut self.stream, &req.encode())?;
        Response::decode(&read_frame(&mut self.stream)?)
    }

    /// Convenience: compile `source` as tenant `tenant` under kernel name
    /// `name` (default target/variant unless the request is customized
    /// via [`request`](Self::request)).
    pub fn compile(
        &mut self,
        tenant: &str,
        name: &str,
        source: &str,
    ) -> Result<Response, ProtoError> {
        self.request(
            &Request::new(Verb::Compile)
                .with("tenant", tenant)
                .with("name", name)
                .with_body(source),
        )
    }

    /// Asks the daemon for its metrics/cache report.
    pub fn stats(&mut self) -> Result<Response, ProtoError> {
        self.request(&Request::new(Verb::Stats))
    }

    /// Asks the daemon for the stable-order JSON stats document.
    pub fn stats_json(&mut self) -> Result<Response, ProtoError> {
        self.request(&Request::new(Verb::Stats).with("format", "json"))
    }

    /// Asks the daemon for its flight-recorder dump (JSON body).
    pub fn dump(&mut self) -> Result<Response, ProtoError> {
        self.request(&Request::new(Verb::Dump))
    }

    /// Asks the daemon to drain and stop. The daemon answers, then closes.
    pub fn shutdown(&mut self) -> Result<Response, ProtoError> {
        self.request(&Request::new(Verb::Shutdown))
    }

    /// Bounds how long reads may block. Protocol-abuse probes need this:
    /// for some malformed streams (e.g. a frame header whose announced
    /// length never arrives) the daemon rightly keeps waiting for the
    /// rest, so an unbounded read on our side would deadlock with it.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Writes raw bytes (no framing) — for protocol-abuse tests and the
    /// replay harness's malformed-traffic legs. The daemon is expected to
    /// answer with `error bad-request` and/or drop the connection.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads one raw response frame (after [`send_raw`](Self::send_raw)).
    pub fn read_response(&mut self) -> Result<Response, ProtoError> {
        Response::decode(&read_frame(&mut self.stream)?)
    }
}
