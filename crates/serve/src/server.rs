//! `lgend`: the long-running compile daemon.
//!
//! The daemon stacks the pieces the engine already has into a service
//! (ROADMAP item 1):
//!
//! ```text
//! UnixListener ── per-connection reader threads
//!        │  parse frame → Request          (proto.rs)
//!        ▼
//! FairQueue (bounded, per-tenant round-robin)      (lgen-mediator)
//!        │  Full → "busy" response, no queueing
//!        ▼
//! worker pool ── Coalescer (identical fingerprints compile once)
//!        │            │
//!        ▼            ▼
//! KernelCache (memory) → DiskCache (persistent, content-addressed)
//! ```
//!
//! Every compile answer reports which tier served it (`outcome:` header);
//! the traffic-replay harness aggregates those instead of scraping global
//! counters, so several daemons can share one process in tests.
//!
//! **Failure containment.** Each request runs under `catch_unwind`: a
//! panicking candidate produces an `error internal` response for exactly
//! that request and nothing else — the shard maps, memo, metrics registry,
//! span buffer, and coalescing map all swallow lock poisoning (see
//! DESIGN.md "The compile service"), and followers of a panicked
//! coalescing leader retry on their own. `LGEN_FAULTS=panic@i,...`
//! injects such panics by *request sequence number* for the regression
//! tests and the CI replay run.
//!
//! **Shutdown.** A `shutdown` request (there is no signal handling — the
//! accept loop polls a flag) answers `ok`, closes admission, drains the
//! queue, joins the workers, and removes the socket file. In-flight
//! requests finish; later requests get `error shutting-down`.

use crate::proto::{read_frame, write_frame, ErrorKind, ProtoError, Request, Response, Verb};
use lgen_core::{
    stable_fingerprint, Coalescer, CompileConfig, CompileOutcome, DiskCache, FaultPlan,
    KernelCache, ProgramTuner, PrunePolicy, Variant,
};
use lgen_mediator::{AdmissionError, FairQueue};
use lgen_telemetry::{metric_counter, metric_histogram};
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the daemon is wired; see the field docs for defaults.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Unix socket path to bind (stale files are replaced).
    pub socket: PathBuf,
    /// Directory for the persistent kernel cache; `None` disables the
    /// disk tier (memory-only service).
    pub cache_dir: Option<PathBuf>,
    /// Compile worker threads.
    pub workers: usize,
    /// Total admission-queue capacity across tenants.
    pub queue_capacity: usize,
}

impl ServeConfig {
    /// A config with `workers = 2` and `queue_capacity = 64`.
    pub fn new(socket: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            socket: socket.into(),
            cache_dir: None,
            workers: 2,
            queue_capacity: 64,
        }
    }

    /// Enables the persistent disk tier under `dir`.
    #[must_use]
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> ServeConfig {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Overrides the worker count (min 1).
    #[must_use]
    pub fn with_workers(mut self, n: usize) -> ServeConfig {
        self.workers = n.max(1);
        self
    }

    /// Overrides the admission-queue capacity (min 1).
    #[must_use]
    pub fn with_queue_capacity(mut self, n: usize) -> ServeConfig {
        self.queue_capacity = n.max(1);
        self
    }
}

/// Shared state behind every connection and worker.
struct Engine {
    cache: Arc<KernelCache>,
    disk: Option<Arc<DiskCache>>,
    coalescer: Coalescer<Result<CompileReply, String>>,
    queue: FairQueue<Job>,
    faults: FaultPlan,
    /// Request sequence numbers for fault injection and spans.
    seq: AtomicU64,
    shutdown: AtomicBool,
}

/// What a worker hands back for a compile/tune request.
#[derive(Clone)]
struct CompileReply {
    c_source: String,
    fingerprint: u64,
    outcome: CompileOutcome,
    flops: u64,
}

/// One admitted request: the parsed message plus the reply channel of the
/// connection thread that accepted it.
struct Job {
    req: Request,
    seq: u64,
    reply: mpsc::Sender<Response>,
}

/// A running daemon (in-process handle). Binds on
/// [`start`](Lgend::start); serves until a `shutdown` request arrives;
/// [`join`](Lgend::join) waits for that and tears everything down.
pub struct Lgend {
    engine: Arc<Engine>,
    socket: PathBuf,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Lgend {
    /// Binds the socket, spawns the accept loop and the worker pool, and
    /// returns immediately.
    pub fn start(config: ServeConfig) -> io::Result<Lgend> {
        for name in [
            "lgen.serve.requests",
            "lgen.serve.hits",
            "lgen.serve.coalesced",
            "lgen.serve.compiled",
            "lgen.serve.rejected",
            "lgen.serve.errors",
        ] {
            lgen_telemetry::counter(name);
        }
        let disk = match &config.cache_dir {
            Some(dir) => Some(Arc::new(DiskCache::open(dir)?)),
            None => None,
        };
        let mut cache = KernelCache::new();
        if let Some(d) = &disk {
            cache = cache.with_disk(d.clone());
        }
        let engine = Arc::new(Engine {
            cache: Arc::new(cache),
            disk,
            coalescer: Coalescer::new(),
            queue: FairQueue::new(config.queue_capacity),
            faults: FaultPlan::from_env(),
            seq: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });

        // Replace a stale socket file from a previous (crashed) daemon;
        // a *live* daemon would still fail to... no: bind after unlink
        // always succeeds, so ownership of a path is by convention the
        // caller's problem (matching every other Unix-socket daemon).
        let _ = std::fs::remove_file(&config.socket);
        let listener = UnixListener::bind(&config.socket)?;
        listener.set_nonblocking(true)?;

        let workers = (0..config.workers)
            .map(|i| {
                let engine = engine.clone();
                std::thread::Builder::new()
                    .name(format!("lgend-worker-{i}"))
                    .spawn(move || worker_loop(&engine))
                    .expect("spawn worker")
            })
            .collect();
        let acceptor = {
            let engine = engine.clone();
            std::thread::Builder::new()
                .name("lgend-accept".to_string())
                .spawn(move || accept_loop(listener, &engine))
                .expect("spawn acceptor")
        };
        Ok(Lgend {
            engine,
            socket: config.socket,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The socket path the daemon is serving on.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// The kernel cache (memory tier) behind the daemon.
    pub fn cache(&self) -> &Arc<KernelCache> {
        &self.engine.cache
    }

    /// The persistent tier, when configured.
    pub fn disk(&self) -> Option<&Arc<DiskCache>> {
        self.engine.disk.as_ref()
    }

    /// Requests shutdown as if a `shutdown` frame had arrived.
    pub fn request_shutdown(&self) {
        self.engine.begin_shutdown();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.engine.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until the daemon has shut down (acceptor and workers
    /// joined), then removes the socket file.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let _ = std::fs::remove_file(&self.socket);
    }
}

impl Drop for Lgend {
    fn drop(&mut self) {
        // An abandoned handle still tears the daemon down cleanly.
        self.engine.begin_shutdown();
        self.join_inner();
    }
}

impl Engine {
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            self.queue.close();
        }
    }
}

fn accept_loop(listener: UnixListener, engine: &Arc<Engine>) {
    // Nonblocking accept + 20ms poll: the daemon notices a shutdown flag
    // set by any connection (or the in-process handle) without signals.
    while !engine.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let engine = engine.clone();
                let _ = std::thread::Builder::new()
                    .name("lgend-conn".to_string())
                    .spawn(move || connection_loop(stream, &engine));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => break,
        }
    }
    engine.begin_shutdown();
}

/// Serves one client connection: frames in lockstep until EOF, a protocol
/// violation (connection dropped — malformed traffic must not tie up a
/// reader thread), or daemon shutdown.
fn connection_loop(stream: UnixStream, engine: &Arc<Engine>) {
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(p) => p,
            Err(ProtoError::Io(_)) => return, // EOF or peer gone
            Err(_) => {
                // Oversized or unreadable frame: answer once, then close —
                // resynchronizing a byte stream after a bad prefix is
                // guesswork.
                metric_counter!("lgen.serve.errors").inc();
                let resp = Response::error(ErrorKind::BadRequest, "unreadable frame");
                let _ = write_frame(&mut writer, &resp.encode());
                return;
            }
        };
        let req = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                metric_counter!("lgen.serve.errors").inc();
                let resp = Response::error(ErrorKind::BadRequest, e.to_string());
                if write_frame(&mut writer, &resp.encode()).is_err() {
                    return;
                }
                continue; // framing is intact; the connection can go on
            }
        };
        let resp = dispatch(engine, req);
        let stop = resp.headers.get("closing").is_some_and(|v| v == "true");
        if write_frame(&mut writer, &resp.encode()).is_err() {
            return;
        }
        if stop {
            return;
        }
    }
}

/// Routes one request: control verbs answer inline on the connection
/// thread; compile verbs go through admission and a worker.
fn dispatch(engine: &Arc<Engine>, req: Request) -> Response {
    metric_counter!("lgen.serve.requests").inc();
    let t = Instant::now();
    let mut span = lgen_telemetry::span("serve.request");
    if span.is_recording() {
        span.attr("verb", format!("{:?}", req.verb));
        span.attr("tenant", req.tenant());
    }
    let resp = match req.verb {
        Verb::Ping => Response::ok("pong"),
        Verb::Stats => stats_response(engine),
        Verb::Shutdown => {
            engine.begin_shutdown();
            Response::ok("draining").with("closing", "true")
        }
        Verb::Compile | Verb::Tune => {
            let seq = engine.seq.fetch_add(1, Ordering::Relaxed);
            let (tx, rx) = mpsc::channel();
            let tenant = req.tenant().to_string();
            match engine.queue.push(
                &tenant,
                Job {
                    req,
                    seq,
                    reply: tx,
                },
            ) {
                Ok(()) => rx.recv().unwrap_or_else(|_| {
                    // The worker dropped the sender without replying:
                    // only possible on teardown races.
                    Response::error(ErrorKind::ShuttingDown, "daemon stopped")
                }),
                Err(AdmissionError::Full) => {
                    metric_counter!("lgen.serve.rejected").inc();
                    Response::error(ErrorKind::Busy, "admission queue full, retry")
                }
                Err(AdmissionError::Closed) => {
                    Response::error(ErrorKind::ShuttingDown, "daemon draining")
                }
            }
        }
    };
    let wall_us = t.elapsed().as_micros() as u64;
    metric_histogram!("lgen.serve.request_wall_us").record(wall_us);
    if span.is_recording() {
        span.attr("ok", resp.is_ok());
        if let Some(outcome) = resp.headers.get("outcome") {
            span.attr("outcome", outcome);
        }
    }
    if resp.error.is_some() {
        metric_counter!("lgen.serve.errors").inc();
    }
    resp.with("wall_us", wall_us)
}

fn worker_loop(engine: &Arc<Engine>) {
    while let Some((_tenant, job)) = engine.queue.pop() {
        // Contain per-request panics (injected or real): the requester
        // gets `error internal`; the daemon keeps serving. Poison-safe
        // locks everywhere below make this sound.
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            handle_compile(engine, &job.req, job.seq)
        }));
        let resp = match outcome {
            Ok(resp) => resp,
            Err(cause) => {
                metric_counter!("lgen.serve.panics_contained").inc();
                let what = cause
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| cause.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "panic".to_string());
                Response::error(ErrorKind::Internal, format!("request panicked: {what}"))
            }
        };
        // A dropped receiver (client gone) is fine; the work is cached.
        let _ = job.reply.send(resp);
    }
}

/// Compiles (or tunes) the LL program in `req`, coalescing with identical
/// in-flight requests and answering from the cache tiers.
fn handle_compile(engine: &Arc<Engine>, req: &Request, seq: u64) -> Response {
    use lgen_core::FaultKind;
    match engine.faults.kind(seq as usize) {
        Some(FaultKind::Panic) => panic!("injected fault: panic at request {seq}"),
        Some(FaultKind::Hang(d)) => std::thread::sleep(d),
        _ => {}
    }

    let arch = match req.target() {
        Ok(a) => a,
        Err(e) => return Response::error(ErrorKind::BadRequest, e.to_string()),
    };
    let variant = match req.headers.get("variant").map(String::as_str) {
        None | Some("full") => Variant::Full,
        Some("base") => Variant::Base,
        Some("align") => Variant::Align,
        Some("mvm") => Variant::Mvm,
        Some(other) => {
            return Response::error(ErrorKind::BadRequest, format!("unknown variant {other:?}"))
        }
    };
    let mut cfg = CompileConfig::variant(arch, variant);
    if let Some(spec) = req.headers.get("passes") {
        match spec.parse() {
            Ok(p) => cfg = cfg.with_passes(p),
            Err(e) => {
                return Response::error(ErrorKind::BadRequest, format!("bad passes spec: {e}"))
            }
        }
    }
    let program = match lgen_ll::parse_program(&req.body) {
        Ok(p) => p,
        Err(e) => return Response::error(ErrorKind::CompileFailed, e.to_string()),
    };
    let name = req.kernel_name().to_string();
    let tune = req.verb == Verb::Tune;

    // The coalescing identity is the *request*, not the parsed structures:
    // stable across processes (it also keys the replay harness's
    // duplicate accounting).
    let fp = stable_fingerprint(&(
        tune,
        &name,
        format!("{arch:?}"),
        req.headers.get("variant"),
        req.headers.get("passes"),
        &req.body,
    ));

    let cache = engine.cache.clone();
    let cfg2 = cfg.clone();
    let program2 = program.clone();
    let name2 = name.clone();
    let (result, coalesced) = engine.coalescer.run(fp, move || {
        if tune {
            // Bounded joint genome tune (deterministic seed); the winner's
            // kernel is cached under its genome so the follow-up compile
            // below is a memory hit.
            let tuned = ProgramTuner::new(cfg2.clone())
                .with_cache(cache.clone())
                .with_mixed_samples(4)
                .with_prune(PrunePolicy::TopK(4))
                .tune(&program2, &name2);
            cache
                .try_get_or_compile_program_outcome(&program2, &name2, &cfg2, Some(&tuned.policies))
                .map_err(|e| e.to_string())
                .map(|(k, outcome)| CompileReply {
                    c_source: lgen_cir::unparse::unparse(&k, cfg2.arch.vector_isa()),
                    fingerprint: fp,
                    outcome,
                    flops: k.flops,
                })
        } else {
            cache
                .try_get_or_compile_program_outcome(&program2, &name2, &cfg2, None)
                .map_err(|e| e.to_string())
                .map(|(k, outcome)| CompileReply {
                    c_source: lgen_cir::unparse::unparse(&k, cfg2.arch.vector_isa()),
                    fingerprint: fp,
                    outcome,
                    flops: k.flops,
                })
        }
    });

    match result {
        Ok(reply) => {
            let outcome = if coalesced {
                metric_counter!("lgen.serve.coalesced").inc();
                "coalesced"
            } else {
                match reply.outcome {
                    CompileOutcome::Memory => {
                        metric_counter!("lgen.serve.hits").inc();
                        "memory"
                    }
                    CompileOutcome::Disk => {
                        metric_counter!("lgen.serve.hits").inc();
                        "disk"
                    }
                    CompileOutcome::Compiled => {
                        metric_counter!("lgen.serve.compiled").inc();
                        "compiled"
                    }
                }
            };
            Response::ok(reply.c_source)
                .with("outcome", outcome)
                .with("fingerprint", format!("{:016x}", reply.fingerprint))
                .with("flops", reply.flops)
        }
        Err(msg) => Response::error(ErrorKind::CompileFailed, msg),
    }
}

fn stats_response(engine: &Arc<Engine>) -> Response {
    let mut body = String::new();
    body.push_str(&lgen_telemetry::format_metrics(
        &lgen_telemetry::registry().snapshot(),
    ));
    body.push_str(&format!("cache: {}\n", engine.cache.stats()));
    if let Some(disk) = &engine.disk {
        body.push_str(&format!("disk: {}\n", disk.stats()));
    }
    body.push_str(&format!(
        "coalesced: {} led: {} in_flight: {}\n",
        engine.coalescer.coalesced(),
        engine.coalescer.led(),
        engine.coalescer.in_flight()
    ));
    body.push_str(&format!("queue_depth: {}\n", engine.queue.depth()));
    Response::ok(body)
}
