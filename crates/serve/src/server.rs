//! `lgend`: the long-running compile daemon.
//!
//! The daemon stacks the pieces the engine already has into a service
//! (ROADMAP item 1):
//!
//! ```text
//! UnixListener ── per-connection reader threads
//!        │  parse frame → Request          (proto.rs)
//!        ▼
//! FairQueue (bounded, per-tenant round-robin)      (lgen-mediator)
//!        │  Full → "busy" response, no queueing
//!        ▼
//! worker pool ── Coalescer (identical fingerprints compile once)
//!        │            │
//!        ▼            ▼
//! KernelCache (memory) → DiskCache (persistent, content-addressed)
//! ```
//!
//! Every compile answer reports which tier served it (`outcome:` header);
//! the traffic-replay harness aggregates those instead of scraping global
//! counters, so several daemons can share one process in tests.
//!
//! **Failure containment.** Each request runs under `catch_unwind`: a
//! panicking candidate produces an `error internal` response for exactly
//! that request and nothing else — the shard maps, memo, metrics registry,
//! span buffer, and coalescing map all swallow lock poisoning (see
//! DESIGN.md "The compile service"), and followers of a panicked
//! coalescing leader retry on their own. `LGEN_FAULTS=panic@i,...`
//! injects such panics by *request sequence number* for the regression
//! tests and the CI replay run.
//!
//! **Shutdown.** A `shutdown` request (there is no signal handling — the
//! accept loop polls a flag) answers `ok`, closes admission, drains the
//! queue, joins the workers, and removes the socket file. In-flight
//! requests finish; later requests get `error shutting-down`.

use crate::proto::{read_frame, write_frame, ErrorKind, ProtoError, Request, Response, Verb};
use crate::recorder::{CacheTier, CoalesceRole, FlightRecord, FlightRecorder};
use crate::trace::SlowTraceLog;
use lgen_core::{
    stable_fingerprint, Coalescer, CompileConfig, CompileOutcome, DiskCache, FaultPlan,
    KernelCache, ProgramTuner, PrunePolicy, Variant,
};
use lgen_mediator::{AdmissionError, FairQueue};
use lgen_telemetry::{
    metric_counter, metric_counter_family, metric_gauge, metric_histogram, metric_histogram_family,
    Telemetry,
};
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default flight-recorder capacity (last N requests retained).
pub const DEFAULT_RECORDER_CAP: usize = 256;

/// How the daemon is wired; see the field docs for defaults.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Unix socket path to bind (stale files are replaced).
    pub socket: PathBuf,
    /// Directory for the persistent kernel cache; `None` disables the
    /// disk tier (memory-only service).
    pub cache_dir: Option<PathBuf>,
    /// Compile worker threads.
    pub workers: usize,
    /// Total admission-queue capacity across tenants.
    pub queue_capacity: usize,
    /// Flight-recorder ring capacity (last N requests).
    pub recorder_cap: usize,
    /// Tail-sampling threshold: a request whose wall time (queue wait +
    /// service) is at least this long gets its span tree appended to the
    /// slow-trace log. `None` (the default) disables slow tracing.
    pub slow_threshold: Option<Duration>,
    /// Slow-trace log path; defaults to `<socket>.slow-trace.jsonl`.
    pub slow_trace_path: Option<PathBuf>,
    /// Size bound per slow-trace file before rotation to `<path>.1`.
    pub slow_trace_max_bytes: u64,
}

impl ServeConfig {
    /// A config with `workers = 2` and `queue_capacity = 64`.
    pub fn new(socket: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            socket: socket.into(),
            cache_dir: None,
            workers: 2,
            queue_capacity: 64,
            recorder_cap: DEFAULT_RECORDER_CAP,
            slow_threshold: None,
            slow_trace_path: None,
            slow_trace_max_bytes: crate::trace::DEFAULT_MAX_BYTES,
        }
    }

    /// Enables the persistent disk tier under `dir`.
    #[must_use]
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> ServeConfig {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Overrides the worker count (min 1).
    #[must_use]
    pub fn with_workers(mut self, n: usize) -> ServeConfig {
        self.workers = n.max(1);
        self
    }

    /// Overrides the admission-queue capacity (min 1).
    #[must_use]
    pub fn with_queue_capacity(mut self, n: usize) -> ServeConfig {
        self.queue_capacity = n.max(1);
        self
    }

    /// Overrides the flight-recorder capacity (min 1).
    #[must_use]
    pub fn with_recorder_cap(mut self, n: usize) -> ServeConfig {
        self.recorder_cap = n.max(1);
        self
    }

    /// Enables tail-sampled slow-request tracing at `threshold`.
    #[must_use]
    pub fn with_slow_threshold(mut self, threshold: Duration) -> ServeConfig {
        self.slow_threshold = Some(threshold);
        self
    }

    /// Overrides where the slow-trace log is written.
    #[must_use]
    pub fn with_slow_trace_path(mut self, path: impl Into<PathBuf>) -> ServeConfig {
        self.slow_trace_path = Some(path.into());
        self
    }

    /// The effective slow-trace log path.
    pub fn slow_trace_path(&self) -> PathBuf {
        self.slow_trace_path
            .clone()
            .unwrap_or_else(|| suffixed(&self.socket, ".slow-trace.jsonl"))
    }

    /// Where the flight recorder is snapshotted when a panic is
    /// contained.
    pub fn flight_dump_path(&self) -> PathBuf {
        suffixed(&self.socket, ".flight-dump.json")
    }
}

/// `<path><suffix>` without touching the extension logic of `Path`.
fn suffixed(path: &Path, suffix: &str) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(suffix);
    PathBuf::from(s)
}

/// Tail-sampling state shared by workers when `--slow-ms` is set.
struct SlowTracing {
    threshold: Duration,
    log: SlowTraceLog,
}

/// Shared state behind every connection and worker.
struct Engine {
    cache: Arc<KernelCache>,
    disk: Option<Arc<DiskCache>>,
    coalescer: Coalescer<Result<CompileReply, String>>,
    queue: FairQueue<Job>,
    faults: FaultPlan,
    /// Request sequence numbers for fault injection and spans.
    seq: AtomicU64,
    shutdown: AtomicBool,
    /// Ring of the last N request records (`dump` verb, panic snapshot).
    recorder: FlightRecorder,
    /// Tail-sampled slow-request tracing, when enabled.
    slow: Option<SlowTracing>,
    /// Where the recorder is snapshotted when a panic is contained.
    flight_dump: PathBuf,
}

/// What a worker hands back for a compile/tune request.
#[derive(Clone)]
struct CompileReply {
    c_source: String,
    fingerprint: u64,
    outcome: CompileOutcome,
    flops: u64,
}

/// One admitted request: the parsed message plus the reply channel of the
/// connection thread that accepted it.
struct Job {
    req: Request,
    seq: u64,
    reply: mpsc::Sender<Response>,
}

/// A running daemon (in-process handle). Binds on
/// [`start`](Lgend::start); serves until a `shutdown` request arrives;
/// [`join`](Lgend::join) waits for that and tears everything down.
pub struct Lgend {
    engine: Arc<Engine>,
    socket: PathBuf,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Lgend {
    /// Binds the socket, spawns the accept loop and the worker pool, and
    /// returns immediately.
    pub fn start(config: ServeConfig) -> io::Result<Lgend> {
        for name in [
            "lgen.serve.requests",
            "lgen.serve.hits",
            "lgen.serve.coalesced",
            "lgen.serve.compiled",
            "lgen.serve.rejected",
            "lgen.serve.errors",
            "lgen.serve.slow_traces",
        ] {
            lgen_telemetry::counter(name);
        }
        // Pre-registered so `stats` output (and the ci.sh zero-drop
        // assertion) always has the rows, even before any traffic.
        lgen_telemetry::gauge("lgen.trace.spans_dropped").set(0);
        lgen_telemetry::counter_family("lgen.serve.tenant_requests", &["tenant", "verb"]);
        lgen_telemetry::counter_family("lgen.serve.outcomes", &["outcome"]);
        lgen_telemetry::histogram_family("lgen.serve.queue_wait_us", &["tenant"]);
        lgen_telemetry::histogram_family("lgen.serve.service_us", &["tenant"]);
        let disk = match &config.cache_dir {
            Some(dir) => Some(Arc::new(DiskCache::open(dir)?)),
            None => None,
        };
        let mut cache = KernelCache::new();
        if let Some(d) = &disk {
            cache = cache.with_disk(d.clone());
        }
        let engine = Arc::new(Engine {
            cache: Arc::new(cache),
            disk,
            coalescer: Coalescer::new(),
            queue: FairQueue::new(config.queue_capacity),
            faults: FaultPlan::from_env(),
            seq: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            recorder: FlightRecorder::new(config.recorder_cap),
            slow: config.slow_threshold.map(|threshold| SlowTracing {
                threshold,
                log: SlowTraceLog::new(config.slow_trace_path(), config.slow_trace_max_bytes),
            }),
            flight_dump: config.flight_dump_path(),
        });

        // Replace a stale socket file from a previous (crashed) daemon;
        // a *live* daemon would still fail to... no: bind after unlink
        // always succeeds, so ownership of a path is by convention the
        // caller's problem (matching every other Unix-socket daemon).
        let _ = std::fs::remove_file(&config.socket);
        let listener = UnixListener::bind(&config.socket)?;
        listener.set_nonblocking(true)?;

        let workers = (0..config.workers)
            .map(|i| {
                let engine = engine.clone();
                std::thread::Builder::new()
                    .name(format!("lgend-worker-{i}"))
                    .spawn(move || worker_loop(&engine, i))
                    .expect("spawn worker")
            })
            .collect();
        let acceptor = {
            let engine = engine.clone();
            std::thread::Builder::new()
                .name("lgend-accept".to_string())
                .spawn(move || accept_loop(listener, &engine))
                .expect("spawn acceptor")
        };
        Ok(Lgend {
            engine,
            socket: config.socket,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The socket path the daemon is serving on.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// The kernel cache (memory tier) behind the daemon.
    pub fn cache(&self) -> &Arc<KernelCache> {
        &self.engine.cache
    }

    /// The persistent tier, when configured.
    pub fn disk(&self) -> Option<&Arc<DiskCache>> {
        self.engine.disk.as_ref()
    }

    /// The request flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.engine.recorder
    }

    /// Items currently queued for admission (this daemon only — unlike
    /// the `lgen.serve.queue_depth` gauge, which is process-global).
    pub fn queue_depth(&self) -> usize {
        self.engine.queue.depth()
    }

    /// Requests shutdown as if a `shutdown` frame had arrived.
    pub fn request_shutdown(&self) {
        self.engine.begin_shutdown();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.engine.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until the daemon has shut down (acceptor and workers
    /// joined), then removes the socket file.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let _ = std::fs::remove_file(&self.socket);
    }
}

impl Drop for Lgend {
    fn drop(&mut self) {
        // An abandoned handle still tears the daemon down cleanly.
        self.engine.begin_shutdown();
        self.join_inner();
    }
}

impl Engine {
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            self.queue.close();
        }
    }
}

fn accept_loop(listener: UnixListener, engine: &Arc<Engine>) {
    // Nonblocking accept + 20ms poll: the daemon notices a shutdown flag
    // set by any connection (or the in-process handle) without signals.
    while !engine.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let engine = engine.clone();
                let _ = std::thread::Builder::new()
                    .name("lgend-conn".to_string())
                    .spawn(move || connection_loop(stream, &engine));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => break,
        }
    }
    engine.begin_shutdown();
}

/// Serves one client connection: frames in lockstep until EOF, a protocol
/// violation (connection dropped — malformed traffic must not tie up a
/// reader thread), or daemon shutdown.
fn connection_loop(stream: UnixStream, engine: &Arc<Engine>) {
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(p) => p,
            Err(ProtoError::Io(_)) => return, // EOF or peer gone
            Err(_) => {
                // Oversized or unreadable frame: answer once, then close —
                // resynchronizing a byte stream after a bad prefix is
                // guesswork.
                metric_counter!("lgen.serve.errors").inc();
                let resp = Response::error(ErrorKind::BadRequest, "unreadable frame");
                let _ = write_frame(&mut writer, &resp.encode());
                return;
            }
        };
        let req = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                metric_counter!("lgen.serve.errors").inc();
                let resp = Response::error(ErrorKind::BadRequest, e.to_string());
                if write_frame(&mut writer, &resp.encode()).is_err() {
                    return;
                }
                continue; // framing is intact; the connection can go on
            }
        };
        let resp = dispatch(engine, req);
        let stop = resp.headers.get("closing").is_some_and(|v| v == "true");
        if write_frame(&mut writer, &resp.encode()).is_err() {
            return;
        }
        if stop {
            return;
        }
    }
}

/// Routes one request: control verbs answer inline on the connection
/// thread; compile verbs go through admission and a worker.
fn dispatch(engine: &Arc<Engine>, req: Request) -> Response {
    // The total and the per-tenant family move together, so when traffic
    // has quiesced (as in the replay harness's final stats read) the
    // by-tenant counts sum exactly to the total.
    metric_counter!("lgen.serve.requests").inc();
    metric_counter_family!("lgen.serve.tenant_requests", "tenant", "verb")
        .with(&[req.tenant(), req.verb.as_str()])
        .inc();
    let t = Instant::now();
    let mut span = lgen_telemetry::span("serve.request");
    if span.is_recording() {
        span.attr("verb", format!("{:?}", req.verb));
        span.attr("tenant", req.tenant());
    }
    let resp = match req.verb {
        Verb::Ping => Response::ok("pong"),
        Verb::Stats => {
            if req.headers.get("format").map(String::as_str) == Some("json") {
                stats_json_response(engine)
            } else {
                stats_response(engine)
            }
        }
        Verb::Dump => Response::ok(engine.recorder.to_json()),
        Verb::Shutdown => {
            engine.begin_shutdown();
            Response::ok("draining").with("closing", "true")
        }
        Verb::Compile | Verb::Tune => {
            let seq = engine.seq.fetch_add(1, Ordering::Relaxed);
            let (tx, rx) = mpsc::channel();
            let tenant = req.tenant().to_string();
            match engine.queue.push(
                &tenant,
                Job {
                    req,
                    seq,
                    reply: tx,
                },
            ) {
                Ok(()) => rx.recv().unwrap_or_else(|_| {
                    // The worker dropped the sender without replying:
                    // only possible on teardown races.
                    Response::error(ErrorKind::ShuttingDown, "daemon stopped")
                }),
                Err(AdmissionError::Full) => {
                    metric_counter!("lgen.serve.rejected").inc();
                    Response::error(ErrorKind::Busy, "admission queue full, retry")
                }
                Err(AdmissionError::Closed) => {
                    Response::error(ErrorKind::ShuttingDown, "daemon draining")
                }
            }
        }
    };
    let wall_us = t.elapsed().as_micros() as u64;
    metric_histogram!("lgen.serve.request_wall_us").record(wall_us);
    if span.is_recording() {
        span.attr("ok", resp.is_ok());
        if let Some(outcome) = resp.headers.get("outcome") {
            span.attr("outcome", outcome);
        }
    }
    let outcome_token = match (&resp.error, resp.headers.get("outcome")) {
        (Some(kind), _) => kind.as_str(),
        (None, Some(outcome)) => match outcome.as_str() {
            "memory" => "memory",
            "disk" => "disk",
            "compiled" => "compiled",
            "coalesced" => "coalesced",
            _ => "ok",
        },
        (None, None) => "ok",
    };
    metric_counter_family!("lgen.serve.outcomes", "outcome")
        .with(&[outcome_token])
        .inc();
    if resp.error.is_some() {
        metric_counter!("lgen.serve.errors").inc();
    }
    resp.with("wall_us", wall_us)
}

fn worker_loop(engine: &Arc<Engine>, worker: usize) {
    // When slow tracing is on, each worker owns a leaked always-enabled
    // collector; a scoped override routes every span the handler opens
    // into it, so one request's full span tree can be kept or discarded
    // at the end without enabling process-wide collection.
    let collector: Option<&'static Telemetry> = engine
        .slow
        .as_ref()
        .map(|_| &*Box::leak(Box::new(Telemetry::new(true))));
    while let Some((tenant, job, queue_wait)) = engine.queue.pop_timed() {
        let started = Instant::now();
        // Contain per-request panics (injected or real): the requester
        // gets `error internal`; the daemon keeps serving. Poison-safe
        // locks everywhere below make this sound.
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            // The scope guard drops on unwind too, restoring the global
            // collector for whatever this worker does next.
            let _scope = collector.map(lgen_telemetry::scoped_collector);
            let mut root = lgen_telemetry::span("serve.handle");
            if root.is_recording() {
                root.attr("verb", job.req.verb.as_str());
                root.attr("tenant", &tenant);
                root.attr("seq", job.seq);
                root.attr("queue_wait_us", queue_wait.as_micros());
            }
            handle_compile(engine, &job.req, job.seq)
        }));
        let panicked = outcome.is_err();
        let resp = match outcome {
            Ok(resp) => resp,
            Err(cause) => {
                metric_counter!("lgen.serve.panics_contained").inc();
                let what = cause
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| cause.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "panic".to_string());
                Response::error(ErrorKind::Internal, format!("request panicked: {what}"))
            }
        };
        let service = started.elapsed();
        metric_histogram_family!("lgen.serve.service_us", "tenant")
            .with(&[&tenant])
            .record(service.as_micros() as u64);

        // Tail sampling: drain the collector either way (the buffer must
        // not accumulate across requests); keep the tree only when the
        // request's wall time crossed the threshold.
        if let (Some(slow), Some(col)) = (&engine.slow, collector) {
            let spans = col.drain();
            if queue_wait + service >= slow.threshold {
                metric_counter!("lgen.serve.slow_traces").inc();
                let _ = slow.log.append(&lgen_telemetry::chrome_trace(&spans));
            }
        }

        engine.recorder.record(flight_record(
            &job, &tenant, &resp, queue_wait, service, worker,
        ));
        if panicked {
            // Preserve the requests leading up to (and including) the
            // contained panic even if nobody issues a `dump`.
            let _ = std::fs::write(&engine.flight_dump, engine.recorder.to_json());
        }
        // A dropped receiver (client gone) is fine; the work is cached.
        let _ = job.reply.send(resp);
    }
}

/// Builds the flight record for one finished request from its response.
fn flight_record(
    job: &Job,
    tenant: &str,
    resp: &Response,
    queue_wait: Duration,
    service: Duration,
    worker: usize,
) -> FlightRecord {
    let outcome_header = resp.headers.get("outcome").map(String::as_str);
    let (tier, role) = match outcome_header {
        Some("memory") => (CacheTier::Memory, CoalesceRole::Leader),
        Some("disk") => (CacheTier::Disk, CoalesceRole::Leader),
        Some("compiled") => (CacheTier::Compiled, CoalesceRole::Leader),
        Some("coalesced") => (CacheTier::None, CoalesceRole::Follower),
        _ => (CacheTier::None, CoalesceRole::Leader),
    };
    let outcome = match &resp.error {
        Some(kind) => kind.as_str().to_string(),
        None => outcome_header.unwrap_or("ok").to_string(),
    };
    let fingerprint = resp
        .headers
        .get("fingerprint")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .unwrap_or(0);
    FlightRecord {
        seq: job.seq,
        tenant: tenant.to_string(),
        verb: job.req.verb.as_str(),
        fingerprint,
        tier,
        role,
        queue_wait_ns: queue_wait.as_nanos() as u64,
        service_ns: service.as_nanos() as u64,
        outcome,
        worker,
    }
}

/// Compiles (or tunes) the LL program in `req`, coalescing with identical
/// in-flight requests and answering from the cache tiers.
fn handle_compile(engine: &Arc<Engine>, req: &Request, seq: u64) -> Response {
    use lgen_core::FaultKind;
    match engine.faults.kind(seq as usize) {
        Some(FaultKind::Panic) => panic!("injected fault: panic at request {seq}"),
        Some(FaultKind::Hang(d)) => std::thread::sleep(d),
        _ => {}
    }

    let arch = match req.target() {
        Ok(a) => a,
        Err(e) => return Response::error(ErrorKind::BadRequest, e.to_string()),
    };
    let variant = match req.headers.get("variant").map(String::as_str) {
        None | Some("full") => Variant::Full,
        Some("base") => Variant::Base,
        Some("align") => Variant::Align,
        Some("mvm") => Variant::Mvm,
        Some(other) => {
            return Response::error(ErrorKind::BadRequest, format!("unknown variant {other:?}"))
        }
    };
    let mut cfg = CompileConfig::variant(arch, variant);
    if let Some(spec) = req.headers.get("passes") {
        match spec.parse() {
            Ok(p) => cfg = cfg.with_passes(p),
            Err(e) => {
                return Response::error(ErrorKind::BadRequest, format!("bad passes spec: {e}"))
            }
        }
    }
    let program = match lgen_ll::parse_program(&req.body) {
        Ok(p) => p,
        Err(e) => return Response::error(ErrorKind::CompileFailed, e.to_string()),
    };
    let name = req.kernel_name().to_string();
    let tune = req.verb == Verb::Tune;

    // The coalescing identity is the *request*, not the parsed structures:
    // stable across processes (it also keys the replay harness's
    // duplicate accounting).
    let fp = stable_fingerprint(&(
        tune,
        &name,
        format!("{arch:?}"),
        req.headers.get("variant"),
        req.headers.get("passes"),
        &req.body,
    ));

    let cache = engine.cache.clone();
    let cfg2 = cfg.clone();
    let program2 = program.clone();
    let name2 = name.clone();
    let (result, coalesced) = engine.coalescer.run(fp, move || {
        if tune {
            // Bounded joint genome tune (deterministic seed); the winner's
            // kernel is cached under its genome so the follow-up compile
            // below is a memory hit.
            let tuned = ProgramTuner::new(cfg2.clone())
                .with_cache(cache.clone())
                .with_mixed_samples(4)
                .with_prune(PrunePolicy::TopK(4))
                .tune(&program2, &name2);
            cache
                .try_get_or_compile_program_outcome(&program2, &name2, &cfg2, Some(&tuned.policies))
                .map_err(|e| e.to_string())
                .map(|(k, outcome)| CompileReply {
                    c_source: lgen_cir::unparse::unparse(&k, cfg2.arch.vector_isa()),
                    fingerprint: fp,
                    outcome,
                    flops: k.flops,
                })
        } else {
            cache
                .try_get_or_compile_program_outcome(&program2, &name2, &cfg2, None)
                .map_err(|e| e.to_string())
                .map(|(k, outcome)| CompileReply {
                    c_source: lgen_cir::unparse::unparse(&k, cfg2.arch.vector_isa()),
                    fingerprint: fp,
                    outcome,
                    flops: k.flops,
                })
        }
    });

    match result {
        Ok(reply) => {
            let outcome = if coalesced {
                metric_counter!("lgen.serve.coalesced").inc();
                "coalesced"
            } else {
                match reply.outcome {
                    CompileOutcome::Memory => {
                        metric_counter!("lgen.serve.hits").inc();
                        "memory"
                    }
                    CompileOutcome::Disk => {
                        metric_counter!("lgen.serve.hits").inc();
                        "disk"
                    }
                    CompileOutcome::Compiled => {
                        metric_counter!("lgen.serve.compiled").inc();
                        "compiled"
                    }
                }
            };
            Response::ok(reply.c_source)
                .with("outcome", outcome)
                .with("fingerprint", format!("{:016x}", reply.fingerprint))
                .with("flops", reply.flops)
        }
        Err(msg) => Response::error(ErrorKind::CompileFailed, msg),
    }
}

/// Mirrors the span-ring drop counter into a gauge just before a stats
/// snapshot, so silent trace truncation shows up in both report formats.
fn refresh_derived_metrics() {
    metric_gauge!("lgen.trace.spans_dropped").set(lgen_telemetry::global().dropped() as i64);
}

fn stats_response(engine: &Arc<Engine>) -> Response {
    refresh_derived_metrics();
    let mut body = String::new();
    body.push_str(&lgen_telemetry::format_metrics(
        &lgen_telemetry::registry().snapshot(),
    ));
    body.push_str(&format!("cache: {}\n", engine.cache.stats()));
    if let Some(disk) = &engine.disk {
        body.push_str(&format!("disk: {}\n", disk.stats()));
    }
    body.push_str(&format!(
        "coalesced: {} led: {} in_flight: {}\n",
        engine.coalescer.coalesced(),
        engine.coalescer.led(),
        engine.coalescer.in_flight()
    ));
    body.push_str(&format!("queue_depth: {}\n", engine.queue.depth()));
    body.push_str(&format!(
        "recorder: cap {} recorded {} dropped {}\n",
        engine.recorder.capacity(),
        engine.recorder.recorded(),
        engine.recorder.dropped()
    ));
    Response::ok(body)
}

/// The stable-order JSON stats document (the `stats` verb with
/// `format: json`; `lgen-cli stats --json`). Field order never varies:
/// `service` (totals and per-tenant/per-verb/per-outcome breakdowns),
/// `cache`, `disk`, `coalescer`, `recorder`, `slow_trace`, `telemetry`,
/// then the full `metrics` registry export.
fn stats_json_response(engine: &Arc<Engine>) -> Response {
    use lgen_telemetry::json::histogram_json;
    use std::fmt::Write as _;

    refresh_derived_metrics();
    let snap = lgen_telemetry::registry().snapshot();
    let find_counter_family = |name: &str| {
        snap.counter_families
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, f)| f)
    };
    let find_histogram_family = |name: &str| {
        snap.histogram_families
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, f)| f)
    };

    // Per-tenant totals from the {tenant, verb} family; per-verb and
    // per-outcome are straight aggregations. BTreeMaps keep key order
    // deterministic.
    let mut by_tenant: std::collections::BTreeMap<String, u64> = Default::default();
    let mut by_verb: std::collections::BTreeMap<String, u64> = Default::default();
    if let Some(fam) = find_counter_family("lgen.serve.tenant_requests") {
        for (values, count) in &fam.series {
            *by_tenant.entry(values[0].clone()).or_default() += count;
            *by_verb.entry(values[1].clone()).or_default() += count;
        }
    }
    let empty_hist = lgen_telemetry::Histogram::default().snapshot();
    let wait_fam = find_histogram_family("lgen.serve.queue_wait_us");
    let service_fam = find_histogram_family("lgen.serve.service_us");

    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };

    let mut out = String::from("{\"service\":{");
    let _ = write!(
        out,
        "\"requests_total\":{},\"queue_depth\":{},\"queue_capacity\":{},\"tenants\":{}",
        counter("lgen.serve.requests"),
        engine.queue.depth(),
        engine.queue.capacity(),
        engine.queue.tenants()
    );
    out.push_str(",\"by_tenant\":{");
    for (i, (tenant, requests)) in by_tenant.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let wait = wait_fam
            .and_then(|f| f.get(&[tenant]))
            .unwrap_or(&empty_hist);
        let service = service_fam
            .and_then(|f| f.get(&[tenant]))
            .unwrap_or(&empty_hist);
        let _ = write!(
            out,
            "{}:{{\"requests\":{},\"queue_wait_us\":{},\"service_us\":{}}}",
            json_quote(tenant),
            requests,
            histogram_json(wait),
            histogram_json(service)
        );
    }
    out.push_str("},\"by_verb\":{");
    for (i, (verb, n)) in by_verb.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_quote(verb), n);
    }
    out.push_str("},\"by_outcome\":{");
    if let Some(fam) = find_counter_family("lgen.serve.outcomes") {
        for (i, (values, n)) in fam.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_quote(&values[0]), n);
        }
    }
    out.push_str("}},");

    let _ = write!(
        out,
        "\"cache\":{},",
        json_quote(&engine.cache.stats().to_string())
    );
    match &engine.disk {
        Some(disk) => {
            let _ = write!(out, "\"disk\":{},", json_quote(&disk.stats().to_string()));
        }
        None => out.push_str("\"disk\":null,"),
    }
    let _ = write!(
        out,
        "\"coalescer\":{{\"coalesced\":{},\"led\":{},\"in_flight\":{}}},",
        engine.coalescer.coalesced(),
        engine.coalescer.led(),
        engine.coalescer.in_flight()
    );
    let _ = write!(
        out,
        "\"recorder\":{{\"cap\":{},\"recorded\":{},\"dropped\":{}}},",
        engine.recorder.capacity(),
        engine.recorder.recorded(),
        engine.recorder.dropped()
    );
    match &engine.slow {
        Some(slow) => {
            let _ = write!(
                out,
                "\"slow_trace\":{{\"enabled\":true,\"threshold_ms\":{},\"chunks\":{}}},",
                slow.threshold.as_millis(),
                slow.log.chunks()
            );
        }
        None => out.push_str("\"slow_trace\":{\"enabled\":false,\"threshold_ms\":0,\"chunks\":0},"),
    }
    let _ = write!(
        out,
        "\"telemetry\":{{\"spans_dropped\":{},\"registry_size\":{}}},",
        lgen_telemetry::global().dropped(),
        snap.registry_size
    );
    let _ = write!(out, "\"metrics\":{}}}", lgen_telemetry::metrics_json(&snap));
    Response::ok(out)
}

/// Minimal JSON string quoting for stats fields (tenant names, cache
/// report lines).
fn json_quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
