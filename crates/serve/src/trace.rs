//! Tail-sampled slow-request trace log: size-bounded, rotating, JSONL.
//!
//! When `lgend` runs with `--slow-ms` and a request's wall time crosses
//! the threshold, the request's full span tree (captured by a per-worker
//! scoped collector — see `lgen_telemetry::scoped_collector`) is rendered
//! with [`lgen_telemetry::chrome_trace`] and appended here as **one line
//! per slow request**. Each line is a complete chrome-trace document, so
//! any single line can be cut out and dropped into Perfetto; the replay
//! harness and ci.sh count lines to assert "exactly one slow chunk".
//!
//! **Rotation.** Before an append would push the file past `max_bytes`,
//! the file is renamed to `<path>.1` (replacing any previous `.1`) and a
//! fresh file is started — at most two files (~2×`max_bytes`) ever exist,
//! so a misconfigured threshold cannot fill the disk.

use std::fs::OpenOptions;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Default size bound per trace file (4 MiB).
pub const DEFAULT_MAX_BYTES: u64 = 4 << 20;

/// An append-only, size-bounded, rotating trace log (see module docs).
pub struct SlowTraceLog {
    path: PathBuf,
    max_bytes: u64,
    /// Serializes append+rotate; writers are already off the hot path
    /// (they just crossed a multi-millisecond threshold).
    lock: Mutex<()>,
    chunks: AtomicU64,
}

impl SlowTraceLog {
    /// A log writing to `path`, rotating to `<path>.1` at `max_bytes`.
    pub fn new(path: impl Into<PathBuf>, max_bytes: u64) -> SlowTraceLog {
        SlowTraceLog {
            path: path.into(),
            max_bytes: max_bytes.max(1),
            lock: Mutex::new(()),
            chunks: AtomicU64::new(0),
        }
    }

    /// Where the current file lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Where rotated content goes.
    pub fn rotated_path(&self) -> PathBuf {
        let mut s = self.path.as_os_str().to_os_string();
        s.push(".1");
        PathBuf::from(s)
    }

    /// Chunks appended by this instance (not counting pre-existing file
    /// content).
    pub fn chunks(&self) -> u64 {
        self.chunks.load(Ordering::Relaxed)
    }

    /// Appends `chunk` as one JSONL line, rotating first if the line
    /// would push the current file past the size bound.
    pub fn append(&self, chunk: &str) -> io::Result<()> {
        let _guard = self.lock.lock().unwrap_or_else(PoisonError::into_inner);
        let line_len = chunk.len() as u64 + 1;
        let current = std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0);
        if current > 0 && current + line_len > self.max_bytes {
            // Replace any previous `.1`; two files is the hard bound.
            std::fs::rename(&self.path, self.rotated_path())?;
        }
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        f.write_all(chunk.as_bytes())?;
        f.write_all(b"\n")?;
        self.chunks.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lgen-trace-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn appends_one_line_per_chunk() {
        let dir = tmpdir("append");
        let log = SlowTraceLog::new(dir.join("slow.jsonl"), 1 << 20);
        log.append("{\"traceEvents\":[]}").unwrap();
        log.append("{\"traceEvents\":[1]}").unwrap();
        let text = std::fs::read_to_string(log.path()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert_eq!(log.chunks(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotates_before_exceeding_the_bound() {
        let dir = tmpdir("rotate");
        // Bound fits one ~40-byte line but not two.
        let log = SlowTraceLog::new(dir.join("slow.jsonl"), 60);
        let chunk = "x".repeat(40);
        log.append(&chunk).unwrap();
        log.append(&chunk).unwrap();
        let current = std::fs::read_to_string(log.path()).unwrap();
        let rotated = std::fs::read_to_string(log.rotated_path()).unwrap();
        assert_eq!(current.lines().count(), 1);
        assert_eq!(rotated.lines().count(), 1);
        // A third append replaces the old `.1`; never a third file.
        log.append(&chunk).unwrap();
        assert_eq!(
            std::fs::read_to_string(log.rotated_path())
                .unwrap()
                .lines()
                .count(),
            1
        );
        assert!(std::fs::metadata(log.path()).unwrap().len() <= 60);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_single_chunk_still_lands() {
        let dir = tmpdir("oversize");
        let log = SlowTraceLog::new(dir.join("slow.jsonl"), 8);
        // Larger than the whole bound: written anyway (bound is per-file
        // best effort, one chunk is never split), rotated out next append.
        log.append("0123456789abcdef").unwrap();
        assert_eq!(
            std::fs::read_to_string(log.path()).unwrap().lines().count(),
            1
        );
        log.append("yz").unwrap();
        assert!(log.rotated_path().exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
