//! The request flight recorder: a fixed-capacity ring of the last N
//! per-request records.
//!
//! The daemon keeps one [`FlightRecorder`] and appends a [`FlightRecord`]
//! after every compile/tune request — sequence number, tenant, verb,
//! fingerprint, which cache tier answered, the coalesce role, queue-wait
//! and service nanoseconds, outcome token, and worker id. The ring is
//! dumped on demand via the `dump` protocol verb (rendered by `lgen-cli
//! tail`) and snapshotted to disk automatically when a worker panic is
//! contained, so the requests leading up to a crash are preserved even
//! when nobody was watching.
//!
//! **Never blocks the hot path.** A writer claims a slot index with one
//! `fetch_add` and then `try_lock`s that slot: if a (much slower) dump is
//! holding it, the record is counted as dropped instead of making the
//! worker wait. Readers lock slot-by-slot, so a dump sees each record
//! atomically but the ring as a whole is only causally consistent — fine
//! for a diagnostic tail.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Which cache tier satisfied a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheTier {
    /// In-memory kernel cache.
    Memory,
    /// Persistent disk cache.
    Disk,
    /// Ran the compile pipeline.
    Compiled,
    /// Not applicable (errors, follower answers carry the leader's tier).
    None,
}

impl CacheTier {
    /// The token used on the wire and in dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheTier::Memory => "memory",
            CacheTier::Disk => "disk",
            CacheTier::Compiled => "compiled",
            CacheTier::None => "none",
        }
    }
}

/// How a request interacted with the coalescer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoalesceRole {
    /// Ran the compile closure for its fingerprint.
    Leader,
    /// Piggybacked on an identical in-flight compile.
    Follower,
}

impl CoalesceRole {
    /// The token used on the wire and in dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            CoalesceRole::Leader => "leader",
            CoalesceRole::Follower => "follower",
        }
    }
}

/// One request's flight record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightRecord {
    /// Daemon-wide request sequence number.
    pub seq: u64,
    /// Fairness lane the request billed to.
    pub tenant: String,
    /// `compile` or `tune`.
    pub verb: &'static str,
    /// Stable request fingerprint (0 when the request failed before
    /// fingerprinting).
    pub fingerprint: u64,
    /// Which cache tier answered.
    pub tier: CacheTier,
    /// Coalesce role.
    pub role: CoalesceRole,
    /// Nanoseconds spent queued before a worker picked the request up.
    pub queue_wait_ns: u64,
    /// Nanoseconds of worker service time (handling, excluding queue).
    pub service_ns: u64,
    /// Outcome token: `memory|disk|compiled|coalesced` or an error kind.
    pub outcome: String,
    /// Index of the worker thread that served the request.
    pub worker: usize,
}

impl FlightRecord {
    /// Renders as a single stable-field-order JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"tenant\":{},\"verb\":\"{}\",\
             \"fingerprint\":\"{:016x}\",\"tier\":\"{}\",\"role\":\"{}\",\
             \"queue_wait_ns\":{},\"service_ns\":{},\"outcome\":{},\
             \"worker\":{}}}",
            self.seq,
            json_string(&self.tenant),
            self.verb,
            self.fingerprint,
            self.tier.as_str(),
            self.role.as_str(),
            self.queue_wait_ns,
            self.service_ns,
            json_string(&self.outcome),
            self.worker
        )
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Slot content: the claim ticket that wrote it plus the record, so a
/// dump can restore arrival order across wrap-around.
type Slot = Mutex<Option<(u64, FlightRecord)>>;

/// Fixed-capacity lock-free-on-write ring of recent requests (see module
/// docs).
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    head: AtomicU64,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// A recorder retaining the last `cap` records (min 1).
    pub fn new(cap: usize) -> FlightRecorder {
        let cap = cap.max(1);
        FlightRecorder {
            slots: (0..cap).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records accepted (including ones since overwritten).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Records refused because their slot was held by a reader.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Appends one record. Claims a slot with a single `fetch_add`, then
    /// `try_lock`s it — on contention (a dump in progress) the record is
    /// dropped and counted rather than blocking the worker.
    pub fn record(&self, rec: FlightRecord) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        match slot.try_lock() {
            Ok(mut s) => {
                // A slower writer may still hold an older ticket for this
                // slot; keep whichever is newer.
                if s.as_ref().is_none_or(|(t, _)| *t < ticket) {
                    *s = Some((ticket, rec));
                }
                self.recorded.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The retained records, oldest first.
    pub fn dump(&self) -> Vec<FlightRecord> {
        let mut out: Vec<(u64, FlightRecord)> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().unwrap_or_else(PoisonError::into_inner).clone())
            .collect();
        out.sort_by_key(|(ticket, _)| *ticket);
        out.into_iter().map(|(_, rec)| rec).collect()
    }

    /// Renders the ring as stable-order JSON:
    /// `{"cap":..,"recorded":..,"dropped":..,"records":[...]}` with
    /// records oldest first.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"cap\":{},\"recorded\":{},\"dropped\":{},\"records\":[",
            self.capacity(),
            self.recorded(),
            self.dropped()
        );
        for (i, rec) in self.dump().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&rec.to_json());
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64) -> FlightRecord {
        FlightRecord {
            seq,
            tenant: format!("tenant-{}", seq % 3),
            verb: "compile",
            fingerprint: seq.wrapping_mul(0x9e37),
            tier: CacheTier::Compiled,
            role: CoalesceRole::Leader,
            queue_wait_ns: 100,
            service_ns: 2000,
            outcome: "compiled".to_string(),
            worker: 0,
        }
    }

    #[test]
    fn ring_keeps_the_last_cap_records_in_order() {
        let r = FlightRecorder::new(4);
        for seq in 0..10 {
            r.record(rec(seq));
        }
        let dump = r.dump();
        let seqs: Vec<u64> = dump.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, [6, 7, 8, 9]);
        assert_eq!(r.recorded(), 10);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.capacity(), 4);
    }

    #[test]
    fn partial_fill_dumps_only_written_slots() {
        let r = FlightRecorder::new(8);
        r.record(rec(1));
        r.record(rec(2));
        let dump = r.dump();
        assert_eq!(dump.len(), 2);
        assert_eq!(dump[0].seq, 1);
        assert_eq!(dump[1].seq, 2);
    }

    #[test]
    fn json_has_stable_fields() {
        let r = FlightRecorder::new(2);
        r.record(rec(5));
        let json = r.to_json();
        assert!(json.starts_with("{\"cap\":2,\"recorded\":1,\"dropped\":0,\"records\":["));
        assert!(json.contains("\"seq\":5"));
        assert!(json.contains("\"tenant\":\"tenant-2\""));
        assert!(json.contains("\"verb\":\"compile\""));
        assert!(json.contains("\"tier\":\"compiled\""));
        assert!(json.contains("\"role\":\"leader\""));
        assert!(json.contains("\"outcome\":\"compiled\""));
    }

    #[test]
    fn concurrent_writers_never_block_and_account_fully() {
        let r = FlightRecorder::new(64);
        std::thread::scope(|s| {
            for w in 0..8u64 {
                let r = &r;
                s.spawn(move || {
                    for i in 0..500 {
                        r.record(rec(w * 1000 + i));
                    }
                });
            }
        });
        assert_eq!(r.recorded() + r.dropped(), 4000);
        let dump = r.dump();
        assert!(dump.len() <= 64);
        // Order is by claim ticket: strictly increasing in the dump.
        let seqs: Vec<u64> = dump.iter().map(|x| x.seq).collect();
        assert!(!seqs.is_empty());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let r = FlightRecorder::new(0);
        assert_eq!(r.capacity(), 1);
        r.record(rec(1));
        assert_eq!(r.dump().len(), 1);
    }
}
