//! A deterministic traffic-replay load harness for `lgend`.
//!
//! Replays a seeded synthetic workload against a running daemon: several
//! concurrent client connections, several tenants, a controlled fraction
//! of duplicate fingerprints (the coalescing/caching signal), and a
//! controlled fraction of malformed traffic (frames that are not frames,
//! oversized announcements, requests that are not requests). The same
//! seed replays the same byte streams, so CI failures reproduce locally.
//!
//! The harness accounts per-request results from *response headers*
//! (`outcome: memory|disk|compiled|coalesced`), then fetches one
//! `stats --json` document at the end for the daemon-side view: request
//! latency quantiles, per-tenant request counts and service-time p99.
//! It also *audits* the daemon: the per-tenant counts must sum exactly
//! to the daemon's request total (labeled families and the unlabeled
//! counter move together), or replay fails. The [`ReplayReport`] renders
//! to the JSON consumed by `ci.sh` as `BENCH_serve.json`.

use crate::client::Client;
use crate::proto::{Request, Verb};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;
use std::time::Duration;

/// Workload shape; see field docs. Percentages are of total requests.
#[derive(Clone, Debug)]
pub struct ReplayConfig {
    /// Daemon socket to replay against.
    pub socket: PathBuf,
    /// Total well-formed requests to send.
    pub requests: usize,
    /// Concurrent client connections (requests are split round-robin).
    pub connections: usize,
    /// Distinct tenants cycling over requests.
    pub tenants: usize,
    /// Percent of requests that reuse an earlier request's fingerprint.
    pub duplicate_pct: usize,
    /// Percent of *additional* malformed sends (on dedicated
    /// connections, so a dropped connection never eats a real request).
    pub malformed_pct: usize,
    /// RNG seed; same seed, same workload.
    pub seed: u64,
}

impl ReplayConfig {
    /// The CI shape: 1000 requests, 4 connections, 3 tenants, 30%
    /// duplicates, 2% malformed, seed 7.
    pub fn new(socket: impl Into<PathBuf>) -> ReplayConfig {
        ReplayConfig {
            socket: socket.into(),
            requests: 1000,
            connections: 4,
            tenants: 3,
            duplicate_pct: 30,
            malformed_pct: 2,
            seed: 7,
        }
    }
}

/// What one replay run observed (client side + daemon-side quantiles).
#[derive(Clone, Debug, Default)]
pub struct ReplayReport {
    /// Well-formed requests sent.
    pub requests: usize,
    /// `ok` responses.
    pub ok: usize,
    /// `error busy` responses (admission pushback; retried once).
    pub busy: usize,
    /// Other error responses.
    pub errors: usize,
    /// Responses served from the in-memory cache.
    pub memory_hits: usize,
    /// Responses served from the persistent disk tier.
    pub disk_hits: usize,
    /// Responses that piggybacked on an identical in-flight compile.
    pub coalesced: usize,
    /// Responses that ran the pipeline.
    pub compiled: usize,
    /// Malformed sends performed.
    pub malformed_sent: usize,
    /// Malformed sends that were answered with `error bad-request`
    /// (the rest just had their connection dropped — also acceptable).
    pub malformed_answered: usize,
    /// Daemon-side p50 of `lgen.serve.request_wall_us`.
    pub p50_us: u64,
    /// Daemon-side p99 of `lgen.serve.request_wall_us`.
    pub p99_us: u64,
    /// Daemon-side total request count (includes this harness's own
    /// final `stats` request).
    pub daemon_requests_total: u64,
    /// Daemon-side per-tenant `(tenant, requests, service-time p99 µs)`,
    /// sorted by tenant name.
    pub tenants: Vec<(String, u64, u64)>,
}

impl ReplayReport {
    /// Fraction of ok responses served without running the pipeline.
    pub fn hit_rate(&self) -> f64 {
        if self.ok == 0 {
            return 0.0;
        }
        (self.memory_hits + self.disk_hits + self.coalesced) as f64 / self.ok as f64
    }

    /// Fraction of ok responses that coalesced onto an in-flight compile.
    pub fn coalesce_rate(&self) -> f64 {
        if self.ok == 0 {
            return 0.0;
        }
        self.coalesced as f64 / self.ok as f64
    }

    /// Stable JSON rendering (consumed by `ci.sh` → `BENCH_serve.json`).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"requests\": {}, \"ok\": {}, \"busy\": {}, \"errors\": {}, ",
            self.requests, self.ok, self.busy, self.errors
        );
        let _ = write!(
            s,
            "\"memory_hits\": {}, \"disk_hits\": {}, \"coalesced\": {}, \"compiled\": {}, ",
            self.memory_hits, self.disk_hits, self.coalesced, self.compiled
        );
        let _ = write!(
            s,
            "\"malformed_sent\": {}, \"malformed_answered\": {}, ",
            self.malformed_sent, self.malformed_answered
        );
        let _ = write!(
            s,
            "\"hit_rate\": {:.4}, \"coalesce_rate\": {:.4}, \"p50_us\": {}, \"p99_us\": {}, ",
            self.hit_rate(),
            self.coalesce_rate(),
            self.p50_us,
            self.p99_us
        );
        let _ = write!(
            s,
            "\"daemon_requests_total\": {}, \"tenants\": {{",
            self.daemon_requests_total
        );
        for (i, (tenant, requests, p99)) in self.tenants.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "\"{tenant}\": {{\"requests\": {requests}, \"service_p99_us\": {p99}}}"
            );
        }
        s.push_str("}}");
        s
    }
}

/// One well-formed request descriptor, fully determined by the seed.
#[derive(Clone)]
struct Shot {
    tenant: String,
    name: String,
    source: String,
}

/// The distinct program pool: small LL programs across shapes and
/// targets so compiles are quick but not identical.
fn program_pool(seed: u64) -> Vec<(String, String)> {
    let mut pool = Vec::new();
    for n in [2usize, 3, 4, 6, 8] {
        pool.push((
            format!("mvm{n}"),
            format!("A = matrix({n}, {n})\nx = vector({n})\ny = vector({n})\ny = A * x;"),
        ));
        pool.push((
            format!("axpy{n}"),
            format!("x = vector({n})\ny = vector({n})\nz = vector({n})\nz = x + y;"),
        ));
    }
    for n in [2usize, 4] {
        pool.push((
            format!("chain{n}"),
            format!(
                "A = matrix({n}, {n})\nx = vector({n})\ny = vector({n})\n\
                 t = A * x; y = A * t;"
            ),
        ));
    }
    // Seed-dependent rotation so different seeds stress different
    // first-arrival orders without changing the pool itself.
    let rot = (seed as usize) % pool.len();
    pool.rotate_left(rot);
    pool
}

/// Builds the deterministic request schedule.
fn schedule(cfg: &ReplayConfig) -> Vec<Shot> {
    let pool = program_pool(cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut shots: Vec<Shot> = Vec::with_capacity(cfg.requests);
    // Fresh fingerprints come from suffixing the kernel name with a
    // unique id; duplicates reuse an earlier shot verbatim.
    let mut fresh = 0usize;
    for i in 0..cfg.requests {
        let tenant = format!("tenant-{}", i % cfg.tenants.max(1));
        let duplicate = !shots.is_empty() && rng.gen_range(0..100) < cfg.duplicate_pct;
        if duplicate {
            let prev = &shots[rng.gen_range(0..shots.len())];
            shots.push(Shot {
                tenant,
                name: prev.name.clone(),
                source: prev.source.clone(),
            });
        } else {
            let (base, source) = &pool[fresh % pool.len()];
            shots.push(Shot {
                tenant,
                name: format!("{base}_u{fresh}"),
                source: source.clone(),
            });
            fresh += 1;
        }
    }
    shots
}

/// Malformed byte streams sent on dedicated connections.
fn malformed_payloads() -> Vec<Vec<u8>> {
    let oversized = {
        let mut v = Vec::new();
        v.extend_from_slice(&u32::MAX.to_le_bytes());
        v
    };
    let truncated = {
        // Announces 64 bytes, sends 3, hangs up.
        let mut v = Vec::new();
        v.extend_from_slice(&64u32.to_le_bytes());
        v.extend_from_slice(b"abc");
        v
    };
    let not_utf8 = {
        let payload = [0xffu8, 0xfe, 0x00, 0x9f];
        let mut v = Vec::new();
        v.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        v.extend_from_slice(&payload);
        v
    };
    let bad_verb = {
        let payload = b"frobnicate\n\n";
        let mut v = Vec::new();
        v.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        v.extend_from_slice(payload);
        v
    };
    vec![oversized, truncated, not_utf8, bad_verb]
}

/// Runs the replay. The daemon must already be serving on
/// `config.socket`.
pub fn replay(config: &ReplayConfig) -> io::Result<ReplayReport> {
    let shots = schedule(config);
    let lanes: Vec<Vec<Shot>> = {
        let mut lanes = vec![Vec::new(); config.connections.max(1)];
        for (i, s) in shots.into_iter().enumerate() {
            lanes[i % config.connections.max(1)].push(s);
        }
        lanes
    };

    let mut report = ReplayReport::default();
    let lane_reports: Vec<io::Result<ReplayReport>> = std::thread::scope(|scope| {
        let handles: Vec<_> = lanes
            .into_iter()
            .map(|lane| {
                let socket = config.socket.clone();
                scope.spawn(move || replay_lane(&socket, &lane))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for lr in lane_reports {
        let lr = lr?;
        report.requests += lr.requests;
        report.ok += lr.ok;
        report.busy += lr.busy;
        report.errors += lr.errors;
        report.memory_hits += lr.memory_hits;
        report.disk_hits += lr.disk_hits;
        report.coalesced += lr.coalesced;
        report.compiled += lr.compiled;
    }

    // Malformed traffic, each on a throwaway connection so the protocol
    // damage cannot leak into the accounted lanes.
    let n_malformed = config.requests * config.malformed_pct / 100;
    let payloads = malformed_payloads();
    for i in 0..n_malformed {
        let mut c = Client::connect_within(&config.socket, Duration::from_secs(5))?;
        // A bounded read, not an unbounded one: for a truncated frame the
        // daemon rightly waits for the rest of the announced bytes, and
        // reading forever would deadlock with it. Timing out and hanging
        // up is exactly what a broken client does.
        c.set_read_timeout(Some(Duration::from_millis(250)))?;
        report.malformed_sent += 1;
        if c.send_raw(&payloads[i % payloads.len()]).is_ok() && c.read_response().is_ok() {
            report.malformed_answered += 1;
        }
        // Dropped connections are the expected outcome for the rest.
    }

    // Daemon-side view from one `stats --json` document: latency
    // quantiles, per-tenant counts and service p99 — and the audit that
    // the per-tenant labeled counters sum exactly to the daemon's
    // unlabeled request total (the stats request itself bumps both
    // before snapshotting, so a quiesced daemon must balance).
    let mut c = Client::connect_within(&config.socket, Duration::from_secs(5))?;
    let stats = c
        .stats_json()
        .map_err(|e| io::Error::other(e.to_string()))?;
    audit_stats_json(&stats.body, &mut report)?;
    Ok(report)
}

/// Parses the daemon's `stats --json` body into `report` and performs
/// the per-tenant accounting audit. Field order in the document is a
/// stable contract (see `server::stats_json_response`), which is what
/// lets this scan by key without a JSON parser.
fn audit_stats_json(body: &str, report: &mut ReplayReport) -> io::Result<()> {
    let wall = json_section(body, "\"lgen.serve.request_wall_us\":{")
        .ok_or_else(|| io::Error::other("stats json: missing request_wall_us histogram"))?;
    report.p50_us = json_u64(wall, "\"p50\":").unwrap_or(0);
    report.p99_us = json_u64(wall, "\"p99\":").unwrap_or(0);
    report.daemon_requests_total = json_u64(body, "\"requests_total\":")
        .ok_or_else(|| io::Error::other("stats json: missing requests_total"))?;

    let by_tenant = json_section(body, "\"by_tenant\":{")
        .ok_or_else(|| io::Error::other("stats json: missing by_tenant"))?;
    let mut rest = by_tenant;
    let mut tenant_sum = 0u64;
    while let Some(open) = rest.find('"') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('"') else { break };
        let tenant = after[..close].to_string();
        let obj_start = match after.find(":{") {
            Some(p) => p + 2,
            None => break,
        };
        let Some(section) = json_section(after, ":{") else {
            break;
        };
        let requests = json_u64(section, "\"requests\":").unwrap_or(0);
        let p99 = json_section(section, "\"service_us\":{")
            .and_then(|h| json_u64(h, "\"p99\":"))
            .unwrap_or(0);
        tenant_sum += requests;
        report.tenants.push((tenant, requests, p99));
        // Hop past this tenant's whole object (including its closing
        // brace) before scanning for the next tenant name.
        rest = &after[obj_start + section.len() + 1..];
    }
    report.tenants.sort();

    if tenant_sum != report.daemon_requests_total {
        return Err(io::Error::other(format!(
            "stats json audit: per-tenant requests sum to {tenant_sum} \
             but requests_total is {} — labeled and unlabeled counters diverged",
            report.daemon_requests_total
        )));
    }
    Ok(())
}

/// Finds `marker` (which must end in `{`) and returns the text of the
/// balanced `{...}` object that starts there, braces excluded.
fn json_section<'a>(s: &'a str, marker: &str) -> Option<&'a str> {
    debug_assert!(marker.ends_with('{'));
    let start = s.find(marker)? + marker.len();
    let mut depth = 1usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, b) in s[start..].bytes().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_str => escaped = true,
            b'"' => in_str = !in_str,
            b'{' if !in_str => depth += 1,
            b'}' if !in_str => {
                depth -= 1;
                if depth == 0 {
                    return Some(&s[start..start + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Parses the unsigned integer immediately following the first
/// occurrence of `key` (e.g. `"\"p99\":"`).
fn json_u64(s: &str, key: &str) -> Option<u64> {
    let at = s.find(key)? + key.len();
    let digits: String = s[at..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Replays one connection's shots in order, retrying `busy` once after a
/// short backoff (admission pushback is part of the contract, not a
/// failure).
fn replay_lane(socket: &PathBuf, lane: &[Shot]) -> io::Result<ReplayReport> {
    let mut report = ReplayReport::default();
    if lane.is_empty() {
        return Ok(report);
    }
    let mut client = Client::connect_within(socket, Duration::from_secs(5))?;
    for shot in lane {
        report.requests += 1;
        let req = Request::new(Verb::Compile)
            .with("tenant", &shot.tenant)
            .with("name", &shot.name)
            .with_body(&shot.source);
        let mut resp = client
            .request(&req)
            .map_err(|e| io::Error::other(e.to_string()))?;
        if resp.error == Some(crate::proto::ErrorKind::Busy) {
            report.busy += 1;
            std::thread::sleep(Duration::from_millis(5));
            resp = client
                .request(&req)
                .map_err(|e| io::Error::other(e.to_string()))?;
        }
        if resp.is_ok() {
            report.ok += 1;
            match resp.headers.get("outcome").map(String::as_str) {
                Some("memory") => report.memory_hits += 1,
                Some("disk") => report.disk_hits += 1,
                Some("coalesced") => report.coalesced += 1,
                Some("compiled") => report.compiled += 1,
                _ => {}
            }
        } else {
            report.errors += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_duplicate_heavy() {
        let cfg = ReplayConfig {
            socket: PathBuf::from("/nonexistent"),
            requests: 500,
            connections: 4,
            tenants: 3,
            duplicate_pct: 30,
            malformed_pct: 2,
            seed: 7,
        };
        let a = schedule(&cfg);
        let b = schedule(&cfg);
        assert_eq!(a.len(), 500);
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.name == y.name && x.source == y.source && x.tenant == y.tenant));
        // Duplicate fraction lands near the configured 30%.
        let mut seen = std::collections::HashSet::new();
        let dups = a.iter().filter(|s| !seen.insert(s.name.clone())).count();
        assert!(
            (20..=45).contains(&(dups * 100 / a.len())),
            "duplicate fraction {dups}/{} off target",
            a.len()
        );
        // All tenants participate.
        let tenants: std::collections::HashSet<_> = a.iter().map(|s| &s.tenant).collect();
        assert_eq!(tenants.len(), 3);
    }

    #[test]
    fn report_json_has_the_ci_contract_keys() {
        let r = ReplayReport {
            requests: 10,
            ok: 9,
            memory_hits: 3,
            coalesced: 2,
            compiled: 4,
            p50_us: 40,
            p99_us: 900,
            ..Default::default()
        };
        let json = r.to_json();
        for key in [
            "\"requests\"",
            "\"hit_rate\"",
            "\"coalesce_rate\"",
            "\"p50_us\"",
            "\"p99_us\"",
            "\"compiled\"",
        ] {
            assert!(json.contains(key), "{json}");
        }
        assert!((r.hit_rate() - 5.0 / 9.0).abs() < 1e-9);
        for key in ["\"daemon_requests_total\"", "\"tenants\""] {
            assert!(json.contains(key), "{json}");
        }
    }

    /// A miniature but shape-faithful `stats --json` document.
    fn fake_stats(total: u64, a: u64, b: u64) -> String {
        format!(
            "{{\"service\":{{\"requests_total\":{total},\"queue_depth\":0,\
             \"by_tenant\":{{\
             \"tenant-a\":{{\"requests\":{a},\
             \"queue_wait_us\":{{\"p50\":1,\"p99\":2}},\
             \"service_us\":{{\"p50\":10,\"p99\":450}}}},\
             \"tenant-b\":{{\"requests\":{b},\
             \"queue_wait_us\":{{\"p50\":1,\"p99\":2}},\
             \"service_us\":{{\"p50\":11,\"p99\":900}}}}\
             }},\"by_verb\":{{}}}},\
             \"metrics\":{{\"histograms\":{{\
             \"lgen.serve.request_wall_us\":{{\"count\":{total},\"p50\":32,\"p99\":2048}}\
             }}}}}}"
        )
    }

    #[test]
    fn stats_json_audit_extracts_tenants_and_quantiles() {
        let mut report = ReplayReport::default();
        audit_stats_json(&fake_stats(10, 6, 4), &mut report).unwrap();
        assert_eq!(report.daemon_requests_total, 10);
        assert_eq!(report.p50_us, 32);
        assert_eq!(report.p99_us, 2048);
        assert_eq!(
            report.tenants,
            vec![
                ("tenant-a".to_string(), 6, 450),
                ("tenant-b".to_string(), 4, 900)
            ]
        );
    }

    #[test]
    fn stats_json_audit_rejects_diverged_tenant_counts() {
        let mut report = ReplayReport::default();
        let err = audit_stats_json(&fake_stats(11, 6, 4), &mut report).unwrap_err();
        assert!(err.to_string().contains("diverged"), "{err}");
    }

    #[test]
    fn json_section_balances_nested_braces_and_strings() {
        let s = r#"{"outer":{"inner":{"x":1},"s":"a}b{c","y":2},"tail":3}"#;
        let sec = json_section(s, "\"outer\":{").unwrap();
        assert!(sec.contains("\"y\":2"));
        assert!(!sec.contains("tail"));
        assert_eq!(json_u64(sec, "\"y\":"), Some(2));
    }
}
