//! `lgen-serve` — the `lgend` compile service.
//!
//! A long-running daemon that compiles LL programs over a Unix-domain
//! socket, plus the matching blocking client and a deterministic
//! traffic-replay load harness. The daemon stacks the pieces the rest
//! of the workspace provides:
//!
//! - **Protocol** ([`proto`]): length-prefixed frames carrying a small
//!   text message (verb line, `key: value` headers, body) — requests
//!   for `compile`/`tune`/`stats`/`ping`/`shutdown`.
//! - **Admission** ([`lgen_mediator::FairQueue`]): a bounded queue with
//!   per-tenant round-robin fairness; overload answers `error busy`
//!   instead of queueing without bound.
//! - **Coalescing** ([`lgen_core::Coalescer`]): identical in-flight
//!   fingerprints compile once; waiters share the result.
//! - **Persistence** ([`lgen_core::DiskCache`]): a content-addressed
//!   on-disk kernel cache (checksummed, write-temp-then-rename,
//!   corrupt entries quarantined) so a restarted daemon starts warm.
//! - **Telemetry** ([`lgen_telemetry`]): queue-depth gauge, per-request
//!   spans, and hit/coalesced/compiled counters; `stats` responses
//!   render the live registry.
//!
//! See `DESIGN.md` ("The compile service") for the protocol and cache
//! layout in detail, and `src/bin/lgend.rs` / `src/bin/lgen-cli.rs` for
//! the command-line entry points.

pub mod client;
pub mod proto;
pub mod recorder;
pub mod replay;
pub mod server;
pub mod trace;

pub use client::Client;
pub use proto::{ErrorKind, ProtoError, Request, Response, Verb, MAX_FRAME};
pub use recorder::{CacheTier, CoalesceRole, FlightRecord, FlightRecorder};
pub use replay::{replay, ReplayConfig, ReplayReport};
pub use server::{Lgend, ServeConfig, DEFAULT_RECORDER_CAP};
pub use trace::SlowTraceLog;
