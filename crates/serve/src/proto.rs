//! The `lgend` wire protocol: length-prefixed frames over a Unix socket.
//!
//! A connection carries a sequence of request/response exchanges in
//! lockstep (no pipelining — the client waits for each response). Each
//! direction uses the same **frame** format:
//!
//! ```text
//! [u32 LE payload length][payload bytes]
//! ```
//!
//! A frame longer than [`MAX_FRAME`] is a protocol error and the server
//! closes the connection — the length prefix is attacker-controlled input
//! and must never size an allocation unchecked.
//!
//! The payload is text, structured like a minimal HTTP/1 message:
//!
//! ```text
//! <verb line>\n
//! <key>: <value>\n
//! ...\n
//! \n
//! <body: LL program source (requests) / C source or report (responses)>
//! ```
//!
//! Request verbs are `compile`, `tune`, `stats`, `dump`, `ping`, and
//! `shutdown`; response verb lines are `ok` or `error <kind>` where
//! `kind` ∈ {`busy`, `bad-request`, `compile-failed`, `shutting-down`,
//! `internal`}. Unknown header keys are ignored on both sides so the
//! format can grow without breaking older peers.
//!
//! `stats` with a `format: json` header answers with the stable-order
//! JSON stats document instead of the text report; `dump` answers with
//! the flight recorder's JSON (`lgen-cli tail` renders it).
//!
//! Header semantics (requests): `tenant` names the fairness lane
//! (default `anon`), `name` the kernel symbol, `target` the ISA
//! (`atom|cortex-a8|cortex-a9|arm1176`), `variant` the paper config
//! (`base|align|mvm|full`), `passes` an optional pass-pipeline spec.
//! `compile` compiles the body as an LL program; `tune` does the same but
//! autotunes the unroll genome first (bounded, deterministic seed).
//! Responses carry `fingerprint`, `outcome`
//! (`memory|disk|compiled|coalesced`), and `wall_us` so clients and the
//! replay harness can account hits without scraping global metrics.

use lgen_isa::Microarch;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};

/// Hard cap on a frame payload (1 MiB): larger LL programs than this are
/// far outside the paper's problem sizes, and the prefix must not be able
/// to size an unchecked allocation.
pub const MAX_FRAME: usize = 1 << 20;

/// Request verbs the daemon understands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verb {
    /// Compile the LL program in the body; respond with the C source.
    Compile,
    /// Compile with a bounded joint unroll-genome autotune first.
    Tune,
    /// Respond with a metrics/cache report (no body in the request).
    /// A `format: json` header selects the stable-order JSON document.
    Stats,
    /// Respond with the flight recorder's retained request records
    /// (JSON body; see `lgen_serve::recorder`).
    Dump,
    /// Liveness probe; echoes back.
    Ping,
    /// Drain and stop the daemon.
    Shutdown,
}

impl Verb {
    fn parse(s: &str) -> Option<Verb> {
        Some(match s {
            "compile" => Verb::Compile,
            "tune" => Verb::Tune,
            "stats" => Verb::Stats,
            "dump" => Verb::Dump,
            "ping" => Verb::Ping,
            "shutdown" => Verb::Shutdown,
            _ => return None,
        })
    }

    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            Verb::Compile => "compile",
            Verb::Tune => "tune",
            Verb::Stats => "stats",
            Verb::Dump => "dump",
            Verb::Ping => "ping",
            Verb::Shutdown => "shutdown",
        }
    }
}

/// A parsed request message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// What to do.
    pub verb: Verb,
    /// Headers in arrival order (later duplicates win on lookup).
    pub headers: BTreeMap<String, String>,
    /// LL program source for `compile`/`tune`; empty otherwise.
    pub body: String,
}

impl Request {
    /// A request with no headers or body.
    pub fn new(verb: Verb) -> Request {
        Request {
            verb,
            headers: BTreeMap::new(),
            body: String::new(),
        }
    }

    /// Sets a header (builder style).
    pub fn with(mut self, key: &str, value: &str) -> Request {
        self.headers.insert(key.to_string(), value.to_string());
        self
    }

    /// Sets the body (builder style).
    pub fn with_body(mut self, body: &str) -> Request {
        self.body = body.to_string();
        self
    }

    /// The fairness lane this request bills to.
    pub fn tenant(&self) -> &str {
        self.headers
            .get("tenant")
            .map(String::as_str)
            .unwrap_or("anon")
    }

    /// The kernel symbol name.
    pub fn kernel_name(&self) -> &str {
        self.headers
            .get("name")
            .map(String::as_str)
            .unwrap_or("kernel")
    }

    /// The target microarchitecture (`atom` if unspecified).
    pub fn target(&self) -> Result<Microarch, ProtoError> {
        match self.headers.get("target").map(String::as_str) {
            None | Some("atom") => Ok(Microarch::Atom),
            Some("cortex-a8") => Ok(Microarch::CortexA8),
            Some("cortex-a9") => Ok(Microarch::CortexA9),
            Some("arm1176") => Ok(Microarch::Arm1176),
            Some(other) => Err(ProtoError::Malformed(format!("unknown target {other:?}"))),
        }
    }

    /// Serializes into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        encode_message(self.verb.as_str(), &self.headers, &self.body)
    }

    /// Parses a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtoError> {
        let (verb_line, headers, body) = decode_message(payload)?;
        let verb = Verb::parse(&verb_line)
            .ok_or_else(|| ProtoError::Malformed(format!("unknown verb {verb_line:?}")))?;
        Ok(Request {
            verb,
            headers,
            body,
        })
    }
}

/// Error kinds a response can carry (the `error <kind>` verb line).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// Admission queue full; retry with backoff.
    Busy,
    /// The request could not be parsed or named an unknown option.
    BadRequest,
    /// The LL program failed to parse, verify, or compile.
    CompileFailed,
    /// The daemon is draining; do not retry against this socket.
    ShuttingDown,
    /// A bug: the handler panicked (contained) or an invariant broke.
    Internal,
}

impl ErrorKind {
    fn parse(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "busy" => ErrorKind::Busy,
            "bad-request" => ErrorKind::BadRequest,
            "compile-failed" => ErrorKind::CompileFailed,
            "shutting-down" => ErrorKind::ShuttingDown,
            "internal" => ErrorKind::Internal,
            _ => return None,
        })
    }

    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Busy => "busy",
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::CompileFailed => "compile-failed",
            ErrorKind::ShuttingDown => "shutting-down",
            ErrorKind::Internal => "internal",
        }
    }
}

/// A parsed response message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// `None` = ok; `Some(kind)` = error.
    pub error: Option<ErrorKind>,
    /// Headers (e.g. `outcome`, `fingerprint`, `wall_us`).
    pub headers: BTreeMap<String, String>,
    /// C source (`compile`/`tune`), report text (`stats`), or a
    /// human-readable error message.
    pub body: String,
}

impl Response {
    /// A success response with the given body.
    pub fn ok(body: impl Into<String>) -> Response {
        Response {
            error: None,
            headers: BTreeMap::new(),
            body: body.into(),
        }
    }

    /// An error response with a human-readable message body.
    pub fn error(kind: ErrorKind, message: impl Into<String>) -> Response {
        Response {
            error: Some(kind),
            headers: BTreeMap::new(),
            body: message.into(),
        }
    }

    /// Sets a header (builder style).
    pub fn with(mut self, key: &str, value: impl ToString) -> Response {
        self.headers.insert(key.to_string(), value.to_string());
        self
    }

    /// Whether this is a success.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }

    /// Serializes into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let verb = match self.error {
            None => "ok".to_string(),
            Some(kind) => format!("error {}", kind.as_str()),
        };
        encode_message(&verb, &self.headers, &self.body)
    }

    /// Parses a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response, ProtoError> {
        let (verb_line, headers, body) = decode_message(payload)?;
        let error = if verb_line == "ok" {
            None
        } else if let Some(kind) = verb_line.strip_prefix("error ") {
            Some(
                ErrorKind::parse(kind)
                    .ok_or_else(|| ProtoError::Malformed(format!("unknown error kind {kind:?}")))?,
            )
        } else {
            return Err(ProtoError::Malformed(format!(
                "bad response verb line {verb_line:?}"
            )));
        };
        Ok(Response {
            error,
            headers,
            body,
        })
    }
}

/// Why a frame or message failed to parse.
#[derive(Debug)]
pub enum ProtoError {
    /// Transport failure (includes clean EOF between frames).
    Io(io::Error),
    /// The peer announced a frame over [`MAX_FRAME`].
    Oversized(usize),
    /// The payload text violated the message grammar.
    Malformed(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o: {e}"),
            ProtoError::Oversized(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            ProtoError::Malformed(m) => write!(f, "malformed message: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame; rejects oversized announcements
/// *before* allocating.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, ProtoError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(ProtoError::Oversized(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

fn encode_message(verb: &str, headers: &BTreeMap<String, String>, body: &str) -> Vec<u8> {
    let mut text = String::with_capacity(64 + body.len());
    text.push_str(verb);
    text.push('\n');
    for (k, v) in headers {
        debug_assert!(!k.contains([':', '\n']) && !v.contains('\n'));
        text.push_str(k);
        text.push_str(": ");
        text.push_str(v);
        text.push('\n');
    }
    text.push('\n');
    text.push_str(body);
    text.into_bytes()
}

fn decode_message(
    payload: &[u8],
) -> Result<(String, BTreeMap<String, String>, String), ProtoError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ProtoError::Malformed("payload is not utf-8".to_string()))?;
    let (head, body) = match text.split_once("\n\n") {
        Some((h, b)) => (h, b),
        None => (text.strip_suffix('\n').unwrap_or(text), ""),
    };
    let mut lines = head.lines();
    let verb_line = lines
        .next()
        .filter(|l| !l.is_empty())
        .ok_or_else(|| ProtoError::Malformed("empty message".to_string()))?
        .to_string();
    let mut headers = BTreeMap::new();
    for line in lines {
        let (k, v) = line
            .split_once(':')
            .ok_or_else(|| ProtoError::Malformed(format!("header line without ':': {line:?}")))?;
        headers.insert(k.trim().to_string(), v.trim().to_string());
    }
    Ok((verb_line, headers, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_through_the_wire_format() {
        let req = Request::new(Verb::Compile)
            .with("tenant", "team-a")
            .with("name", "mvm4")
            .with("target", "cortex-a8")
            .with_body("A = matrix(4, 4)\nx = vector(4)\ny = vector(4)\ny = A * x;");
        let back = Request::decode(&req.encode()).unwrap();
        assert_eq!(req, back);
        assert_eq!(back.tenant(), "team-a");
        assert_eq!(back.kernel_name(), "mvm4");
        assert_eq!(back.target().unwrap(), Microarch::CortexA8);
    }

    #[test]
    fn response_roundtrips_including_errors() {
        let ok = Response::ok("void f(void) {}\n")
            .with("outcome", "memory")
            .with("wall_us", 12);
        assert_eq!(Response::decode(&ok.encode()).unwrap(), ok);
        let err = Response::error(ErrorKind::Busy, "queue full, retry");
        let back = Response::decode(&err.encode()).unwrap();
        assert_eq!(back.error, Some(ErrorKind::Busy));
        assert!(!back.is_ok());
        assert_eq!(back.body, "queue full, retry");
    }

    #[test]
    fn malformed_payloads_are_rejected_not_panicked() {
        for bad in [
            &b""[..],
            b"\n\n",
            b"frobnicate\n\n",
            b"ok\nheader-without-colon\n\n",
            b"error nonsense-kind\n\n",
            &[0xff, 0xfe, 0x00][..],
        ] {
            assert!(
                Request::decode(bad).is_err() || Response::decode(bad).is_err(),
                "{bad:?} must not fully parse"
            );
        }
        assert!(Request::decode(b"compile\nx\n\n").is_err());
        assert!(Request::new(Verb::Compile)
            .with("target", "pdp11")
            .target()
            .is_err());
    }

    #[test]
    fn frames_roundtrip_and_cap_oversized_announcements() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(matches!(read_frame(&mut r), Err(ProtoError::Io(_))), "eof");

        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut &huge[..]),
            Err(ProtoError::Oversized(_))
        ));
    }

    #[test]
    fn headerless_and_bodyless_messages_parse() {
        let ping = Request::new(Verb::Ping);
        let back = Request::decode(&ping.encode()).unwrap();
        assert_eq!(back.verb, Verb::Ping);
        assert!(back.body.is_empty());
        assert_eq!(back.tenant(), "anon");
    }
}
