//! Golden-file schema test for `stats --json`.
//!
//! The JSON stats document is an operational contract: `ci.sh` and the
//! replay harness scan it by key, relying on its stable field order.
//! This test pins the full document shape — every key, every nesting
//! level, in order — against a golden file, with digit runs normalized
//! to `0` so only *structure* is compared, never timings or counts.
//!
//! Re-bless after an intentional schema change:
//! `LGEN_BLESS=1 cargo test -p lgen-serve --test stats_schema`
//!
//! Runs alone in its own binary: the metrics registry is process-global
//! and the golden covers the whole export, so any other daemon in the
//! process would add series to the document.

use lgen_serve::{Client, Lgend, ServeConfig};
use std::time::Duration;

const MVM: &str = "A = matrix(4, 4)\nx = vector(4)\ny = vector(4)\ny = A * x;\n";

/// Collapses every run of ASCII digits to a single `0`, so numeric
/// values (counts, µs, byte sizes — and digits inside tenant names)
/// never make the comparison flaky.
fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut in_digits = false;
    for c in s.chars() {
        if c.is_ascii_digit() {
            if !in_digits {
                out.push('0');
            }
            in_digits = true;
        } else {
            in_digits = false;
            out.push(c);
        }
    }
    out
}

#[test]
fn stats_json_schema_matches_golden() {
    let sock = std::env::temp_dir().join(format!("lgen-stats-schema-{}.sock", std::process::id()));
    let daemon = Lgend::start(ServeConfig::new(&sock).with_workers(1)).unwrap();

    // A deterministic little workload so every document section has
    // content: two tenants, a fresh compile each, one memory hit.
    let mut c = Client::connect_within(&sock, Duration::from_secs(5)).unwrap();
    for (tenant, name) in [("tenant-a", "g0"), ("tenant-b", "g1"), ("tenant-a", "g0")] {
        let resp = c.compile(tenant, name, MVM).unwrap();
        assert!(resp.is_ok(), "{:?} {}", resp.error, resp.body);
    }

    let got = normalize(&c.stats_json().unwrap().body);
    daemon.request_shutdown();
    daemon.join();

    let path = format!(
        "{}/tests/golden/stats_schema.json",
        env!("CARGO_MANIFEST_DIR")
    );
    if std::env::var("LGEN_BLESS").is_ok() {
        std::fs::create_dir_all(format!("{}/tests/golden", env!("CARGO_MANIFEST_DIR"))).unwrap();
        std::fs::write(&path, format!("{got}\n")).unwrap();
        eprintln!("blessed {path}");
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("golden file missing — bless it with LGEN_BLESS=1 (path: {path})")
    });
    assert_eq!(
        got.trim(),
        want.trim(),
        "stats --json schema drifted from the golden; if the change is \
         intentional, re-bless with LGEN_BLESS=1"
    );
}
