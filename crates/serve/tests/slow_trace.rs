//! Tail-sampled slow-request tracing, end to end.
//!
//! `LGEN_FAULTS=hang@N:Xms` stalls the daemon's Nth request mid-flight —
//! the same injection hook the tuner's fault tests use. With slow
//! tracing armed below the hang duration, exactly that one request must
//! cross the threshold: one chrome-trace chunk lands in the slow-trace
//! log, the `stats --json` document counts one chunk, and the flight
//! recorder (the `dump` verb) holds the offending request with its
//! outsized service time.
//!
//! This lives in its own integration-test binary because `LGEN_FAULTS`
//! is read from the process environment at daemon startup; a separate
//! process keeps the fault plan from leaking into other tests.

use lgen_serve::{Client, Lgend, ServeConfig};
use std::time::Duration;

const MVM: &str = "A = matrix(4, 4)\nx = vector(4)\ny = vector(4)\ny = A * x;\n";

/// The unsigned integer right after `"key":` in `s`, starting the scan
/// at byte `from`.
fn u64_after(s: &str, key: &str, from: usize) -> Option<u64> {
    let at = s[from..].find(key)? + from + key.len();
    let digits: String = s[at..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

#[test]
fn injected_hang_yields_exactly_one_slow_trace_chunk_and_a_flight_record() {
    // Seq numbers are assigned in admission order starting at 0; stall
    // the third request for much longer than the tracing threshold.
    std::env::set_var("LGEN_FAULTS", "hang@2:800ms");
    let base = std::env::temp_dir().join(format!("lgen-slow-trace-{}", std::process::id()));
    let sock = base.with_extension("sock");
    let trace = base.with_extension("trace.jsonl");
    let _ = std::fs::remove_file(&trace);

    let daemon = Lgend::start(
        ServeConfig::new(&sock)
            .with_workers(2)
            .with_slow_threshold(Duration::from_millis(300))
            .with_slow_trace_path(&trace),
    )
    .unwrap();
    // The plan is captured at startup; clear it so nothing else in this
    // process inherits it.
    std::env::remove_var("LGEN_FAULTS");

    // Sequential requests on one connection: seqs 0..=3, seq 2 hangs.
    // Distinct names keep coalescing out of the picture.
    let mut c = Client::connect_within(&sock, Duration::from_secs(5)).unwrap();
    for i in 0..4 {
        let resp = c
            .compile("tenant-slow", &format!("slow_k{i}"), MVM)
            .unwrap();
        assert!(resp.is_ok(), "request {i}: {:?} {}", resp.error, resp.body);
    }

    // Exactly one chunk in the log — the hung request, nobody else.
    let log = std::fs::read_to_string(&trace).expect("slow-trace log was never written");
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(
        lines.len(),
        1,
        "exactly one slow-trace chunk expected, got {}:\n{log}",
        lines.len()
    );
    assert!(
        lines[0].contains("\"traceEvents\"") && lines[0].contains("serve.handle"),
        "chunk is not a chrome-trace span tree: {}",
        lines[0]
    );

    // The stats document agrees.
    let stats = c.stats_json().unwrap().body;
    assert!(
        stats.contains("\"slow_trace\":{\"enabled\":true,\"threshold_ms\":300,\"chunks\":1}"),
        "stats json slow_trace section wrong: {stats}"
    );

    // The flight recorder holds the offending request, and its service
    // time shows the injected stall.
    let dump = c.dump().unwrap().body;
    let at = dump
        .find("\"seq\":2,")
        .unwrap_or_else(|| panic!("offending seq 2 missing from flight dump: {dump}"));
    let service_ns = u64_after(&dump, "\"service_ns\":", at).unwrap();
    assert!(
        service_ns >= 700_000_000,
        "offending record should show the ~800ms stall, got {service_ns}ns"
    );

    daemon.request_shutdown();
    daemon.join();
}
