//! The replay harness's daemon-side audit, and the queue-depth gauge
//! regression test.
//!
//! `replay()` finishes by fetching one `stats --json` document and
//! asserting that the per-tenant labeled request counters sum exactly
//! to the daemon's unlabeled total — the invariant that keeps the
//! labeled families trustworthy. That audit reads *global* metrics, so
//! this test runs alone in its own binary: any concurrent daemon in the
//! same process could bump the counters between the two adjacent
//! increments and make the sums transiently diverge.
//!
//! The same replay doubles as the `lgen.serve.queue_depth` regression
//! test: after a run that includes malformed frames and connections
//! aborted mid-request, the admission gauge (and the live queue) must
//! be back to exactly zero — every error path unwinds its decrement.

use lgen_serve::{replay, Lgend, ReplayConfig, ServeConfig};

#[test]
fn replay_audit_passes_and_queue_depth_returns_to_zero() {
    let sock = std::env::temp_dir().join(format!("lgen-replay-audit-{}.sock", std::process::id()));
    let daemon = Lgend::start(ServeConfig::new(&sock).with_workers(3)).unwrap();

    let mut cfg = ReplayConfig::new(&sock);
    cfg.requests = 120;
    cfg.connections = 3;
    cfg.tenants = 3;
    cfg.malformed_pct = 10; // includes truncated frames: aborted mid-request
    let report = replay(&cfg).expect("replay failed (audit or transport)");

    assert_eq!(report.requests, 120);
    assert_eq!(report.ok + report.errors, 120, "{report:?}");
    assert!(report.malformed_sent >= 10, "{report:?}");

    // The audit already ran inside replay(); check its artifacts too.
    // The harness's own final `stats` request rides under tenant "anon",
    // so the replayed tenants appear alongside it.
    assert!(report.daemon_requests_total >= 120, "{report:?}");
    let replayed: Vec<_> = report
        .tenants
        .iter()
        .filter(|(t, _, _)| t.starts_with("tenant-"))
        .collect();
    assert_eq!(replayed.len(), 3, "{report:?}");
    let client_side: u64 = replayed.iter().map(|(_, n, _)| n).sum();
    assert_eq!(client_side, 120, "every sent request is accounted once");

    // Queue-depth regression: both the live queue and the global gauge
    // must read zero once the traffic (well-formed and malformed alike)
    // has fully drained.
    assert_eq!(daemon.queue_depth(), 0, "admission queue leaked depth");
    let snap = lgen_telemetry::registry().snapshot();
    let gauge = snap
        .gauges
        .iter()
        .find(|(n, _)| n == "lgen.serve.queue_depth")
        .map(|(_, v)| *v)
        .expect("queue_depth gauge registered");
    assert_eq!(gauge, 0, "queue_depth gauge leaked");

    daemon.request_shutdown();
    daemon.join();
}
