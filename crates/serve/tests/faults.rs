//! The lock-poisoning / panic-containment regression test.
//!
//! `LGEN_FAULTS=panic@N` makes the daemon's Nth admitted compile panic
//! mid-flight (the same fault hook the tuner uses). A panicking worker
//! must not take the service down with it: the panic is contained by
//! the worker's `catch_unwind`, every shared lock the panic unwinds
//! through must stay usable (the telemetry registry, span buffers, pass
//! stats, the coalescing map — all swallow `PoisonError` by design),
//! and every other request, concurrent or subsequent, must still be
//! answered.
//!
//! This lives in its own integration-test binary because `LGEN_FAULTS`
//! is read from the process environment at daemon startup; a separate
//! process keeps the fault plan from leaking into other tests.

use lgen_serve::{Client, ErrorKind, Lgend, ServeConfig};
use std::sync::{Arc, Barrier};
use std::time::Duration;

#[test]
fn injected_panic_poisons_nothing_and_the_service_keeps_answering() {
    // Seq numbers are assigned in admission order starting at 0; fault
    // one early request while its siblings are in flight.
    std::env::set_var("LGEN_FAULTS", "panic@1");
    let sock = std::env::temp_dir().join(format!("lgen-serve-faults-{}.sock", std::process::id()));
    let daemon = Lgend::start(ServeConfig::new(&sock).with_workers(4)).unwrap();
    // The plan is captured at startup; clear it so nothing else in this
    // process inherits it.
    std::env::remove_var("LGEN_FAULTS");

    const N: usize = 6;
    let barrier = Arc::new(Barrier::new(N));
    // Distinct kernel names → distinct fingerprints, so the panic cannot
    // hide behind coalescing and every request exercises the pipeline.
    let results: Vec<(bool, Option<ErrorKind>, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|i| {
                let sock = sock.clone();
                let barrier = barrier.clone();
                scope.spawn(move || {
                    let mut c = Client::connect_within(&sock, Duration::from_secs(5)).unwrap();
                    barrier.wait();
                    let src = "A = matrix(4, 4)\nx = vector(4)\ny = vector(4)\ny = A * x;\n";
                    let resp = c
                        .compile(&format!("t{}", i % 2), &format!("faulted_{i}"), src)
                        .expect("connection died — panic escaped containment");
                    (resp.is_ok(), resp.error, resp.body)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let failed: Vec<_> = results.iter().filter(|(ok, _, _)| !ok).collect();
    assert_eq!(
        failed.len(),
        1,
        "exactly the faulted request should fail, got {results:?}"
    );
    let (_, kind, body) = failed[0];
    assert_eq!(*kind, Some(ErrorKind::Internal));
    assert!(
        body.contains("injected fault"),
        "panic message should reach the client, got {body:?}"
    );

    // The contained panic auto-snapshotted the flight recorder to disk,
    // preserving the offending request (seq 1, answered `internal`)
    // even if nobody ever issues a `dump`.
    let dump_path = {
        let mut s = sock.clone().into_os_string();
        s.push(".flight-dump.json");
        std::path::PathBuf::from(s)
    };
    let dump = std::fs::read_to_string(&dump_path)
        .expect("contained panic should snapshot the flight recorder");
    assert!(
        dump.contains("\"seq\":1,"),
        "flight dump missing the offending request: {dump}"
    );
    assert!(
        dump.contains("\"outcome\":\"internal\""),
        "offending request should be recorded as `internal`: {dump}"
    );
    let _ = std::fs::remove_file(&dump_path);

    // The service is still healthy: new requests on new connections
    // compile fine — including a retry of a name from the faulted round.
    let mut c = Client::connect_within(&sock, Duration::from_secs(5)).unwrap();
    for name in ["after_the_fire", "faulted_1"] {
        let resp = c
            .compile(
                "t",
                name,
                "A = matrix(4, 4)\nx = vector(4)\ny = vector(4)\ny = A * x;\n",
            )
            .unwrap();
        assert!(
            resp.is_ok(),
            "daemon wedged after contained panic: {:?} {}",
            resp.error,
            resp.body
        );
    }

    daemon.request_shutdown();
    daemon.join();
}
