//! End-to-end tests for the `lgend` compile service: coalescing under
//! concurrent identical requests, warm restarts from the persistent
//! cache, corrupt-entry quarantine, and protocol-error containment.
//!
//! Each test runs its own in-process daemon on a private socket. The
//! metrics registry is process-global, so assertions go through
//! response headers (`outcome: ...`) and per-instance cache/disk stats,
//! never through global counters.

use lgen_serve::{Client, ErrorKind, Lgend, Request, ServeConfig, Verb};
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::Duration;

const MVM: &str = "A = matrix(4, 4)\nx = vector(4)\ny = vector(4)\ny = A * x;\n";

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("lgen-serve-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lgen-serve-test-{}-{tag}.sock", std::process::id()))
}

fn connect(sock: &PathBuf) -> Client {
    Client::connect_within(sock, Duration::from_secs(5)).expect("daemon not up")
}

#[test]
fn concurrent_identical_requests_compile_once() {
    let sock = socket("coalesce");
    let daemon = Lgend::start(ServeConfig::new(&sock).with_workers(4)).unwrap();

    const N: usize = 8;
    let barrier = Arc::new(Barrier::new(N));
    let outcomes: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|i| {
                let sock = sock.clone();
                let barrier = barrier.clone();
                scope.spawn(move || {
                    let mut c = connect(&sock);
                    barrier.wait();
                    let resp = c
                        .compile(&format!("tenant-{}", i % 3), "same_kernel", MVM)
                        .expect("request failed");
                    assert!(resp.is_ok(), "response was {:?}: {}", resp.error, resp.body);
                    resp.headers.get("outcome").cloned().unwrap_or_default()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let compiled = outcomes.iter().filter(|o| *o == "compiled").count();
    assert_eq!(
        compiled, 1,
        "identical fingerprints must compile exactly once, got {outcomes:?}"
    );
    // Everyone else piggybacked on the in-flight compile or hit the
    // promoted entry in memory.
    assert!(
        outcomes
            .iter()
            .all(|o| o == "compiled" || o == "coalesced" || o == "memory"),
        "unexpected outcome in {outcomes:?}"
    );
    // The daemon's own cache agrees: one pipeline run total.
    assert_eq!(daemon.cache().pass_stats().compiles(), 1);

    daemon.request_shutdown();
    daemon.join();
}

#[test]
fn restart_on_same_cache_dir_serves_from_disk() {
    let dir = tmpdir("restart");
    let sock1 = socket("restart1");

    let daemon = Lgend::start(ServeConfig::new(&sock1).with_cache_dir(&dir)).unwrap();
    let resp = connect(&sock1).compile("t", "warm_kernel", MVM).unwrap();
    assert!(resp.is_ok());
    assert_eq!(
        resp.headers.get("outcome").map(String::as_str),
        Some("compiled")
    );
    let fp = resp.headers.get("fingerprint").cloned().unwrap();
    assert_eq!(daemon.disk().unwrap().entries(), 1);
    daemon.request_shutdown();
    daemon.join();

    // A new daemon — cold in memory, warm on disk.
    let sock2 = socket("restart2");
    let daemon = Lgend::start(ServeConfig::new(&sock2).with_cache_dir(&dir)).unwrap();
    let resp = connect(&sock2).compile("t", "warm_kernel", MVM).unwrap();
    assert!(resp.is_ok());
    assert_eq!(
        resp.headers.get("outcome").map(String::as_str),
        Some("disk"),
        "restarted daemon should serve from the persistent tier"
    );
    assert_eq!(resp.headers.get("fingerprint"), Some(&fp));
    assert_eq!(daemon.disk().unwrap().stats().hits, 1);
    assert_eq!(daemon.cache().pass_stats().compiles(), 0);
    daemon.request_shutdown();
    daemon.join();
}

#[test]
fn corrupt_cache_entries_are_quarantined_and_recompiled() {
    let dir = tmpdir("corrupt");
    let sock1 = socket("corrupt1");

    let daemon = Lgend::start(ServeConfig::new(&sock1).with_cache_dir(&dir)).unwrap();
    let resp = connect(&sock1).compile("t", "fragile_kernel", MVM).unwrap();
    assert!(resp.is_ok());
    daemon.request_shutdown();
    daemon.join();

    // Flip bytes in the middle of the (checksummed) entry.
    let entry = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "lgk"))
        .expect("no persisted entry");
    let mut bytes = std::fs::read(&entry).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    bytes[mid + 1] ^= 0xff;
    std::fs::write(&entry, &bytes).unwrap();

    let sock2 = socket("corrupt2");
    let daemon = Lgend::start(ServeConfig::new(&sock2).with_cache_dir(&dir)).unwrap();
    let resp = connect(&sock2).compile("t", "fragile_kernel", MVM).unwrap();
    assert!(resp.is_ok());
    assert_eq!(
        resp.headers.get("outcome").map(String::as_str),
        Some("compiled"),
        "corrupt entry must be recompiled, not trusted"
    );
    let disk = daemon.disk().unwrap();
    assert_eq!(disk.stats().quarantined, 1);
    assert_eq!(disk.quarantine_entries(), 1);
    // The recompile re-persisted a good entry.
    assert_eq!(disk.entries(), 1);
    daemon.request_shutdown();
    daemon.join();
}

#[test]
fn protocol_and_compile_errors_do_not_wedge_the_daemon() {
    let sock = socket("errors");
    let daemon = Lgend::start(ServeConfig::new(&sock)).unwrap();

    // An unknown verb is a clean bad-request.
    let mut c = connect(&sock);
    c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    c.send_raw(&{
        let payload = b"frobnicate\n\n";
        let mut v = (payload.len() as u32).to_le_bytes().to_vec();
        v.extend_from_slice(payload);
        v
    })
    .unwrap();
    let resp = c.read_response().unwrap();
    assert_eq!(resp.error, Some(ErrorKind::BadRequest));

    // Unparseable LL is a compile-failed, not a dropped connection.
    let mut c = connect(&sock);
    let resp = c.compile("t", "bad", "y = spaghetti(").unwrap();
    assert_eq!(resp.error, Some(ErrorKind::CompileFailed));

    // A bogus target is rejected before it reaches the pipeline.
    let resp = c
        .request(
            &Request::new(Verb::Compile)
                .with("name", "k")
                .with("target", "z80")
                .with_body(MVM),
        )
        .unwrap();
    assert_eq!(resp.error, Some(ErrorKind::BadRequest));

    // ...and the same connection still compiles fine afterwards.
    let resp = c.compile("t", "fine", MVM).unwrap();
    assert!(resp.is_ok(), "daemon wedged after errors: {:?}", resp.error);

    daemon.request_shutdown();
    daemon.join();
}
