//! The C-IR instruction set and kernel container.

use crate::map::MemMap;
use lgen_absint::AffineExpr;

/// A virtual register holding up to 4 single-precision lanes.
pub type VReg = u32;

/// Index of an array declared by the kernel (parameter or local temporary).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub usize);

/// Role of a kernel array.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum ArrayKind {
    /// Read-only parameter.
    Input,
    /// Written parameter.
    Output,
    /// Parameter that is both read and written (e.g. `y` in `y = αAx + βy`).
    InOut,
    /// Kernel-local temporary (the arrays between codelets of a computation
    /// chain, Fig. 2.3 — scalar replacement removes accesses to these).
    Local,
}

impl ArrayKind {
    /// Whether the array is a kernel parameter.
    pub fn is_param(self) -> bool {
        !matches!(self, ArrayKind::Local)
    }
}

/// Declaration of a kernel array.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrayDecl {
    /// C identifier.
    pub name: String,
    /// Length in floats (excluding the safety padding added by the
    /// interpreter's memory layout).
    pub len: usize,
    /// Role.
    pub kind: ArrayKind,
}

/// Vector width of an arithmetic operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum VWidth {
    /// Scalar (lane 0 only).
    S,
    /// Doubleword — 2 lanes (NEON `d` registers, §3.4).
    D,
    /// Quadword — 4 lanes (full ν).
    Q,
}

impl VWidth {
    /// Number of active lanes.
    pub fn lanes(self) -> usize {
        match self {
            VWidth::S => 1,
            VWidth::D => 2,
            VWidth::Q => 4,
        }
    }
}

/// Vector (or scalar) arithmetic operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum VArith {
    /// Lane-wise addition.
    Add(VWidth),
    /// Lane-wise subtraction.
    Sub(VWidth),
    /// Lane-wise multiplication.
    Mul(VWidth),
    /// SSE3-style horizontal add of two vectors:
    /// `dst = [a0+a1, a2+a3, b0+b1, b2+b3]`.
    Hadd,
    /// Fused multiply-accumulate `dst += a * b` (NEON `vmla`; expands to
    /// mul+add on ISAs without FMA).
    Fma(VWidth),
    /// Multiply by a lane-broadcast scalar: `dst = a * b[lane]`.
    MulLane(VWidth, u8),
    /// FMA with a lane-broadcast scalar: `dst += a * b[lane]`.
    FmaLane(VWidth, u8),
    /// NEON pairwise add of two doubleword values:
    /// `dst = [a0+a1, b0+b1]` (used by the NEON row-reduction ν-BLAC).
    Pairwise,
}

impl VArith {
    /// Whether the destination register is also read (accumulating ops).
    pub fn reads_dst(self) -> bool {
        matches!(self, VArith::Fma(_) | VArith::FmaLane(_, _))
    }
}

/// Register moves and lane manipulations.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum VMove {
    /// `dst = a`.
    Mov,
    /// `dst = 0` (no source).
    Zero,
    /// `dst = broadcast(a[lane])`.
    Splat(u8),
    /// Four-lane select: `dst[i] = sel[i] < 4 ? a[sel[i]] : b[sel[i] - 4]`.
    Shuf([u8; 4]),
    /// `dst = a` with `dst[lane] = b[0]`.
    SetLane(u8),
    /// `dst[0] = a[lane]`, other lanes zero.
    GetLane(u8),
}

/// A C-IR instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum Inst {
    /// Generic load (§3.1): gathers the elements described by `map`,
    /// relative to `base + addr` (both in floats), into `dst`; unmapped
    /// lanes become zero.
    GLoad {
        /// Destination register.
        dst: VReg,
        /// Source array.
        arr: ArrayId,
        /// Affine address in floats, over enclosing loop variables.
        addr: AffineExpr,
        /// Offset→lane mapping.
        map: MemMap,
        /// Set by alignment detection (§3.2): the access is provably
        /// 16-byte aligned, so an aligned instruction may be used.
        aligned: bool,
    },
    /// Generic store: scatters lanes of `src` per `map`.
    GStore {
        /// Source register.
        src: VReg,
        /// Destination array.
        arr: ArrayId,
        /// Affine address in floats.
        addr: AffineExpr,
        /// Offset→lane mapping.
        map: MemMap,
        /// Set by alignment detection.
        aligned: bool,
    },
    /// `dst = op(a, b)` (or `dst op= …` for accumulating ops).
    Arith {
        /// Operation.
        op: VArith,
        /// Destination (also read when [`VArith::reads_dst`]).
        dst: VReg,
        /// First source.
        a: VReg,
        /// Second source.
        b: VReg,
    },
    /// Register move / lane manipulation.
    Move {
        /// Operation.
        op: VMove,
        /// Destination.
        dst: VReg,
        /// Primary source (ignored by `Zero`).
        a: VReg,
        /// Secondary source (used by `Shuf`, `SetLane`).
        b: VReg,
    },
    /// Bookkeeping overhead charged to the schedule without touching data:
    /// library-call dispatch, per-access address arithmetic of runtime-size
    /// ("gen") code, packing-loop control, … Used by the competitor models
    /// in `lgen-baselines`.
    Overhead {
        /// What kind of overhead.
        kind: OverheadKind,
        /// How many overhead instructions to charge.
        count: u16,
    },
    /// A counted loop; the variable is usable in nested affine addresses.
    Loop {
        /// Loop variable id (dense, kernel-wide).
        var: lgen_absint::VarId,
        /// Variable name for unparsing.
        name: String,
        /// Start value.
        start: i64,
        /// Exclusive bound.
        end: i64,
        /// Step (positive).
        step: i64,
        /// Body.
        body: Vec<Inst>,
    },
}

/// Kinds of schedule-only overhead (see [`Inst::Overhead`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum OverheadKind {
    /// Integer address arithmetic.
    Addr,
    /// A branch.
    Branch,
    /// Amortized library-call overhead (serializing).
    Call,
}

/// One alignment version of a kernel body (§3.2.4).
#[derive(Clone, Debug, PartialEq)]
pub struct KernelVersion {
    /// Required base-address offsets, in floats modulo ν, for each
    /// *parameter* array (in declaration order); `None` entries are
    /// don't-care (e.g. scalar parameters). A `None` at the outer level is
    /// the unconditional fallback version.
    pub required_offsets: Option<Vec<Option<usize>>>,
    /// The body specialized under that assumption.
    pub body: Vec<Inst>,
}

/// A compiled kernel: arrays, one or more alignment-dispatched bodies, and
/// metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct Kernel {
    /// Kernel name (C function name).
    pub name: String,
    /// Array declarations; parameters first, then locals.
    pub arrays: Vec<ArrayDecl>,
    /// Alignment versions; the last must be the unconditional fallback.
    pub versions: Vec<KernelVersion>,
    /// Number of virtual registers used.
    pub nreg: u32,
    /// Number of loop variables used.
    pub nvars: usize,
    /// Useful flops of the BLAC this kernel implements (deduced from the
    /// computation, per §5.1.4 — *not* from the instruction count).
    pub flops: u64,
}

impl Kernel {
    /// The single body of an unversioned kernel.
    ///
    /// # Panics
    ///
    /// Panics if the kernel has alignment versions.
    pub fn body(&self) -> &[Inst] {
        assert_eq!(self.versions.len(), 1, "kernel has alignment versions");
        &self.versions[0].body
    }

    /// Mutable access to the single body of an unversioned kernel.
    ///
    /// # Panics
    ///
    /// Panics if the kernel has alignment versions.
    pub fn body_mut(&mut self) -> &mut Vec<Inst> {
        assert_eq!(self.versions.len(), 1, "kernel has alignment versions");
        &mut self.versions[0].body
    }

    /// Ids of parameter arrays, in declaration order.
    pub fn param_ids(&self) -> Vec<ArrayId> {
        self.arrays
            .iter()
            .enumerate()
            .filter(|(_, d)| d.kind.is_param())
            .map(|(i, _)| ArrayId(i))
            .collect()
    }

    /// Total static instruction count across all versions (loops counted
    /// once).
    pub fn static_size(&self) -> usize {
        fn count(insts: &[Inst]) -> usize {
            insts
                .iter()
                .map(|i| match i {
                    Inst::Loop { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        self.versions.iter().map(|v| count(&v.body)).sum()
    }

    /// Applies `f` to every instruction (pre-order) in every version.
    pub fn visit_insts(&self, mut f: impl FnMut(&Inst)) {
        fn walk(insts: &[Inst], f: &mut impl FnMut(&Inst)) {
            for i in insts {
                f(i);
                if let Inst::Loop { body, .. } = i {
                    walk(body, f);
                }
            }
        }
        for v in &self.versions {
            walk(&v.body, &mut f);
        }
    }
}

/// Merges separately built single-version kernels into one runtime-
/// dispatched kernel. Used by alignment-peeling code generation (both
/// LGen's §6-style peeling and the peeled competitor models).
///
/// # Panics
///
/// Panics if the kernels disagree on their array declarations, or if the
/// last entry is not the unconditional fallback (`None` requirements).
pub fn merge_kernel_versions(kernels: Vec<(Option<Vec<Option<usize>>>, Kernel)>) -> Kernel {
    assert!(!kernels.is_empty());
    assert!(
        kernels.last().expect("non-empty").0.is_none(),
        "last version must be the fallback"
    );
    let arrays = kernels[0].1.arrays.clone();
    let name = kernels[0].1.name.clone();
    let flops = kernels[0].1.flops;
    let mut nreg = 0;
    let mut nvars = 0;
    let mut versions = Vec::with_capacity(kernels.len());
    for (req, k) in kernels {
        assert_eq!(k.arrays, arrays, "versions must declare identical arrays");
        nreg = nreg.max(k.nreg);
        nvars = nvars.max(k.nvars);
        let body = k.versions.into_iter().next().expect("single body").body;
        versions.push(KernelVersion {
            required_offsets: req,
            body,
        });
    }
    Kernel {
        name,
        arrays,
        versions,
        nreg,
        nvars,
        flops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_kernel() -> Kernel {
        Kernel {
            name: "k".into(),
            arrays: vec![
                ArrayDecl {
                    name: "x".into(),
                    len: 4,
                    kind: ArrayKind::Input,
                },
                ArrayDecl {
                    name: "y".into(),
                    len: 4,
                    kind: ArrayKind::Output,
                },
                ArrayDecl {
                    name: "t0".into(),
                    len: 4,
                    kind: ArrayKind::Local,
                },
            ],
            versions: vec![KernelVersion {
                required_offsets: None,
                body: vec![
                    Inst::GLoad {
                        dst: 0,
                        arr: ArrayId(0),
                        addr: AffineExpr::constant(0),
                        map: MemMap::horizontal(4),
                        aligned: false,
                    },
                    Inst::GStore {
                        src: 0,
                        arr: ArrayId(1),
                        addr: AffineExpr::constant(0),
                        map: MemMap::horizontal(4),
                        aligned: false,
                    },
                ],
            }],
            nreg: 1,
            nvars: 0,
            flops: 0,
        }
    }

    #[test]
    fn param_ids_exclude_locals() {
        let k = tiny_kernel();
        assert_eq!(k.param_ids(), vec![ArrayId(0), ArrayId(1)]);
    }

    #[test]
    fn static_size_counts_nested() {
        let mut k = tiny_kernel();
        let inner = k.body().to_vec();
        *k.body_mut() = vec![Inst::Loop {
            var: 0,
            name: "i".into(),
            start: 0,
            end: 8,
            step: 4,
            body: inner,
        }];
        k.nvars = 1;
        assert_eq!(k.static_size(), 3);
    }

    #[test]
    fn fma_reads_dst() {
        assert!(VArith::Fma(VWidth::Q).reads_dst());
        assert!(VArith::FmaLane(VWidth::D, 1).reads_dst());
        assert!(!VArith::Add(VWidth::Q).reads_dst());
    }

    #[test]
    fn widths() {
        assert_eq!(VWidth::S.lanes(), 1);
        assert_eq!(VWidth::D.lanes(), 2);
        assert_eq!(VWidth::Q.lanes(), 4);
    }
}
