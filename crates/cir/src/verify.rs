//! Static verification of C-IR kernels by abstract interpretation.
//!
//! The optimization passes rewrite the instruction stream with no
//! machine-checked invariants; this module closes that gap with a verifier
//! that every pass output can be run through ([`verify_kernel`]). It checks,
//! per kernel version:
//!
//! 1. **def-before-use** — a must-defined dataflow over registers (with
//!    per-lane masks) through the loop structure, including back-edges:
//!    register definitions inside a loop body persist after the loop iff
//!    the loop executes at least once, and the body is verified against its
//!    weakest (first-iteration) entry state;
//! 2. **out-of-bounds detection** — every load/store/gather/scatter address
//!    is evaluated in `lgen-absint`'s reduced Interval×Congruence product
//!    against the array's static size plus the interpreter's
//!    [`ARRAY_PAD`] contract (NEON-style "load ν, keep fewer" accesses
//!    legitimately read into the padding);
//! 3. **vector-width/lane consistency** — lane indices of
//!    `Splat`/`Shuf`/`SetLane`/`GetLane`/`MulLane`/`FmaLane` are in range
//!    and every operation reads only lanes its operands defined;
//! 4. **scalar-replacement soundness** — a surviving load from a local
//!    array must overlap a store that may have written it (if DCE or scalar
//!    replacement forwarded every defining store away but left the load
//!    behind, the abstract footprints cannot intersect and the load is
//!    reported).
//!
//! All reports are [`Diagnostic`]s carrying the version, the flat pre-order
//! instruction index, and the abstract value that triggered them. The
//! verifier is deliberately conservative in the no-false-positive
//! direction: anything the pipeline legitimately emits verifies clean, and
//! a nonempty report always indicates a genuine invariant violation.

use crate::diag::{render, render_value, Check, Diagnostic};
use crate::interp::ARRAY_PAD;
use crate::ir::{ArrayId, ArrayKind, Inst, Kernel, VArith, VMove, VReg};
use crate::map::MemMap;
use lgen_absint::interval::Bound;
use lgen_absint::{
    eval_affine, loop_index_value, AbstractDomain, AffineExpr, Interval, IntervalCongruence,
    LoopSpec, VarId,
};
use std::collections::HashMap;
use std::fmt;

/// How much verification the pass manager runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Default)]
pub enum VerifyLevel {
    /// No verification (the default).
    #[default]
    Off,
    /// Verify at pipeline boundaries only: the codegen output entering the
    /// passes, and the final kernel leaving them.
    Boundaries,
    /// Verify between every individual pass, so a failure pinpoints the
    /// exact transformation that broke an invariant (`--verify=paranoid`).
    EveryPass,
}

impl VerifyLevel {
    /// Whether any verification runs at all.
    pub fn is_enabled(self) -> bool {
        self != VerifyLevel::Off
    }

    /// Reads the `LGEN_VERIFY` environment variable: unset/`0`/`off` →
    /// [`Off`](Self::Off), `paranoid`/`every-pass` →
    /// [`EveryPass`](Self::EveryPass), anything else (`1`, `on`,
    /// `boundaries`, …) → [`Boundaries`](Self::Boundaries). This is how CI
    /// runs the examples under full verification without changing their
    /// code.
    pub fn from_env() -> Self {
        match std::env::var("LGEN_VERIFY").as_deref() {
            Err(_) | Ok("") | Ok("0") | Ok("off") => VerifyLevel::Off,
            Ok("paranoid") | Ok("every-pass") => VerifyLevel::EveryPass,
            Ok(_) => VerifyLevel::Boundaries,
        }
    }
}

/// A verification failure, pinpointing the pass after which the kernel
/// first failed.
#[derive(Clone, Debug)]
pub struct VerifyFailure {
    /// Name of the stage whose output failed ("codegen" is the pipeline
    /// input).
    pub pass: &'static str,
    /// The reports, in instruction order.
    pub diagnostics: Vec<Diagnostic>,
}

impl fmt::Display for VerifyFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kernel verification failed after `{}` ({} diagnostic(s)):\n{}",
            self.pass,
            self.diagnostics.len(),
            render(&self.diagnostics)
        )
    }
}

impl std::error::Error for VerifyFailure {}

/// Runs [`verify_kernel`] if `level` asks for a check at this point;
/// `boundary` marks pipeline entry/exit stages (checked at
/// [`VerifyLevel::Boundaries`] and up; interior stages only at
/// [`VerifyLevel::EveryPass`]).
pub fn verify_stage(
    pass: &'static str,
    kernel: &Kernel,
    level: VerifyLevel,
    boundary: bool,
) -> Result<(), VerifyFailure> {
    let run = match level {
        VerifyLevel::Off => false,
        VerifyLevel::Boundaries => boundary,
        VerifyLevel::EveryPass => true,
    };
    if !run {
        return Ok(());
    }
    let diagnostics = verify_kernel(kernel);
    if diagnostics.is_empty() {
        Ok(())
    } else {
        Err(VerifyFailure { pass, diagnostics })
    }
}

/// Statically verifies every version of `kernel`, returning all reports
/// (empty = clean).
pub fn verify_kernel(kernel: &Kernel) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if kernel.versions.is_empty() {
        diags.push(Diagnostic {
            check: Check::Structure,
            version: 0,
            inst: 0,
            opcode: "Kernel".into(),
            detail: "kernel has no versions".into(),
            array: None,
            reg: None,
            value: None,
        });
        return diags;
    }
    if kernel.versions.len() > 1 {
        let last = kernel.versions.last().expect("nonempty");
        if last.required_offsets.is_some() {
            diags.push(Diagnostic {
                check: Check::Structure,
                version: kernel.versions.len() - 1,
                inst: 0,
                opcode: "Kernel".into(),
                detail: "last version is not the unconditional fallback".into(),
                array: None,
                reg: None,
                value: None,
            });
        }
    }
    for (vi, version) in kernel.versions.iter().enumerate() {
        let mut v = Verifier {
            kernel,
            version: vi,
            idx: 0,
            env: HashMap::new(),
            regs: HashMap::new(),
            writes: HashMap::new(),
            diags: Vec::new(),
        };
        v.block(&version.body);
        diags.append(&mut v.diags);
    }
    diags
}

/// All four lanes of a ν = 4 register.
const ALL_LANES: u8 = 0b1111;

/// Mask of the low `n` lanes.
fn low_lanes(n: usize) -> u8 {
    (1u8 << n) - 1
}

/// Mask of the lanes a memory map touches.
fn map_lanes(map: &MemMap) -> u8 {
    map.entries().iter().fold(0, |m, &(_, l)| m | (1 << l))
}

/// Renders a lane mask as a comma-separated lane list (`0,2`).
fn lane_list(mask: u8) -> String {
    let lanes: Vec<String> = (0..4)
        .filter(|l| mask & (1 << l) != 0)
        .map(|l| l.to_string())
        .collect();
    lanes.join(",")
}

/// Whether an abstract index provably stays inside `[0, limit)`.
fn in_bounds(v: &IntervalCongruence, limit: i64) -> bool {
    match v.interval() {
        Interval::Bottom => true,
        iv => {
            matches!(iv.lo(), Some(Bound::Finite(lo)) if lo >= 0)
                && matches!(iv.hi(), Some(Bound::Finite(hi)) if hi < limit)
        }
    }
}

/// Flat pre-order instruction count (loop headers count as one).
fn flat_count(insts: &[Inst]) -> usize {
    insts
        .iter()
        .map(|i| match i {
            Inst::Loop { body, .. } => 1 + flat_count(body),
            _ => 1,
        })
        .sum()
}

/// Per-version verifier state.
struct Verifier<'k> {
    kernel: &'k Kernel,
    version: usize,
    /// Flat pre-order index of the next instruction.
    idx: usize,
    /// Loop variable → abstract value at the current program point.
    env: HashMap<VarId, IntervalCongruence>,
    /// Register → mask of must-defined lanes.
    regs: HashMap<VReg, u8>,
    /// Local array → abstract indices of all stores seen so far
    /// (may-written footprints).
    writes: HashMap<usize, Vec<IntervalCongruence>>,
    diags: Vec<Diagnostic>,
}

impl Verifier<'_> {
    #[allow(clippy::too_many_arguments)]
    fn report(
        &mut self,
        here: usize,
        check: Check,
        opcode: &str,
        detail: String,
        array: Option<ArrayId>,
        reg: Option<VReg>,
        value: Option<IntervalCongruence>,
    ) {
        self.diags.push(Diagnostic {
            check,
            version: self.version,
            inst: here,
            opcode: opcode.to_string(),
            detail,
            array,
            reg,
            value,
        });
    }

    /// Checks a register read of the lanes in `need`. Reads of entirely
    /// undefined registers are [`Check::UseBeforeDef`]; reads of defined
    /// registers with missing lanes are [`Check::LaneConsistency`]. Either
    /// way the register is marked defined afterwards to suppress cascading
    /// reports.
    fn use_reg(&mut self, here: usize, opcode: &str, role: &str, r: VReg, need: u8) {
        match self.regs.get(&r).copied() {
            None => {
                self.report(
                    here,
                    Check::UseBeforeDef,
                    opcode,
                    format!("register r{r} ({role}) read before definition"),
                    None,
                    Some(r),
                    None,
                );
                self.regs.insert(r, ALL_LANES);
            }
            Some(m) if m & need != need => {
                self.report(
                    here,
                    Check::LaneConsistency,
                    opcode,
                    format!(
                        "lane(s) {} of r{r} ({role}) read but never defined",
                        lane_list(need & !m)
                    ),
                    None,
                    Some(r),
                    None,
                );
                self.regs.insert(r, m | need);
            }
            Some(_) => {}
        }
    }

    /// The defined-lane mask of `r`, reporting a use-before-def if the
    /// register is entirely undefined (for mask-propagating ops like
    /// `Mov`).
    fn use_reg_any(&mut self, here: usize, opcode: &str, role: &str, r: VReg) -> u8 {
        if let Some(m) = self.regs.get(&r).copied() {
            m
        } else {
            self.use_reg(here, opcode, role, r, ALL_LANES);
            ALL_LANES
        }
    }

    fn def_reg(&mut self, r: VReg, mask: u8) {
        self.regs.insert(r, mask);
    }

    /// Reports `lane >= limit` lane indices ([`Check::LaneConsistency`]).
    fn check_lane(&mut self, here: usize, opcode: &str, lane: u8, limit: u8) -> bool {
        if lane >= limit {
            self.report(
                here,
                Check::LaneConsistency,
                opcode,
                format!("lane index {lane} out of range (< {limit})"),
                None,
                None,
                None,
            );
            false
        } else {
            true
        }
    }

    /// Evaluates an address in the current loop environment; unbound
    /// variables are reported once and treated as ⊤.
    fn eval_addr(
        &mut self,
        here: usize,
        opcode: &str,
        arr: ArrayId,
        addr: &AffineExpr,
    ) -> IntervalCongruence {
        for &(_, v) in &addr.terms {
            if !self.env.contains_key(&v) {
                self.report(
                    here,
                    Check::Structure,
                    opcode,
                    format!("address references loop variable i{v} outside its loop"),
                    Some(arr),
                    None,
                    None,
                );
            }
        }
        eval_affine(addr, |v| {
            self.env
                .get(&v)
                .copied()
                .unwrap_or_else(IntervalCongruence::top)
        })
    }

    /// Bounds-checks one access and returns the abstract index of every map
    /// entry. The in-bounds region is `[0, len + ARRAY_PAD)` — exactly the
    /// interpreter's contract (partial vector accesses legitimately read
    /// the safety padding). At most one diagnostic per access.
    fn check_access(
        &mut self,
        here: usize,
        opcode: &str,
        verb: &str,
        arr: ArrayId,
        addr: &AffineExpr,
        map: &MemMap,
    ) -> Vec<IntervalCongruence> {
        let base = self.eval_addr(here, opcode, arr, addr);
        let decl = &self.kernel.arrays[arr.0];
        let limit = (decl.len + ARRAY_PAD) as i64;
        let name = decl.name.clone();
        let len = decl.len;
        let mut vals = Vec::with_capacity(map.entries().len());
        let mut worst: Option<IntervalCongruence> = None;
        // The interpreter bounds-checks the bare base address too.
        if !in_bounds(&base, limit) {
            worst = Some(base);
        }
        for &(off, _) in map.entries() {
            let v = base.add(&IntervalCongruence::constant(off));
            if worst.is_none() && !in_bounds(&v, limit) {
                worst = Some(v);
            }
            vals.push(v);
        }
        if let Some(v) = worst {
            self.report(
                here,
                Check::OutOfBounds,
                opcode,
                format!(
                    "{verb} `{name}` index {} may leave [0, {limit}) (len {len} + pad {ARRAY_PAD})",
                    render_value(&v)
                ),
                Some(arr),
                None,
                Some(v),
            );
        }
        vals
    }

    /// Records the footprint of a store to a local array.
    fn record_local_write(&mut self, arr: ArrayId, vals: &[IntervalCongruence]) {
        if self.kernel.arrays[arr.0].kind == ArrayKind::Local {
            self.writes
                .entry(arr.0)
                .or_default()
                .extend_from_slice(vals);
        }
    }

    /// Check 4: a load from a local array must overlap some store that may
    /// have written it (meet ≠ ⊥ against at least one recorded footprint).
    fn check_local_read(&mut self, here: usize, arr: ArrayId, vals: &[IntervalCongruence]) {
        if self.kernel.arrays[arr.0].kind != ArrayKind::Local {
            return;
        }
        let offending = vals
            .iter()
            .find(|v| {
                !v.is_bottom()
                    && !self
                        .writes
                        .get(&arr.0)
                        .is_some_and(|ws| ws.iter().any(|w| !w.meet(v).is_bottom()))
            })
            .cloned();
        if let Some(v) = offending {
            let name = self.kernel.arrays[arr.0].name.clone();
            self.report(
                here,
                Check::LocalDataflow,
                "GLoad",
                format!(
                    "load from local `{name}` index {} overlaps no store (defining store forwarded away?)",
                    render_value(&v)
                ),
                Some(arr),
                None,
                Some(v),
            );
        }
    }

    /// Recursively records local-store footprints of a loop body *before*
    /// verifying it, so that on loops with ≥ 2 iterations a load may
    /// legitimately read what a later store in the same body wrote on the
    /// previous iteration (back-edge may-writes).
    fn prescan_writes(&mut self, insts: &[Inst]) {
        for inst in insts {
            match inst {
                Inst::GStore { arr, addr, map, .. }
                    if self.kernel.arrays[arr.0].kind == ArrayKind::Local =>
                {
                    let base = eval_affine(addr, |v| {
                        self.env
                            .get(&v)
                            .copied()
                            .unwrap_or_else(IntervalCongruence::top)
                    });
                    let vals: Vec<_> = map
                        .entries()
                        .iter()
                        .map(|&(off, _)| base.add(&IntervalCongruence::constant(off)))
                        .collect();
                    self.writes.entry(arr.0).or_default().extend(vals);
                }
                Inst::Loop {
                    var,
                    name,
                    start,
                    end,
                    step,
                    body,
                } if *step > 0 => {
                    let spec = LoopSpec::new(name, *start, *end, *step);
                    if spec.trip_count() >= 1 {
                        let saved = self.env.insert(*var, loop_index_value(&spec));
                        self.prescan_writes(body);
                        match saved {
                            Some(s) => self.env.insert(*var, s),
                            None => self.env.remove(var),
                        };
                    }
                }
                _ => {}
            }
        }
    }

    fn block(&mut self, insts: &[Inst]) {
        for inst in insts {
            let here = self.idx;
            self.idx += 1;
            match inst {
                Inst::GLoad {
                    dst,
                    arr,
                    addr,
                    map,
                    ..
                } => {
                    let vals = self.check_access(here, "GLoad", "load from", *arr, addr, map);
                    self.check_local_read(here, *arr, &vals);
                    // Unmapped lanes are zero-filled: the whole register is
                    // defined.
                    self.def_reg(*dst, ALL_LANES);
                }
                Inst::GStore {
                    src,
                    arr,
                    addr,
                    map,
                    ..
                } => {
                    self.use_reg(here, "GStore", "src", *src, map_lanes(map));
                    let vals = self.check_access(here, "GStore", "store to", *arr, addr, map);
                    self.record_local_write(*arr, &vals);
                }
                Inst::Arith { op, dst, a, b } => {
                    let opcode = format!("{op:?}");
                    match *op {
                        VArith::Add(w) | VArith::Sub(w) | VArith::Mul(w) => {
                            let need = low_lanes(w.lanes());
                            self.use_reg(here, &opcode, "a", *a, need);
                            self.use_reg(here, &opcode, "b", *b, need);
                            // Upper lanes are zeroed: fully defined.
                            self.def_reg(*dst, ALL_LANES);
                        }
                        VArith::Hadd => {
                            self.use_reg(here, &opcode, "a", *a, ALL_LANES);
                            self.use_reg(here, &opcode, "b", *b, ALL_LANES);
                            self.def_reg(*dst, ALL_LANES);
                        }
                        VArith::Pairwise => {
                            self.use_reg(here, &opcode, "a", *a, 0b0011);
                            self.use_reg(here, &opcode, "b", *b, 0b0011);
                            self.def_reg(*dst, ALL_LANES);
                        }
                        VArith::Fma(w) => {
                            let need = low_lanes(w.lanes());
                            self.use_reg(here, &opcode, "a", *a, need);
                            self.use_reg(here, &opcode, "b", *b, need);
                            // Accumulating: dst is read and only its low
                            // lanes are rewritten.
                            self.use_reg(here, &opcode, "acc", *dst, need);
                            let old = self.regs.get(dst).copied().unwrap_or(0);
                            self.def_reg(*dst, old | need);
                        }
                        VArith::MulLane(w, lane) => {
                            self.check_lane(here, &opcode, lane, 4);
                            self.use_reg(here, &opcode, "a", *a, low_lanes(w.lanes()));
                            self.use_reg(here, &opcode, "b", *b, 1 << lane.min(3));
                            self.def_reg(*dst, ALL_LANES);
                        }
                        VArith::FmaLane(w, lane) => {
                            let need = low_lanes(w.lanes());
                            self.check_lane(here, &opcode, lane, 4);
                            self.use_reg(here, &opcode, "a", *a, need);
                            self.use_reg(here, &opcode, "b", *b, 1 << lane.min(3));
                            self.use_reg(here, &opcode, "acc", *dst, need);
                            let old = self.regs.get(dst).copied().unwrap_or(0);
                            self.def_reg(*dst, old | need);
                        }
                    }
                }
                Inst::Move { op, dst, a, b } => {
                    let opcode = format!("{op:?}");
                    match *op {
                        VMove::Mov => {
                            // `dst = a`: the defined-lane mask propagates.
                            let m = self.use_reg_any(here, &opcode, "a", *a);
                            self.def_reg(*dst, m);
                        }
                        VMove::Zero => self.def_reg(*dst, ALL_LANES),
                        VMove::Splat(lane) => {
                            self.check_lane(here, &opcode, lane, 4);
                            self.use_reg(here, &opcode, "a", *a, 1 << lane.min(3));
                            self.def_reg(*dst, ALL_LANES);
                        }
                        VMove::Shuf(sel) => {
                            let (mut need_a, mut need_b) = (0u8, 0u8);
                            for &s in &sel {
                                if !self.check_lane(here, &opcode, s, 8) {
                                    continue;
                                }
                                if s < 4 {
                                    need_a |= 1 << s;
                                } else {
                                    need_b |= 1 << (s - 4);
                                }
                            }
                            if need_a != 0 {
                                self.use_reg(here, &opcode, "a", *a, need_a);
                            }
                            if need_b != 0 {
                                self.use_reg(here, &opcode, "b", *b, need_b);
                            }
                            self.def_reg(*dst, ALL_LANES);
                        }
                        VMove::SetLane(lane) => {
                            self.check_lane(here, &opcode, lane, 4);
                            // `dst = a` with `dst[lane] = b[0]`.
                            let m = self.use_reg_any(here, &opcode, "a", *a);
                            self.use_reg(here, &opcode, "b", *b, 0b0001);
                            self.def_reg(*dst, m | (1 << lane.min(3)));
                        }
                        VMove::GetLane(lane) => {
                            self.check_lane(here, &opcode, lane, 4);
                            self.use_reg(here, &opcode, "a", *a, 1 << lane.min(3));
                            self.def_reg(*dst, ALL_LANES);
                        }
                    }
                }
                Inst::Overhead { .. } => {}
                Inst::Loop {
                    var,
                    name,
                    start,
                    end,
                    step,
                    body,
                } => {
                    if *step <= 0 {
                        self.report(
                            here,
                            Check::Structure,
                            "Loop",
                            format!("loop `{name}` step {step} is not positive"),
                            None,
                            None,
                            None,
                        );
                        self.idx += flat_count(body);
                        continue;
                    }
                    let spec = LoopSpec::new(name, *start, *end, *step);
                    let trip = spec.trip_count();
                    if trip == 0 {
                        // The body never executes: skip it, keeping flat
                        // indices consistent. Its definitions do not reach
                        // past the loop.
                        self.idx += flat_count(body);
                        continue;
                    }
                    let saved = self.env.insert(*var, loop_index_value(&spec));
                    if trip >= 2 {
                        // Stores later in the body may reach earlier loads
                        // via the back-edge.
                        self.prescan_writes(body);
                    }
                    // The body is verified once against its weakest entry
                    // state (the first iteration: only pre-loop register
                    // definitions have happened). Definitions made in the
                    // body persist after the loop — it runs at least once.
                    self.block(body);
                    match saved {
                        Some(s) => self.env.insert(*var, s),
                        None => self.env.remove(var),
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::ir::VWidth;

    fn assert_clean(kernel: &Kernel) {
        let diags = verify_kernel(kernel);
        assert!(diags.is_empty(), "expected clean:\n{}", render(&diags));
    }

    fn assert_flags(kernel: &Kernel, check: Check) -> Vec<Diagnostic> {
        let diags = verify_kernel(kernel);
        assert!(
            diags.iter().any(|d| d.check == check),
            "expected a {check:?} report, got:\n{}",
            render(&diags)
        );
        diags
    }

    /// A well-formed strided copy loop verifies clean, including the
    /// padding-reading partial access at the tail.
    #[test]
    fn clean_strided_loop() {
        let mut b = KernelBuilder::new("t");
        let x = b.input("x", 16);
        let y = b.output("y", 16);
        b.for_loop("i", 0, 16, 4, |b, i| {
            let v = b.load(x, AffineExpr::var(i), MemMap::horizontal(4));
            b.store(v, y, AffineExpr::var(i), MemMap::horizontal(4));
        });
        assert_clean(&b.finish(0));
    }

    /// A three-float tail load at base 14 of a len-16 array reads indices
    /// 14..17 — inside the pad, clean. At base 21 it is out of bounds.
    #[test]
    fn pad_reads_are_clean_but_real_oob_is_flagged() {
        let mut b = KernelBuilder::new("t");
        let x = b.input("x", 16);
        let y = b.output("y", 16);
        let v = b.load(x, AffineExpr::constant(14), MemMap::horizontal(3));
        b.store(v, y, AffineExpr::constant(0), MemMap::horizontal(3));
        assert_clean(&b.finish(0));

        let mut b = KernelBuilder::new("t");
        let x = b.input("x", 16);
        let y = b.output("y", 16);
        let v = b.load(x, AffineExpr::constant(21), MemMap::horizontal(3));
        b.store(v, y, AffineExpr::constant(0), MemMap::horizontal(3));
        let diags = assert_flags(&b.finish(0), Check::OutOfBounds);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].inst, 0);
        assert_eq!(diags[0].array, Some(ArrayId(0)));
    }

    /// OOB through a loop: `for i in (0..24).step 4: load x[i..i+4]` over a
    /// len-16 array walks past even the pad.
    #[test]
    fn loop_carried_oob() {
        let mut b = KernelBuilder::new("t");
        let x = b.input("x", 16);
        let y = b.output("y", 32);
        b.for_loop("i", 0, 24, 4, |b, i| {
            let v = b.load(x, AffineExpr::var(i), MemMap::horizontal(4));
            b.store(v, y, AffineExpr::var(i), MemMap::horizontal(4));
        });
        let diags = assert_flags(&b.finish(0), Check::OutOfBounds);
        // The diagnostic carries the triggering abstract value.
        let d = diags
            .iter()
            .find(|d| d.check == Check::OutOfBounds)
            .unwrap();
        assert!(d.value.is_some());
        assert_eq!(d.array, Some(ArrayId(0)));
    }

    #[test]
    fn use_before_def_register() {
        let mut b = KernelBuilder::new("t");
        let y = b.output("y", 4);
        b.push(Inst::GStore {
            src: 7,
            arr: y,
            addr: AffineExpr::constant(0),
            map: MemMap::horizontal(4),
            aligned: false,
        });
        let diags = assert_flags(&b.finish(0), Check::UseBeforeDef);
        assert_eq!(diags[0].reg, Some(7));
    }

    /// Uses inside a loop body are checked against the first-iteration
    /// state: a register defined only later in the body is flagged.
    #[test]
    fn use_before_def_across_backedge() {
        let mut b = KernelBuilder::new("t");
        let x = b.input("x", 8);
        let y = b.output("y", 8);
        let r = b.fresh_reg();
        b.begin_loop("i", 0, 8, 4);
        b.push(Inst::GStore {
            src: r,
            arr: y,
            addr: AffineExpr::var(0),
            map: MemMap::horizontal(4),
            aligned: false,
        });
        b.push(Inst::GLoad {
            dst: r,
            arr: x,
            addr: AffineExpr::var(0),
            map: MemMap::horizontal(4),
            aligned: false,
        });
        b.end_loop();
        assert_flags(&b.finish(0), Check::UseBeforeDef);
    }

    /// Definitions inside a taken loop persist after it; inside a zero-trip
    /// loop they do not.
    #[test]
    fn loop_definitions_persist_iff_taken() {
        let mut b = KernelBuilder::new("t");
        let x = b.input("x", 8);
        let y = b.output("y", 8);
        let r = b.fresh_reg();
        b.begin_loop("i", 0, 8, 4);
        b.push(Inst::GLoad {
            dst: r,
            arr: x,
            addr: AffineExpr::var(0),
            map: MemMap::horizontal(4),
            aligned: false,
        });
        b.end_loop();
        b.push(Inst::GStore {
            src: r,
            arr: y,
            addr: AffineExpr::constant(0),
            map: MemMap::horizontal(4),
            aligned: false,
        });
        assert_clean(&b.finish(0));

        let mut b = KernelBuilder::new("t");
        let x = b.input("x", 8);
        let y = b.output("y", 8);
        let r = b.fresh_reg();
        b.begin_loop("i", 0, 0, 4); // zero-trip
        b.push(Inst::GLoad {
            dst: r,
            arr: x,
            addr: AffineExpr::var(0),
            map: MemMap::horizontal(4),
            aligned: false,
        });
        b.end_loop();
        b.push(Inst::GStore {
            src: r,
            arr: y,
            addr: AffineExpr::constant(0),
            map: MemMap::horizontal(4),
            aligned: false,
        });
        assert_flags(&b.finish(0), Check::UseBeforeDef);
    }

    /// Lane consistency: Shuf selectors must be < 8, lane indices < 4.
    #[test]
    fn lane_indices_out_of_range() {
        let mut b = KernelBuilder::new("t");
        let x = b.input("x", 4);
        let y = b.output("y", 4);
        let v = b.load(x, AffineExpr::constant(0), MemMap::horizontal(4));
        let w = b.mov_op(VMove::Shuf([0, 9, 1, 2]), v, v);
        b.store(w, y, AffineExpr::constant(0), MemMap::horizontal(4));
        assert_flags(&b.finish(0), Check::LaneConsistency);

        let mut b = KernelBuilder::new("t");
        let x = b.input("x", 4);
        let y = b.output("y", 4);
        let v = b.load(x, AffineExpr::constant(0), MemMap::horizontal(4));
        let w = b.mov_op(VMove::Splat(5), v, 0);
        b.store(w, y, AffineExpr::constant(0), MemMap::horizontal(4));
        assert_flags(&b.finish(0), Check::LaneConsistency);
    }

    /// FMA accumulators must be initialized before accumulation.
    #[test]
    fn fma_into_undefined_accumulator() {
        let mut b = KernelBuilder::new("t");
        let x = b.input("x", 4);
        let y = b.output("y", 4);
        let v = b.load(x, AffineExpr::constant(0), MemMap::horizontal(4));
        let acc = b.fresh_reg();
        b.arith_acc(VArith::Fma(VWidth::Q), acc, v, v);
        b.store(acc, y, AffineExpr::constant(0), MemMap::horizontal(4));
        assert_flags(&b.finish(0), Check::UseBeforeDef);
    }

    /// Scalar-replacement soundness: a load from a local with no store at
    /// all (or only disjoint stores) is flagged; a matching store is clean.
    #[test]
    fn local_load_without_store() {
        let mut b = KernelBuilder::new("t");
        let t = b.local("t", 8);
        let y = b.output("y", 8);
        let v = b.load(t, AffineExpr::constant(0), MemMap::horizontal(4));
        b.store(v, y, AffineExpr::constant(0), MemMap::horizontal(4));
        assert_flags(&b.finish(0), Check::LocalDataflow);

        let mut b = KernelBuilder::new("t");
        let x = b.input("x", 8);
        let t = b.local("t", 8);
        let y = b.output("y", 8);
        let v = b.load(x, AffineExpr::constant(0), MemMap::horizontal(4));
        b.store(v, t, AffineExpr::constant(0), MemMap::horizontal(4));
        let w = b.load(t, AffineExpr::constant(0), MemMap::horizontal(4));
        b.store(w, y, AffineExpr::constant(0), MemMap::horizontal(4));
        assert_clean(&b.finish(0));

        // Disjoint store: writes t[4..8], load reads t[0..4].
        let mut b = KernelBuilder::new("t");
        let x = b.input("x", 8);
        let t = b.local("t", 8);
        let y = b.output("y", 8);
        let v = b.load(x, AffineExpr::constant(0), MemMap::horizontal(4));
        b.store(v, t, AffineExpr::constant(4), MemMap::horizontal(4));
        let w = b.load(t, AffineExpr::constant(0), MemMap::horizontal(4));
        b.store(w, y, AffineExpr::constant(0), MemMap::horizontal(4));
        assert_flags(&b.finish(0), Check::LocalDataflow);
    }

    /// Back-edge stores: inside a multi-trip loop a load may read what a
    /// *later* store in the body wrote on the previous iteration.
    #[test]
    fn backedge_store_reaches_earlier_load() {
        let mut b = KernelBuilder::new("t");
        let x = b.input("x", 8);
        let t = b.local("t", 8);
        let y = b.output("y", 8);
        // Initialize t before the loop so iteration 1 is covered too.
        let init = b.load(x, AffineExpr::constant(0), MemMap::horizontal(4));
        b.store(init, t, AffineExpr::constant(0), MemMap::horizontal(4));
        b.for_loop("i", 0, 8, 4, |b, i| {
            let v = b.load(t, AffineExpr::constant(0), MemMap::horizontal(4));
            b.store(v, y, AffineExpr::var(i), MemMap::horizontal(4));
            let nv = b.load(x, AffineExpr::var(i), MemMap::horizontal(4));
            b.store(nv, t, AffineExpr::constant(0), MemMap::horizontal(4));
        });
        assert_clean(&b.finish(0));
    }

    /// An address using a loop variable outside its loop is structural
    /// breakage.
    #[test]
    fn unbound_loop_variable() {
        let mut b = KernelBuilder::new("t");
        let x = b.input("x", 8);
        let y = b.output("y", 8);
        let v = b.load(x, AffineExpr::var(3), MemMap::horizontal(4));
        b.store(v, y, AffineExpr::constant(0), MemMap::horizontal(4));
        assert_flags(&b.finish(0), Check::Structure);
    }

    #[test]
    fn verify_stage_levels() {
        let mut b = KernelBuilder::new("t");
        let y = b.output("y", 4);
        b.push(Inst::GStore {
            src: 9,
            arr: y,
            addr: AffineExpr::constant(0),
            map: MemMap::horizontal(4),
            aligned: false,
        });
        let bad = b.finish(0);
        assert!(verify_stage("p", &bad, VerifyLevel::Off, true).is_ok());
        assert!(verify_stage("p", &bad, VerifyLevel::Boundaries, false).is_ok());
        assert!(verify_stage("p", &bad, VerifyLevel::Boundaries, true).is_err());
        let err = verify_stage("p", &bad, VerifyLevel::EveryPass, false).unwrap_err();
        assert_eq!(err.pass, "p");
        assert!(err.to_string().contains("use-before-def"));
    }

    #[test]
    fn verify_level_from_env_parsing() {
        // Uses the documented mapping without mutating the process env.
        assert!(!VerifyLevel::Off.is_enabled());
        assert!(VerifyLevel::Boundaries.is_enabled());
        assert!(VerifyLevel::EveryPass.is_enabled());
    }
}
