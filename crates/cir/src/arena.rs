//! Arena-allocated C-IR: the data-oriented twin of [`crate::ir`].
//!
//! The boxed tree of [`Inst`] is ideal for construction and for external
//! consumers, but the optimization pipeline used to pay for it on every
//! candidate of a tuning sweep: every pass cloned whole bodies of
//! `String`- and `Vec`-bearing nodes just to detect change. This module
//! keeps one [`Arena`] per pipeline run instead:
//!
//! * instructions are [`AInst`] — a `Copy` enum addressed by dense
//!   [`InstId`]s; loop bodies are [`BlockId`]s into a table of
//!   `Vec<InstId>` index arrays, so passes are linear sweeps that splice
//!   id lists instead of rebuilding trees;
//! * loop-variable names are interned [`Sym`]s in a per-arena
//!   [`SymTable`];
//! * affine address expressions live in a shared side-table
//!   ([`ExprPool`]) of **interned**, deduplicated [`AffineExpr`] forms
//!   with small-vector inline term storage ([`TermVec`]) — expression
//!   equality (the scalar-replacement footprint test) becomes an
//!   [`ExprId`] comparison;
//! * memory maps are interned in a [`MapPool`] the same way.
//!
//! Interning is sound because [`AffineExpr`] is normalized on
//! construction (terms sorted by variable, coefficients nonzero — see
//! `lgen-absint`): structurally equal expressions have equal
//! representations, so one pooled form stands for all of them.
//!
//! The five optimization passes are reimplemented here as arena sweeps
//! ([`unroll_block`], [`scalar_replacement_block`], [`copy_prop_block`],
//! [`dce_block`], [`align_block`]) with *explicit* change tracking —
//! no clone-and-compare. Their semantics mirror the tree implementations
//! in [`crate::passes`] instruction for instruction; the differential
//! suite (`tests/arena_equivalence.rs`) pins the two to byte-identical C
//! output across random BLACs and pass schedules.
//!
//! [`fingerprint`](Arena::fingerprint) hashes the reachable program
//! content-addressed (interned ids are resolved through the pools), which
//! is what the cross-candidate memoization in `lgen-core` keys on.

use crate::ir::{ArrayDecl, ArrayId, ArrayKind, Inst, OverheadKind, VArith, VMove, VReg};
use crate::map::MemMap;
use crate::passes::UnrollPolicy;
use lgen_absint::{
    loop_index_value, AbstractDomain, AffineExpr, IntervalCongruence, LoopSpec, VarId,
};
use std::collections::{HashMap, HashSet};

/// Interned loop-variable name (index into the arena's [`SymTable`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Sym(pub u32);

/// Interned affine expression (index into the arena's [`ExprPool`]).
///
/// Because the pool deduplicates, `ExprId` equality *is* structural
/// expression equality.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct ExprId(pub u32);

/// Interned memory map (index into the arena's [`MapPool`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct MapId(pub u32);

/// Dense instruction index into [`Arena::insts`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct InstId(pub u32);

/// Index of a straight-line block (a `Vec<InstId>`) in the arena.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct BlockId(pub u32);

/// Number of affine terms stored inline before spilling to the heap.
/// Addresses have at most one term per enclosing loop variable; LGen
/// nests are 2–3 deep, so 4 inline slots cover everything in practice.
const INLINE_TERMS: usize = 4;

/// Small-vector term storage: up to `INLINE_TERMS` `(coeff, var)`
/// pairs inline, heap spill beyond that.
#[derive(Clone, Debug)]
pub struct TermVec {
    len: u32,
    inline: [(i64, VarId); INLINE_TERMS],
    spill: Vec<(i64, VarId)>,
}

impl TermVec {
    fn from_slice(terms: &[(i64, VarId)]) -> Self {
        if terms.len() <= INLINE_TERMS {
            let mut inline = [(0i64, 0usize); INLINE_TERMS];
            inline[..terms.len()].copy_from_slice(terms);
            TermVec {
                len: terms.len() as u32,
                inline,
                spill: Vec::new(),
            }
        } else {
            TermVec {
                len: terms.len() as u32,
                inline: [(0, 0); INLINE_TERMS],
                spill: terms.to_vec(),
            }
        }
    }

    /// The terms as a slice, sorted by variable id.
    pub fn as_slice(&self) -> &[(i64, VarId)] {
        if self.len as usize <= INLINE_TERMS {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }
}

/// One pooled affine expression: normalized terms plus constant.
#[derive(Clone, Debug)]
struct ExprData {
    constant: i64,
    terms: TermVec,
}

/// The shared affine-expression side-table: deduplicated, append-only.
#[derive(Clone, Debug, Default)]
pub struct ExprPool {
    exprs: Vec<ExprData>,
    /// content hash → candidate ids (collision chain).
    intern: HashMap<u64, Vec<ExprId>>,
}

fn hash_expr(constant: i64, terms: &[(i64, VarId)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(constant as u64);
    for &(c, v) in terms {
        mix(c as u64);
        mix(v as u64);
    }
    h
}

impl ExprPool {
    /// Interns the normalized form `(constant, terms)`; returns the
    /// canonical id (existing or freshly pooled).
    fn intern(&mut self, constant: i64, terms: &[(i64, VarId)]) -> ExprId {
        debug_assert!(
            terms.iter().all(|t| t.0 != 0) && terms.windows(2).all(|w| w[0].1 < w[1].1),
            "expressions must be normalized before interning: {terms:?}"
        );
        let h = hash_expr(constant, terms);
        let chain = self.intern.entry(h).or_default();
        for &id in chain.iter() {
            let e = &self.exprs[id.0 as usize];
            if e.constant == constant && e.terms.as_slice() == terms {
                return id;
            }
        }
        let id = ExprId(self.exprs.len() as u32);
        self.exprs.push(ExprData {
            constant,
            terms: TermVec::from_slice(terms),
        });
        self.intern
            .get_mut(&h)
            .expect("chain just created")
            .push(id);
        id
    }

    /// The constant term of `id`.
    pub fn constant(&self, id: ExprId) -> i64 {
        self.exprs[id.0 as usize].constant
    }

    /// The `(coeff, var)` terms of `id`, sorted by variable.
    pub fn terms(&self, id: ExprId) -> &[(i64, VarId)] {
        self.exprs[id.0 as usize].terms.as_slice()
    }

    /// Number of distinct pooled expressions.
    pub fn len(&self) -> usize {
        self.exprs.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.exprs.is_empty()
    }

    fn to_affine(&self, id: ExprId) -> AffineExpr {
        AffineExpr {
            terms: self.terms(id).to_vec(),
            constant: self.constant(id),
        }
    }
}

/// Interned memory maps (the map set of a kernel is tiny: a handful of
/// horizontal/vertical/splat shapes).
#[derive(Clone, Debug, Default)]
pub struct MapPool {
    maps: Vec<MemMap>,
    intern: HashMap<MemMap, MapId>,
}

impl MapPool {
    fn intern(&mut self, map: &MemMap) -> MapId {
        if let Some(&id) = self.intern.get(map) {
            return id;
        }
        let id = MapId(self.maps.len() as u32);
        self.maps.push(map.clone());
        self.intern.insert(map.clone(), id);
        id
    }

    /// Resolves an interned map.
    pub fn get(&self, id: MapId) -> &MemMap {
        &self.maps[id.0 as usize]
    }
}

/// Interned strings (loop-variable names).
#[derive(Clone, Debug, Default)]
pub struct SymTable {
    names: Vec<String>,
    intern: HashMap<String, Sym>,
}

impl SymTable {
    fn intern(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.intern.get(name) {
            return s;
        }
        let s = Sym(self.names.len() as u32);
        self.names.push(name.to_string());
        self.intern.insert(name.to_string(), s);
        s
    }

    /// Resolves an interned name.
    pub fn get(&self, s: Sym) -> &str {
        &self.names[s.0 as usize]
    }
}

/// A C-IR instruction in arena form: `Copy`, with every heap-bearing
/// operand replaced by an interned id. Mirrors [`Inst`] one-to-one.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AInst {
    /// Generic load (see [`Inst::GLoad`]).
    GLoad {
        /// Destination register.
        dst: VReg,
        /// Source array.
        arr: ArrayId,
        /// Interned affine address.
        addr: ExprId,
        /// Interned offset→lane map.
        map: MapId,
        /// Proven 16-byte aligned.
        aligned: bool,
    },
    /// Generic store (see [`Inst::GStore`]).
    GStore {
        /// Source register.
        src: VReg,
        /// Destination array.
        arr: ArrayId,
        /// Interned affine address.
        addr: ExprId,
        /// Interned offset→lane map.
        map: MapId,
        /// Proven 16-byte aligned.
        aligned: bool,
    },
    /// Arithmetic (see [`Inst::Arith`]).
    Arith {
        /// Operation.
        op: VArith,
        /// Destination register.
        dst: VReg,
        /// First source.
        a: VReg,
        /// Second source.
        b: VReg,
    },
    /// Register move (see [`Inst::Move`]).
    Move {
        /// Operation.
        op: VMove,
        /// Destination register.
        dst: VReg,
        /// Primary source.
        a: VReg,
        /// Secondary source.
        b: VReg,
    },
    /// Schedule-only overhead (see [`Inst::Overhead`]).
    Overhead {
        /// Kind.
        kind: OverheadKind,
        /// Count.
        count: u16,
    },
    /// A counted loop over an arena block (see [`Inst::Loop`]).
    Loop {
        /// Loop variable id.
        var: VarId,
        /// Interned variable name.
        name: Sym,
        /// Start value.
        start: i64,
        /// Exclusive bound.
        end: i64,
        /// Step (positive).
        step: i64,
        /// Body block.
        body: BlockId,
    },
}

/// A kernel body in arena form: flat instruction and block tables plus
/// the interning pools. Built from a tree body once per pipeline run
/// ([`Arena::from_body`]), mutated in place by the arena passes, and
/// converted back once ([`Arena::to_body`]).
#[derive(Clone, Debug, Default)]
pub struct Arena {
    /// All instructions, dead ones included (passes splice id lists;
    /// they never compact this table).
    pub insts: Vec<AInst>,
    /// Straight-line blocks as index arrays. Block ids are stable;
    /// the id vectors are what passes rewrite.
    pub blocks: Vec<Vec<InstId>>,
    /// Shared affine-expression side-table.
    pub exprs: ExprPool,
    /// Interned memory maps.
    pub maps: MapPool,
    /// Interned loop-variable names.
    pub syms: SymTable,
}

impl Arena {
    /// Builds an arena from a tree body; returns the arena and the root
    /// block.
    pub fn from_body(body: &[Inst]) -> (Arena, BlockId) {
        let mut arena = Arena::default();
        let root = arena.import_block(body);
        (arena, root)
    }

    /// The instruction ids of a block, in program order. Read-only view
    /// for analyses (`lgen-analysis`) walking the arena without mutating
    /// it.
    pub fn block(&self, b: BlockId) -> &[InstId] {
        &self.blocks[b.0 as usize]
    }

    /// Resolves one instruction id.
    pub fn inst(&self, id: InstId) -> &AInst {
        &self.insts[id.0 as usize]
    }

    fn import_block(&mut self, body: &[Inst]) -> BlockId {
        let ids: Vec<InstId> = body.iter().map(|i| self.import_inst(i)).collect();
        let b = BlockId(self.blocks.len() as u32);
        self.blocks.push(ids);
        b
    }

    fn import_inst(&mut self, inst: &Inst) -> InstId {
        let a = match inst {
            Inst::GLoad {
                dst,
                arr,
                addr,
                map,
                aligned,
            } => AInst::GLoad {
                dst: *dst,
                arr: *arr,
                addr: self.intern_expr(addr),
                map: self.maps.intern(map),
                aligned: *aligned,
            },
            Inst::GStore {
                src,
                arr,
                addr,
                map,
                aligned,
            } => AInst::GStore {
                src: *src,
                arr: *arr,
                addr: self.intern_expr(addr),
                map: self.maps.intern(map),
                aligned: *aligned,
            },
            Inst::Arith { op, dst, a, b } => AInst::Arith {
                op: *op,
                dst: *dst,
                a: *a,
                b: *b,
            },
            Inst::Move { op, dst, a, b } => AInst::Move {
                op: *op,
                dst: *dst,
                a: *a,
                b: *b,
            },
            Inst::Overhead { kind, count } => AInst::Overhead {
                kind: *kind,
                count: *count,
            },
            Inst::Loop {
                var,
                name,
                start,
                end,
                step,
                body,
            } => {
                let block = self.import_block(body);
                AInst::Loop {
                    var: *var,
                    name: self.syms.intern(name),
                    start: *start,
                    end: *end,
                    step: *step,
                    body: block,
                }
            }
        };
        self.push(a)
    }

    fn push(&mut self, inst: AInst) -> InstId {
        let id = InstId(self.insts.len() as u32);
        self.insts.push(inst);
        id
    }

    /// Interns an [`AffineExpr`] (which is normalized by construction).
    pub fn intern_expr(&mut self, e: &AffineExpr) -> ExprId {
        self.exprs.intern(e.constant, &e.terms)
    }

    /// Converts a block back into a tree body.
    pub fn to_body(&self, block: BlockId) -> Vec<Inst> {
        self.blocks[block.0 as usize]
            .iter()
            .map(|&id| self.export_inst(id))
            .collect()
    }

    fn export_inst(&self, id: InstId) -> Inst {
        match self.insts[id.0 as usize] {
            AInst::GLoad {
                dst,
                arr,
                addr,
                map,
                aligned,
            } => Inst::GLoad {
                dst,
                arr,
                addr: self.exprs.to_affine(addr),
                map: self.maps.get(map).clone(),
                aligned,
            },
            AInst::GStore {
                src,
                arr,
                addr,
                map,
                aligned,
            } => Inst::GStore {
                src,
                arr,
                addr: self.exprs.to_affine(addr),
                map: self.maps.get(map).clone(),
                aligned,
            },
            AInst::Arith { op, dst, a, b } => Inst::Arith { op, dst, a, b },
            AInst::Move { op, dst, a, b } => Inst::Move { op, dst, a, b },
            AInst::Overhead { kind, count } => Inst::Overhead { kind, count },
            AInst::Loop {
                var,
                name,
                start,
                end,
                step,
                body,
            } => Inst::Loop {
                var,
                name: self.syms.get(name).to_string(),
                start,
                end,
                step,
                body: self.to_body(body),
            },
        }
    }

    /// Substitutes `var := value` in a pooled expression, returning the
    /// (interned) result.
    fn subst_expr(&mut self, e: ExprId, var: VarId, value: i64) -> ExprId {
        let terms = self.exprs.terms(e);
        if !terms.iter().any(|t| t.1 == var) {
            return e;
        }
        let mut out: Vec<(i64, VarId)> = Vec::with_capacity(terms.len());
        let mut constant = self.exprs.constant(e);
        for &(c, v) in terms {
            if v == var {
                constant += c * value;
            } else {
                out.push((c, v));
            }
        }
        self.exprs.intern(constant, &out)
    }

    /// Adds `delta` to a pooled expression's constant.
    fn offset_expr(&mut self, e: ExprId, delta: i64) -> ExprId {
        if delta == 0 {
            return e;
        }
        let terms = self.exprs.terms(e).to_vec();
        let constant = self.exprs.constant(e) + delta;
        self.exprs.intern(constant, &terms)
    }

    /// A stable content fingerprint of the program reachable from
    /// `block`: FNV-1a over a canonical pre-order serialization with all
    /// interned ids resolved through their pools, so two arenas holding
    /// the same program fingerprint identically regardless of interning
    /// history. Cross-candidate memoization keys on this.
    pub fn fingerprint(&self, block: BlockId) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        self.fp_block(block, &mut h);
        h
    }

    fn fp_block(&self, block: BlockId, h: &mut u64) {
        fp_mix(h, self.blocks[block.0 as usize].len() as u64);
        for &id in &self.blocks[block.0 as usize] {
            self.fp_inst(id, h);
        }
    }

    fn fp_inst(&self, id: InstId, h: &mut u64) {
        match self.insts[id.0 as usize] {
            AInst::GLoad {
                dst,
                arr,
                addr,
                map,
                aligned,
            } => {
                fp_mix(h, 1);
                fp_mix(h, dst as u64);
                fp_mix(h, arr.0 as u64);
                self.fp_expr(addr, h);
                self.fp_map(map, h);
                fp_mix(h, aligned as u64);
            }
            AInst::GStore {
                src,
                arr,
                addr,
                map,
                aligned,
            } => {
                fp_mix(h, 2);
                fp_mix(h, src as u64);
                fp_mix(h, arr.0 as u64);
                self.fp_expr(addr, h);
                self.fp_map(map, h);
                fp_mix(h, aligned as u64);
            }
            AInst::Arith { op, dst, a, b } => {
                fp_mix(h, 3);
                fp_mix(h, fp_hash_debug(&op));
                fp_mix(h, dst as u64);
                fp_mix(h, a as u64);
                fp_mix(h, b as u64);
            }
            AInst::Move { op, dst, a, b } => {
                fp_mix(h, 4);
                fp_mix(h, fp_hash_debug(&op));
                fp_mix(h, dst as u64);
                fp_mix(h, a as u64);
                fp_mix(h, b as u64);
            }
            AInst::Overhead { kind, count } => {
                fp_mix(h, 5);
                fp_mix(h, fp_hash_debug(&kind));
                fp_mix(h, count as u64);
            }
            AInst::Loop {
                var,
                name,
                start,
                end,
                step,
                body,
            } => {
                fp_mix(h, 6);
                fp_mix(h, var as u64);
                for b in self.syms.get(name).bytes() {
                    fp_mix(h, b as u64);
                }
                fp_mix(h, start as u64);
                fp_mix(h, end as u64);
                fp_mix(h, step as u64);
                self.fp_block(body, h);
            }
        }
    }

    fn fp_expr(&self, e: ExprId, h: &mut u64) {
        fp_mix(h, self.exprs.constant(e) as u64);
        let terms = self.exprs.terms(e);
        fp_mix(h, terms.len() as u64);
        for &(c, v) in terms {
            fp_mix(h, c as u64);
            fp_mix(h, v as u64);
        }
    }

    fn fp_map(&self, m: MapId, h: &mut u64) {
        let map = self.maps.get(m);
        fp_mix(h, map.is_broadcast() as u64);
        fp_mix(h, map.entries().len() as u64);
        for &(off, lane) in map.entries() {
            fp_mix(h, off as u64);
            fp_mix(h, lane as u64);
        }
    }
}

#[inline]
fn fp_mix(h: &mut u64, v: u64) {
    *h ^= v;
    *h = h.wrapping_mul(0x0000_0100_0000_01b3);
}

/// Hashes a `Copy` enum through its `Debug` form — stable within one
/// build, which is all a per-process memo key needs.
fn fp_hash_debug<T: std::fmt::Debug>(v: &T) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{v:?}").bytes() {
        fp_mix(&mut h, b as u64);
    }
    h
}

// ---------------------------------------------------------------------------
// Arena passes. Each mirrors its tree twin in `crate::passes` exactly;
// change is tracked explicitly instead of by clone-and-compare.
// ---------------------------------------------------------------------------

/// Number of iterations of a counted loop `for (v = start; v < end;
/// v += step)`. Every C-IR loop is fixed-size, so trip counts are a
/// *static* property — the basis of `lgen-analysis`'s loop-nest and
/// cost extraction as well as of the unrolling pass below.
pub fn trip_count(start: i64, end: i64, step: i64) -> usize {
    if end <= start {
        0
    } else {
        ((end - start + step - 1) / step) as usize
    }
}

/// Loop unrolling under `policy`, bottom-up (twin of
/// [`crate::passes::unroll`](fn@crate::passes::unroll)). Returns whether the block changed.
pub fn unroll_block(a: &mut Arena, block: BlockId, policy: UnrollPolicy) -> bool {
    let ids = std::mem::take(&mut a.blocks[block.0 as usize]);
    let mut out = Vec::with_capacity(ids.len());
    let mut changed = false;
    for id in ids {
        unroll_inst(a, id, policy, &mut out, &mut changed);
    }
    a.blocks[block.0 as usize] = out;
    changed
}

fn unroll_inst(
    a: &mut Arena,
    id: InstId,
    policy: UnrollPolicy,
    out: &mut Vec<InstId>,
    changed: &mut bool,
) {
    let AInst::Loop {
        var,
        start,
        end,
        step,
        body,
        ..
    } = a.insts[id.0 as usize]
    else {
        out.push(id);
        return;
    };
    *changed |= unroll_block(a, body, policy);
    let trips = trip_count(start, end, step);
    let full = |a: &mut Arena, out: &mut Vec<InstId>| {
        let mut k = start;
        while k < end {
            subst_block_into(a, body, var, k, out);
            k += step;
        }
    };
    match policy {
        UnrollPolicy::None => out.push(id),
        UnrollPolicy::Full { max_trip } => {
            if trips <= max_trip {
                full(a, out);
                *changed = true;
            } else {
                out.push(id);
            }
        }
        UnrollPolicy::Factor { factor } => {
            if trips <= factor {
                full(a, out);
                *changed = true;
            } else if factor >= 2 && trips.is_multiple_of(factor) {
                // Repeat the body `factor` times with offsets, widen the
                // step.
                let mut widened = Vec::new();
                for u in 0..factor {
                    shift_block_into(a, body, var, u as i64 * step, &mut widened);
                }
                let wb = BlockId(a.blocks.len() as u32);
                a.blocks.push(widened);
                if let AInst::Loop { step, body, .. } = &mut a.insts[id.0 as usize] {
                    *step *= factor as i64;
                    *body = wb;
                }
                out.push(id);
                *changed = true;
            } else {
                out.push(id);
            }
        }
    }
}

/// Deep-copies `block` with `var := value` substituted, appending the
/// copies to `out` (twin of [`crate::passes::subst_block`] — fresh
/// instructions, so later in-place passes cannot alias unrolled copies).
fn subst_block_into(a: &mut Arena, block: BlockId, var: VarId, value: i64, out: &mut Vec<InstId>) {
    let ids = a.blocks[block.0 as usize].clone();
    for id in ids {
        let inst = match a.insts[id.0 as usize] {
            AInst::GLoad {
                dst,
                arr,
                addr,
                map,
                aligned,
            } => AInst::GLoad {
                dst,
                arr,
                addr: a.subst_expr(addr, var, value),
                map,
                aligned,
            },
            AInst::GStore {
                src,
                arr,
                addr,
                map,
                aligned,
            } => AInst::GStore {
                src,
                arr,
                addr: a.subst_expr(addr, var, value),
                map,
                aligned,
            },
            AInst::Loop {
                var: v,
                name,
                start,
                end,
                step,
                body,
            } => {
                let mut inner = Vec::with_capacity(a.blocks[body.0 as usize].len());
                subst_block_into(a, body, var, value, &mut inner);
                let nb = BlockId(a.blocks.len() as u32);
                a.blocks.push(inner);
                AInst::Loop {
                    var: v,
                    name,
                    start,
                    end,
                    step,
                    body: nb,
                }
            }
            other => other,
        };
        out.push(a.push(inst));
    }
}

/// Deep-copies `block` with `var` shifted by `delta` (twin of the tree
/// `shift_var` used by factor unrolling).
fn shift_block_into(a: &mut Arena, block: BlockId, var: VarId, delta: i64, out: &mut Vec<InstId>) {
    let ids = a.blocks[block.0 as usize].clone();
    for id in ids {
        let inst = match a.insts[id.0 as usize] {
            AInst::GLoad {
                dst,
                arr,
                addr,
                map,
                aligned,
            } => {
                let coeff: i64 = a
                    .exprs
                    .terms(addr)
                    .iter()
                    .filter(|t| t.1 == var)
                    .map(|t| t.0)
                    .sum();
                AInst::GLoad {
                    dst,
                    arr,
                    addr: a.offset_expr(addr, coeff * delta),
                    map,
                    aligned,
                }
            }
            AInst::GStore {
                src,
                arr,
                addr,
                map,
                aligned,
            } => {
                let coeff: i64 = a
                    .exprs
                    .terms(addr)
                    .iter()
                    .filter(|t| t.1 == var)
                    .map(|t| t.0)
                    .sum();
                AInst::GStore {
                    src,
                    arr,
                    addr: a.offset_expr(addr, coeff * delta),
                    map,
                    aligned,
                }
            }
            AInst::Loop {
                var: v,
                name,
                start,
                end,
                step,
                body,
            } => {
                let mut inner = Vec::with_capacity(a.blocks[body.0 as usize].len());
                shift_block_into(a, body, var, delta, &mut inner);
                let nb = BlockId(a.blocks.len() as u32);
                a.blocks.push(inner);
                AInst::Loop {
                    var: v,
                    name,
                    start,
                    end,
                    step,
                    body: nb,
                }
            }
            other => other,
        };
        out.push(a.push(inst));
    }
}

/// Copy propagation within straight-line regions, loops as barriers
/// (twin of [`crate::passes::copy_prop`](fn@crate::passes::copy_prop)). In-place; returns whether any
/// operand changed.
pub fn copy_prop_block(a: &mut Arena, block: BlockId) -> bool {
    let mut changed = false;
    prop_block(a, block, &mut changed);
    changed
}

fn resolve(copies: &HashMap<VReg, VReg>, mut r: VReg) -> VReg {
    // Paths are short; guard against accidental cycles anyway.
    for _ in 0..copies.len() + 1 {
        match copies.get(&r) {
            Some(&next) => r = next,
            None => break,
        }
    }
    r
}

/// Removes any mapping that flows *through* `dst` (it is being
/// redefined).
fn kill(copies: &mut HashMap<VReg, VReg>, dst: VReg) {
    copies.remove(&dst);
    copies.retain(|_, v| *v != dst);
}

fn prop_block(arena: &mut Arena, block: BlockId, changed: &mut bool) {
    let mut copies: HashMap<VReg, VReg> = HashMap::new();
    let ids = arena.blocks[block.0 as usize].clone();
    for id in ids {
        match arena.insts[id.0 as usize] {
            AInst::Move {
                op: VMove::Mov,
                dst,
                a,
                b,
            } => {
                let src = resolve(&copies, a);
                kill(&mut copies, dst);
                if src != dst {
                    copies.insert(dst, src);
                }
                // Keep the move; DCE removes it if no un-rewritten use
                // remains.
                if src != a || b != 0 {
                    arena.insts[id.0 as usize] = AInst::Move {
                        op: VMove::Mov,
                        dst,
                        a: src,
                        b: 0,
                    };
                    *changed = true;
                }
            }
            AInst::Move { op, dst, a, b } => {
                let (ra, rb) = (resolve(&copies, a), resolve(&copies, b));
                kill(&mut copies, dst);
                if ra != a || rb != b {
                    arena.insts[id.0 as usize] = AInst::Move {
                        op,
                        dst,
                        a: ra,
                        b: rb,
                    };
                    *changed = true;
                }
            }
            AInst::Arith { op, dst, a, b } => {
                let (ra, rb) = (resolve(&copies, a), resolve(&copies, b));
                // Accumulating ops read dst: the read must see the
                // resolved source, but dst is then redefined in place, so
                // accumulation through a copy is left un-propagated to
                // stay correct.
                kill(&mut copies, dst);
                if ra != a || rb != b {
                    arena.insts[id.0 as usize] = AInst::Arith {
                        op,
                        dst,
                        a: ra,
                        b: rb,
                    };
                    *changed = true;
                }
            }
            AInst::GLoad { dst, .. } => {
                kill(&mut copies, dst);
            }
            AInst::GStore {
                src,
                arr,
                addr,
                map,
                aligned,
            } => {
                let rs = resolve(&copies, src);
                if rs != src {
                    arena.insts[id.0 as usize] = AInst::GStore {
                        src: rs,
                        arr,
                        addr,
                        map,
                        aligned,
                    };
                    *changed = true;
                }
            }
            AInst::Overhead { .. } => {}
            AInst::Loop { body, .. } => {
                // Copies made before the loop hold on entry, but iterating
                // may redefine sources; be conservative.
                copies.clear();
                prop_block(arena, body, changed);
            }
        }
    }
}

/// Dead-code elimination (twin of [`crate::passes::dce`](fn@crate::passes::dce)): fixpoint over
/// a flat liveness bitmap indexed by [`InstId`]. Returns whether any
/// instruction was removed.
pub fn dce_block(a: &mut Arena, root: BlockId, arrays: &[ArrayDecl]) -> bool {
    let mut live = vec![false; a.insts.len()];
    loop {
        let mut used: HashSet<VReg> = HashSet::new();
        let mut read: HashSet<usize> = HashSet::new();
        dce_collect_uses(a, root, &live, &mut used, &mut read);
        let mut grew = false;
        dce_mark(a, root, &mut live, arrays, &used, &read, &mut grew);
        if !grew {
            break;
        }
    }
    dce_filter(a, root, &live)
}

/// Gathers registers and arrays used by currently-live instructions.
fn dce_collect_uses(
    a: &Arena,
    block: BlockId,
    live: &[bool],
    used: &mut HashSet<VReg>,
    read: &mut HashSet<usize>,
) {
    for &id in &a.blocks[block.0 as usize] {
        match a.insts[id.0 as usize] {
            AInst::Loop { body, .. } => dce_collect_uses(a, body, live, used, read),
            inst if live[id.0 as usize] => match inst {
                AInst::GLoad { arr, .. } => {
                    read.insert(arr.0);
                }
                AInst::GStore { src, .. } => {
                    used.insert(src);
                }
                AInst::Arith { op, dst, a, b } => {
                    used.insert(a);
                    used.insert(b);
                    if op.reads_dst() {
                        used.insert(dst);
                    }
                }
                AInst::Move { op, a, b, .. } => match op {
                    VMove::Zero => {}
                    VMove::Mov | VMove::Splat(_) | VMove::GetLane(_) => {
                        used.insert(a);
                    }
                    VMove::Shuf(_) | VMove::SetLane(_) => {
                        used.insert(a);
                        used.insert(b);
                    }
                },
                AInst::Overhead { .. } => {}
                AInst::Loop { .. } => unreachable!(),
            },
            _ => {}
        }
    }
}

fn dce_mark(
    a: &Arena,
    block: BlockId,
    live: &mut [bool],
    arrays: &[ArrayDecl],
    used: &HashSet<VReg>,
    read: &HashSet<usize>,
    grew: &mut bool,
) {
    for &id in &a.blocks[block.0 as usize] {
        let newly = match a.insts[id.0 as usize] {
            AInst::GStore { arr, .. } => {
                arrays[arr.0].kind != ArrayKind::Local || read.contains(&arr.0)
            }
            AInst::Overhead { .. } => true,
            AInst::GLoad { dst, .. } | AInst::Arith { dst, .. } | AInst::Move { dst, .. } => {
                used.contains(&dst)
            }
            AInst::Loop { body, .. } => {
                dce_mark(a, body, live, arrays, used, read, grew);
                // The loop node itself is kept iff its body has live
                // code; decided at filter time, no mark needed.
                false
            }
        };
        if newly && !live[id.0 as usize] {
            live[id.0 as usize] = true;
            *grew = true;
        }
    }
}

fn dce_filter(a: &mut Arena, block: BlockId, live: &[bool]) -> bool {
    let ids = std::mem::take(&mut a.blocks[block.0 as usize]);
    let mut out = Vec::with_capacity(ids.len());
    let mut changed = false;
    for id in ids {
        match a.insts[id.0 as usize] {
            AInst::Loop { body, .. } => {
                changed |= dce_filter(a, body, live);
                if a.blocks[body.0 as usize].is_empty() {
                    changed = true;
                } else {
                    out.push(id);
                }
            }
            _ if live[id.0 as usize] => out.push(id),
            _ => changed = true,
        }
    }
    a.blocks[block.0 as usize] = out;
    changed
}

/// Scalar-replacement footprint: with interned operands the §3.1 "same
/// array, same address, same map" test is a three-id comparison.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Fp {
    arr: usize,
    addr: ExprId,
    map: MapId,
}

/// Ranges touched by two footprints on the same array might overlap even
/// if the footprints differ; this coarse check errs on the safe side
/// (twin of the tree `may_overlap`).
fn may_overlap(a: &Arena, x: &Fp, y: &Fp) -> bool {
    if x.arr != y.arr {
        return false;
    }
    if a.exprs.terms(x.addr) != a.exprs.terms(y.addr) {
        // Different index expressions on the same array: assume aliasing.
        return true;
    }
    let x_lo = a.exprs.constant(x.addr);
    let x_hi = x_lo + a.maps.get(x.map).max_offset();
    let y_lo = a.exprs.constant(y.addr);
    let y_hi = y_lo + a.maps.get(y.map).max_offset();
    x_lo <= y_hi && y_lo <= x_hi
}

/// The register an instruction (re)defines, if any.
fn defined_reg(inst: &AInst) -> Option<VReg> {
    match inst {
        AInst::GLoad { dst, .. } | AInst::Arith { dst, .. } | AInst::Move { dst, .. } => Some(*dst),
        _ => None,
    }
}

/// Scalar replacement over generic load/store footprints (twin of
/// [`crate::passes::scalar_replacement`](fn@crate::passes::scalar_replacement)). Returns whether any load was
/// forwarded.
pub fn scalar_replacement_block(a: &mut Arena, block: BlockId, arrays: &[ArrayDecl]) -> bool {
    let mut changed = false;
    scalrep_block(a, block, arrays, &mut changed);
    changed
}

fn scalrep_block(a: &mut Arena, block: BlockId, arrays: &[ArrayDecl], changed: &mut bool) {
    // Footprint → register holding the stored value.
    let mut avail: HashMap<Fp, VReg> = HashMap::new();
    let ids = a.blocks[block.0 as usize].clone();
    for id in ids {
        let inst = a.insts[id.0 as usize];
        // A redefined register invalidates forwardings that captured its
        // old value (unrolled bodies reuse the same virtual registers).
        if let Some(d) = defined_reg(&inst) {
            avail.retain(|_, v| *v != d);
        }
        match inst {
            AInst::GStore {
                src,
                arr,
                addr,
                map,
                ..
            } if arrays[arr.0].kind == ArrayKind::Local => {
                let fp = Fp {
                    arr: arr.0,
                    addr,
                    map,
                };
                // A store may invalidate overlapping prior stores.
                let keep: Vec<(Fp, VReg)> = avail
                    .drain()
                    .filter(|(k, _)| !may_overlap(a, k, &fp) || *k == fp)
                    .collect();
                avail.extend(keep);
                avail.insert(fp, src);
            }
            AInst::GLoad {
                dst,
                arr,
                addr,
                map,
                ..
            } if arrays[arr.0].kind == ArrayKind::Local => {
                let fp = Fp {
                    arr: arr.0,
                    addr,
                    map,
                };
                if let Some(&src) = avail.get(&fp) {
                    // Matched footprint: forward through a register move.
                    a.insts[id.0 as usize] = AInst::Move {
                        op: VMove::Mov,
                        dst,
                        a: src,
                        b: 0,
                    };
                    *changed = true;
                }
            }
            AInst::Loop { body, .. } => {
                // Conservative: a loop body may overwrite any local
                // array, so forwardings do not survive across the loop
                // boundary, and the body starts with an empty
                // availability set.
                avail.clear();
                scalrep_block(a, body, arrays, changed);
            }
            _ => {}
        }
    }
}

/// Alignment detection under the all-aligned assumption (twin of
/// [`crate::passes::detect_alignment`] with zero base offsets, the shape
/// the `align` pass runs). Returns whether any mark changed.
pub fn align_block(a: &mut Arena, block: BlockId, base_offsets: &[usize]) -> bool {
    let mut env: HashMap<VarId, IntervalCongruence> = HashMap::new();
    let mut changed = false;
    align_walk(a, block, &mut env, base_offsets, &mut changed);
    changed
}

fn align_walk(
    a: &mut Arena,
    block: BlockId,
    env: &mut HashMap<VarId, IntervalCongruence>,
    base_offsets: &[usize],
    changed: &mut bool,
) {
    let ids = a.blocks[block.0 as usize].clone();
    for id in ids {
        match a.insts[id.0 as usize] {
            AInst::GLoad {
                arr,
                addr,
                map,
                aligned,
                ..
            }
            | AInst::GStore {
                arr,
                addr,
                map,
                aligned,
                ..
            } => {
                let mark = if a.maps.get(map).contiguous_bytes() != Some(16) {
                    // Only full-width contiguous accesses have aligned
                    // instruction variants.
                    false
                } else {
                    let base = base_offsets[arr.0] as i64;
                    let mut v = IntervalCongruence::constant(a.exprs.constant(addr));
                    for &(coeff, var) in a.exprs.terms(addr) {
                        let val = env
                            .get(&var)
                            .copied()
                            .unwrap_or_else(IntervalCongruence::top);
                        v = v.add(&IntervalCongruence::constant(coeff).mul(&val));
                    }
                    v = v.add(&IntervalCongruence::constant(base));
                    v.divisible_by(crate::passes::align::ALIGN_CLASSES as i64)
                };
                if mark != aligned {
                    match &mut a.insts[id.0 as usize] {
                        AInst::GLoad { aligned, .. } | AInst::GStore { aligned, .. } => {
                            *aligned = mark;
                        }
                        _ => unreachable!(),
                    }
                    *changed = true;
                }
            }
            AInst::Loop {
                var,
                name,
                start,
                end,
                step,
                body,
            } => {
                let spec = LoopSpec::new(a.syms.get(name), start, end, step);
                let value = loop_index_value(&spec);
                let saved = env.insert(var, value);
                align_walk(a, body, env, base_offsets, changed);
                match saved {
                    Some(s) => {
                        env.insert(var, s);
                    }
                    None => {
                        env.remove(&var);
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::passes;

    fn gemv_like_body() -> (Vec<Inst>, Vec<ArrayDecl>) {
        let mut b = KernelBuilder::new("t");
        let x = b.input("x", 16);
        let y = b.output("y", 16);
        let t = b.local("t0", 4);
        b.for_loop("i", 0, 16, 4, |b, i| {
            let v = b.load(x, AffineExpr::var(i), MemMap::horizontal(4));
            b.store(v, t, AffineExpr::constant(0), MemMap::horizontal(4));
            let w = b.load(t, AffineExpr::constant(0), MemMap::horizontal(4));
            b.store(w, y, AffineExpr::var(i), MemMap::horizontal(4));
        });
        let k = b.finish(0);
        (k.versions[0].body.clone(), k.arrays)
    }

    #[test]
    fn round_trip_is_identity() {
        let (body, _) = gemv_like_body();
        let (arena, root) = Arena::from_body(&body);
        assert_eq!(arena.to_body(root), body);
    }

    #[test]
    fn interning_dedups_expressions_and_maps() {
        let (body, _) = gemv_like_body();
        let (arena, _) = Arena::from_body(&body);
        // Addresses: var(i) (used twice) and constant(0) (used twice).
        assert_eq!(arena.exprs.len(), 2);
        assert_eq!(arena.maps.maps.len(), 1);
    }

    #[test]
    fn fingerprint_is_content_addressed() {
        let (body, _) = gemv_like_body();
        let (a1, r1) = Arena::from_body(&body);
        let (a2, r2) = Arena::from_body(&body);
        assert_eq!(a1.fingerprint(r1), a2.fingerprint(r2));
        // A semantically different body fingerprints differently.
        let mut other = body.clone();
        other.pop();
        let (a3, r3) = Arena::from_body(&other);
        assert_ne!(a1.fingerprint(r1), a3.fingerprint(r3));
    }

    /// Each arena pass agrees with its tree twin on this body, for every
    /// unroll policy (deeper coverage lives in
    /// `tests/arena_equivalence.rs`).
    #[test]
    fn arena_passes_match_tree_passes() {
        for policy in [
            UnrollPolicy::None,
            UnrollPolicy::Full { max_trip: 8 },
            UnrollPolicy::Factor { factor: 2 },
        ] {
            let (body, arrays) = gemv_like_body();

            let mut tree = passes::unroll(body.clone(), policy);
            tree = passes::scalar_replacement(tree, &arrays);
            tree = passes::copy_prop(tree);
            tree = passes::dce(tree, &arrays);
            passes::detect_alignment(&mut tree, &vec![0; arrays.len()]);

            let (mut arena, root) = Arena::from_body(&body);
            unroll_block(&mut arena, root, policy);
            scalar_replacement_block(&mut arena, root, &arrays);
            copy_prop_block(&mut arena, root);
            dce_block(&mut arena, root, &arrays);
            align_block(&mut arena, root, &vec![0; arrays.len()]);

            assert_eq!(arena.to_body(root), tree, "policy {policy:?}");
        }
    }

    #[test]
    fn change_tracking_reaches_fixpoint() {
        let (body, arrays) = gemv_like_body();
        let (mut arena, root) = Arena::from_body(&body);
        assert!(unroll_block(
            &mut arena,
            root,
            UnrollPolicy::Full { max_trip: 8 }
        ));
        assert!(scalar_replacement_block(&mut arena, root, &arrays));
        assert!(copy_prop_block(&mut arena, root));
        assert!(dce_block(&mut arena, root, &arrays));
        // Second runs find nothing to do.
        assert!(!scalar_replacement_block(&mut arena, root, &arrays));
        assert!(!copy_prop_block(&mut arena, root));
        assert!(!dce_block(&mut arena, root, &arrays));
        let first = align_block(&mut arena, root, &vec![0; arrays.len()]);
        assert!(first);
        assert!(!align_block(&mut arena, root, &vec![0; arrays.len()]));
    }
}
