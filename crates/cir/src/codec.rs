//! A versioned binary codec for [`Kernel`]s.
//!
//! The compile service persists finished kernels in an on-disk cache so a
//! daemon restart does not recompile the world. Entries outlive the
//! process that wrote them, so the format is explicit about everything the
//! in-memory representation leaves to the compiler: integer widths are
//! fixed (little-endian), every enum is tagged, and the whole payload is
//! self-describing enough that [`decode_kernel`] can *reject* — never
//! misinterpret — bytes from a different format revision or a corrupted
//! file.
//!
//! **Integrity is layered.** This codec validates structure (tags in
//! range, lengths consistent, [`MemMap`] invariants re-checked through the
//! public constructors); the disk-cache layer on top adds a whole-payload
//! checksum and a key fingerprint so bit rot is caught before decoding is
//! attempted. A decode failure is an ordinary [`CodecError`], not a panic:
//! corrupt cache entries must be quarantined by the caller, not take the
//! daemon down.
//!
//! The encoding is deterministic: equal kernels produce identical bytes
//! (field order is fixed, maps are stored in their canonical lane order),
//! which makes byte-level comparison a valid cache-entry identity check.

use crate::ir::{
    ArrayDecl, ArrayKind, Inst, Kernel, KernelVersion, OverheadKind, VArith, VMove, VWidth,
};
use crate::map::MemMap;
use lgen_absint::AffineExpr;
use std::fmt;

/// Format revision; bump on any layout change so old entries are rejected
/// (and recompiled) instead of misread.
pub const CODEC_VERSION: u32 = 1;

/// Why a byte stream failed to decode back into a [`Kernel`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended before the structure was complete.
    Truncated,
    /// A tag byte (enum discriminant) was out of range.
    BadTag(&'static str, u8),
    /// The version field names a revision this build does not read.
    BadVersion(u32),
    /// A length or invariant check failed (e.g. a [`MemMap`] with
    /// duplicate lanes).
    Invalid(&'static str),
    /// Trailing bytes followed a structurally complete kernel.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated kernel encoding"),
            CodecError::BadTag(what, tag) => write!(f, "bad {what} tag {tag}"),
            CodecError::BadVersion(v) => {
                write!(
                    f,
                    "kernel codec version {v} (this build reads {CODEC_VERSION})"
                )
            }
            CodecError::Invalid(what) => write!(f, "invalid {what}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after kernel"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Serializes a kernel to the versioned binary format.
pub fn encode_kernel(kernel: &Kernel) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(&CODEC_VERSION.to_le_bytes());
    put_str(&mut out, &kernel.name);
    put_len(&mut out, kernel.arrays.len());
    for a in &kernel.arrays {
        put_str(&mut out, &a.name);
        put_u64(&mut out, a.len as u64);
        out.push(match a.kind {
            ArrayKind::Input => 0,
            ArrayKind::Output => 1,
            ArrayKind::InOut => 2,
            ArrayKind::Local => 3,
        });
    }
    put_len(&mut out, kernel.versions.len());
    for v in &kernel.versions {
        match &v.required_offsets {
            None => out.push(0),
            Some(reqs) => {
                out.push(1);
                put_len(&mut out, reqs.len());
                for r in reqs {
                    match r {
                        None => out.push(0),
                        Some(off) => {
                            out.push(1);
                            put_u64(&mut out, *off as u64);
                        }
                    }
                }
            }
        }
        put_insts(&mut out, &v.body);
    }
    put_u64(&mut out, kernel.nreg as u64);
    put_u64(&mut out, kernel.nvars as u64);
    put_u64(&mut out, kernel.flops);
    out
}

/// Deserializes a kernel; rejects other versions, corrupt structure, and
/// trailing bytes.
pub fn decode_kernel(bytes: &[u8]) -> Result<Kernel, CodecError> {
    let mut r = Reader { bytes, pos: 0 };
    let version = r.u32()?;
    if version != CODEC_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let name = r.string()?;
    let narrays = r.len()?;
    let mut arrays = Vec::with_capacity(narrays.min(1024));
    for _ in 0..narrays {
        let name = r.string()?;
        let len = r.u64()? as usize;
        let kind = match r.u8()? {
            0 => ArrayKind::Input,
            1 => ArrayKind::Output,
            2 => ArrayKind::InOut,
            3 => ArrayKind::Local,
            t => return Err(CodecError::BadTag("array kind", t)),
        };
        arrays.push(ArrayDecl { name, len, kind });
    }
    let nversions = r.len()?;
    if nversions == 0 {
        return Err(CodecError::Invalid("kernel with no versions"));
    }
    let mut versions = Vec::with_capacity(nversions.min(64));
    for _ in 0..nversions {
        let required_offsets = match r.u8()? {
            0 => None,
            1 => {
                let n = r.len()?;
                let mut reqs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    reqs.push(match r.u8()? {
                        0 => None,
                        1 => Some(r.u64()? as usize),
                        t => return Err(CodecError::BadTag("required offset", t)),
                    });
                }
                Some(reqs)
            }
            t => return Err(CodecError::BadTag("version requirements", t)),
        };
        let body = r.insts()?;
        versions.push(KernelVersion {
            required_offsets,
            body,
        });
    }
    let nreg = r.u64()? as u32;
    let nvars = r.u64()? as usize;
    let flops = r.u64()?;
    if r.pos != r.bytes.len() {
        return Err(CodecError::TrailingBytes(r.bytes.len() - r.pos));
    }
    Ok(Kernel {
        name,
        arrays,
        versions,
        nreg,
        nvars,
        flops,
    })
}

// ---- writer helpers ----

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_len(out: &mut Vec<u8>, n: usize) {
    put_u64(out, n as u64);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_len(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

fn put_width(out: &mut Vec<u8>, w: VWidth) {
    out.push(match w {
        VWidth::S => 0,
        VWidth::D => 1,
        VWidth::Q => 2,
    });
}

fn put_affine(out: &mut Vec<u8>, e: &AffineExpr) {
    put_len(out, e.terms.len());
    for &(coeff, var) in &e.terms {
        put_i64(out, coeff);
        put_u64(out, var as u64);
    }
    put_i64(out, e.constant);
}

fn put_map(out: &mut Vec<u8>, m: &MemMap) {
    out.push(m.is_broadcast() as u8);
    put_len(out, m.entries().len());
    for &(off, lane) in m.entries() {
        put_i64(out, off);
        out.push(lane);
    }
}

fn put_insts(out: &mut Vec<u8>, insts: &[Inst]) {
    put_len(out, insts.len());
    for inst in insts {
        match inst {
            Inst::GLoad {
                dst,
                arr,
                addr,
                map,
                aligned,
            } => {
                out.push(0);
                put_u64(out, *dst as u64);
                put_u64(out, arr.0 as u64);
                put_affine(out, addr);
                put_map(out, map);
                out.push(*aligned as u8);
            }
            Inst::GStore {
                src,
                arr,
                addr,
                map,
                aligned,
            } => {
                out.push(1);
                put_u64(out, *src as u64);
                put_u64(out, arr.0 as u64);
                put_affine(out, addr);
                put_map(out, map);
                out.push(*aligned as u8);
            }
            Inst::Arith { op, dst, a, b } => {
                out.push(2);
                put_varith(out, *op);
                put_u64(out, *dst as u64);
                put_u64(out, *a as u64);
                put_u64(out, *b as u64);
            }
            Inst::Move { op, dst, a, b } => {
                out.push(3);
                put_vmove(out, *op);
                put_u64(out, *dst as u64);
                put_u64(out, *a as u64);
                put_u64(out, *b as u64);
            }
            Inst::Overhead { kind, count } => {
                out.push(4);
                out.push(match kind {
                    OverheadKind::Addr => 0,
                    OverheadKind::Branch => 1,
                    OverheadKind::Call => 2,
                });
                put_u64(out, *count as u64);
            }
            Inst::Loop {
                var,
                name,
                start,
                end,
                step,
                body,
            } => {
                out.push(5);
                put_u64(out, *var as u64);
                put_str(out, name);
                put_i64(out, *start);
                put_i64(out, *end);
                put_i64(out, *step);
                put_insts(out, body);
            }
        }
    }
}

fn put_varith(out: &mut Vec<u8>, op: VArith) {
    match op {
        VArith::Add(w) => {
            out.push(0);
            put_width(out, w);
        }
        VArith::Sub(w) => {
            out.push(1);
            put_width(out, w);
        }
        VArith::Mul(w) => {
            out.push(2);
            put_width(out, w);
        }
        VArith::Hadd => out.push(3),
        VArith::Fma(w) => {
            out.push(4);
            put_width(out, w);
        }
        VArith::MulLane(w, lane) => {
            out.push(5);
            put_width(out, w);
            out.push(lane);
        }
        VArith::FmaLane(w, lane) => {
            out.push(6);
            put_width(out, w);
            out.push(lane);
        }
        VArith::Pairwise => out.push(7),
    }
}

fn put_vmove(out: &mut Vec<u8>, op: VMove) {
    match op {
        VMove::Mov => out.push(0),
        VMove::Zero => out.push(1),
        VMove::Splat(lane) => {
            out.push(2);
            out.push(lane);
        }
        VMove::Shuf(sel) => {
            out.push(3);
            out.extend_from_slice(&sel);
        }
        VMove::SetLane(lane) => {
            out.push(4);
            out.push(lane);
        }
        VMove::GetLane(lane) => {
            out.push(5);
            out.push(lane);
        }
    }
}

// ---- reader ----

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], CodecError> {
        if self.bytes.len() - self.pos < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// A length that must still be representable by the remaining input
    /// (every element is ≥ 1 byte), so a corrupted huge length cannot
    /// drive a pre-allocation or a long loop.
    fn len(&mut self) -> Result<usize, CodecError> {
        let n = self.u64()? as usize;
        if n > self.bytes.len() - self.pos {
            return Err(CodecError::Truncated);
        }
        Ok(n)
    }

    fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(CodecError::BadTag("bool", t)),
        }
    }

    fn string(&mut self) -> Result<String, CodecError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Invalid("utf-8 string"))
    }

    fn width(&mut self) -> Result<VWidth, CodecError> {
        match self.u8()? {
            0 => Ok(VWidth::S),
            1 => Ok(VWidth::D),
            2 => Ok(VWidth::Q),
            t => Err(CodecError::BadTag("vector width", t)),
        }
    }

    fn affine(&mut self) -> Result<AffineExpr, CodecError> {
        let n = self.len()?;
        let mut terms = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let coeff = self.i64()?;
            let var = self.u64()? as usize;
            terms.push((coeff, var));
        }
        let constant = self.i64()?;
        // Re-normalize through the public API so decoded expressions obey
        // the sorted/nonzero/distinct invariant even if the bytes did not.
        let mut e = AffineExpr::constant(constant);
        for (coeff, var) in terms {
            e = e.plus(&AffineExpr::scaled(coeff, var));
        }
        Ok(e)
    }

    fn map(&mut self) -> Result<MemMap, CodecError> {
        let broadcast = self.bool()?;
        let n = self.len()?;
        if !(1..=4).contains(&n) {
            return Err(CodecError::Invalid("memory map lane count"));
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let off = self.i64()?;
            let lane = self.u8()?;
            entries.push((off, lane));
        }
        if broadcast {
            // The only broadcast constructor is `splat(n)`: offsets all 0,
            // lanes dense from 0.
            let expect: Vec<(i64, u8)> = (0..n).map(|i| (0, i as u8)).collect();
            if entries != expect {
                return Err(CodecError::Invalid("broadcast memory map"));
            }
            return Ok(MemMap::splat(n));
        }
        for w in entries.windows(2) {
            if w[0].1 >= w[1].1 {
                return Err(CodecError::Invalid("memory map lane order"));
            }
        }
        if entries.iter().any(|&(_, l)| l > 3) {
            return Err(CodecError::Invalid("memory map lane index"));
        }
        Ok(MemMap::from_entries(entries))
    }

    fn varith(&mut self) -> Result<VArith, CodecError> {
        Ok(match self.u8()? {
            0 => VArith::Add(self.width()?),
            1 => VArith::Sub(self.width()?),
            2 => VArith::Mul(self.width()?),
            3 => VArith::Hadd,
            4 => VArith::Fma(self.width()?),
            5 => VArith::MulLane(self.width()?, self.u8()?),
            6 => VArith::FmaLane(self.width()?, self.u8()?),
            7 => VArith::Pairwise,
            t => return Err(CodecError::BadTag("arith op", t)),
        })
    }

    fn vmove(&mut self) -> Result<VMove, CodecError> {
        Ok(match self.u8()? {
            0 => VMove::Mov,
            1 => VMove::Zero,
            2 => VMove::Splat(self.u8()?),
            3 => VMove::Shuf(self.take(4)?.try_into().expect("4 bytes")),
            4 => VMove::SetLane(self.u8()?),
            5 => VMove::GetLane(self.u8()?),
            t => return Err(CodecError::BadTag("move op", t)),
        })
    }

    fn insts(&mut self) -> Result<Vec<Inst>, CodecError> {
        let n = self.len()?;
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(match self.u8()? {
                0 => Inst::GLoad {
                    dst: self.u64()? as u32,
                    arr: crate::ir::ArrayId(self.u64()? as usize),
                    addr: self.affine()?,
                    map: self.map()?,
                    aligned: self.bool()?,
                },
                1 => Inst::GStore {
                    src: self.u64()? as u32,
                    arr: crate::ir::ArrayId(self.u64()? as usize),
                    addr: self.affine()?,
                    map: self.map()?,
                    aligned: self.bool()?,
                },
                2 => Inst::Arith {
                    op: self.varith()?,
                    dst: self.u64()? as u32,
                    a: self.u64()? as u32,
                    b: self.u64()? as u32,
                },
                3 => Inst::Move {
                    op: self.vmove()?,
                    dst: self.u64()? as u32,
                    a: self.u64()? as u32,
                    b: self.u64()? as u32,
                },
                4 => Inst::Overhead {
                    kind: match self.u8()? {
                        0 => OverheadKind::Addr,
                        1 => OverheadKind::Branch,
                        2 => OverheadKind::Call,
                        t => return Err(CodecError::BadTag("overhead kind", t)),
                    },
                    count: self.u64()? as u16,
                },
                5 => Inst::Loop {
                    var: self.u64()? as usize,
                    name: self.string()?,
                    start: self.i64()?,
                    end: self.i64()?,
                    step: self.i64()?,
                    body: self.insts()?,
                },
                t => return Err(CodecError::BadTag("instruction", t)),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::ir::ArrayId;

    fn sample_kernel() -> Kernel {
        let mut b = KernelBuilder::new("roundtrip");
        let x = b.input("x", 8);
        let y = b.output("y", 8);
        let t = b.local("t0", 4);
        b.for_loop("i", 0, 8, 4, |b, i| {
            let vx = b.load(x, AffineExpr::var(i), MemMap::horizontal(4));
            let s = b.load(x, AffineExpr::var(i), MemMap::splat(2));
            let acc = b.zero();
            b.arith_acc(VArith::Fma(VWidth::Q), acc, vx, s);
            let sh = b.mov_op(VMove::Shuf([3, 2, 1, 0]), acc, acc);
            b.store(sh, t, AffineExpr::constant(0), MemMap::vertical(3, 4));
            b.store(
                sh,
                y,
                AffineExpr::var(i).plus(&AffineExpr::constant(2)),
                MemMap::from_entries(vec![(7, 0), (1, 2)]),
            );
        });
        b.overhead(OverheadKind::Branch, 3);
        let mut k = b.finish(128);
        // Exercise alignment versions too.
        let fallback = k.versions[0].clone();
        k.versions.insert(
            0,
            KernelVersion {
                required_offsets: Some(vec![Some(0), None]),
                body: fallback.body.clone(),
            },
        );
        assert_eq!(k.param_ids(), vec![ArrayId(0), ArrayId(1)]);
        k
    }

    #[test]
    fn roundtrip_is_identity() {
        let k = sample_kernel();
        let bytes = encode_kernel(&k);
        let back = decode_kernel(&bytes).unwrap();
        assert_eq!(k, back);
        // Deterministic: encoding the decoded kernel gives identical bytes.
        assert_eq!(bytes, encode_kernel(&back));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut bytes = encode_kernel(&sample_kernel());
        bytes[0] = 0xff;
        assert!(matches!(
            decode_kernel(&bytes),
            Err(CodecError::BadVersion(_))
        ));
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected() {
        let bytes = encode_kernel(&sample_kernel());
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_kernel(&bytes[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(decode_kernel(&extended), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn single_byte_corruption_never_panics() {
        let bytes = encode_kernel(&sample_kernel());
        // Flip every byte in turn: decoding must either fail cleanly or
        // produce *some* kernel — never panic (the disk cache's checksum
        // catches the silent-success case before this layer runs).
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x5a;
            let _ = decode_kernel(&corrupt);
        }
    }

    #[test]
    fn compiled_kernels_roundtrip() {
        // End-to-end shape: real kernels from the Σ-LL pipeline are
        // exercised by the lgen-core disk-cache tests; here a broadcast
        // map plus lane ops cover the remaining constructors.
        let k = sample_kernel();
        let bytes = encode_kernel(&k);
        let back = decode_kernel(&bytes).unwrap();
        assert_eq!(back.static_size(), k.static_size());
        assert_eq!(back.flops, 128);
    }
}
