//! Lowering of C-IR instructions to concrete machine opcode sequences.
//!
//! Lowering happens "only one step before unparsing" (§3.1): generic loads
//! and stores stay abstract through every optimization pass, and this module
//! decides — per ISA and per memory map — which concrete instruction
//! sequence implements each access. The same descriptors drive both the
//! dynamic trace emitted by the interpreter and the C text produced by the
//! unparser, so the code that is measured is the code that is printed.

use crate::ir::{VArith, VMove, VReg, VWidth};
use crate::map::MemMap;
use lgen_isa::{MOp, VectorIsa};

/// An operand slot in a lowered sequence: either a C-IR virtual register or
/// a sequence-local temporary.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Slot {
    /// A kernel virtual register.
    Reg(VReg),
    /// A temporary local to one lowered sequence.
    Tmp(u32),
}

/// One machine instruction of a lowered sequence.
///
/// `mem_off` is the float offset added to the C-IR instruction's base
/// address for memory operations (e.g. the `+2` of the `_mm_load_ss(addr+2)`
/// in the paper's Fig. 3.2 three-element load).
#[derive(Clone, Debug, PartialEq)]
pub struct LoweredOp {
    /// The machine opcode.
    pub op: MOp,
    /// Destination slot, if any.
    pub dst: Option<Slot>,
    /// Source slots.
    pub srcs: Vec<Slot>,
    /// For memory ops: offset in floats from the instruction's address.
    pub mem_off: Option<i64>,
}

impl LoweredOp {
    fn reg(op: MOp, dst: Slot, srcs: Vec<Slot>) -> Self {
        LoweredOp {
            op,
            dst: Some(dst),
            srcs,
            mem_off: None,
        }
    }

    fn load(op: MOp, dst: Slot, off: i64) -> Self {
        LoweredOp {
            op,
            dst: Some(dst),
            srcs: Vec::new(),
            mem_off: Some(off),
        }
    }

    fn store(op: MOp, src: Slot, off: i64) -> Self {
        LoweredOp {
            op,
            dst: None,
            srcs: vec![src],
            mem_off: Some(off),
        }
    }
}

/// Lowers a generic load of `map` into `dst` on `isa`.
///
/// `aligned` is the alignment-detection verdict: on SSSE3 it selects
/// `_mm_load_ps` over `_mm_loadu_ps` for full-width accesses (§3.2); it is
/// ignored on NEON and scalar targets, where the instruction choice does not
/// depend on provable alignment.
///
/// # Panics
///
/// Panics if the map shape is not implementable on the ISA (e.g. a 4-lane
/// map on the scalar ISA) — the code generator must not produce such code.
pub fn lower_load(isa: VectorIsa, dst: VReg, map: &MemMap, aligned: bool) -> Vec<LoweredOp> {
    let d = Slot::Reg(dst);
    match isa {
        VectorIsa::Ssse3 => lower_load_ssse3(d, map, aligned),
        VectorIsa::Neon => lower_load_neon(d, map),
        VectorIsa::Scalar => {
            assert_eq!(
                map.lanes(),
                1,
                "scalar ISA cannot load {} lanes",
                map.lanes()
            );
            vec![LoweredOp::load(MOp::FLoad, d, map.entries()[0].0)]
        }
    }
}

fn lower_load_ssse3(d: Slot, map: &MemMap, aligned: bool) -> Vec<LoweredOp> {
    if map.is_broadcast() {
        return vec![LoweredOp::load(MOp::MmLoad1Ps, d, 0)];
    }
    if map.is_horizontal() {
        return match map.lanes() {
            4 => vec![LoweredOp::load(
                if aligned {
                    MOp::MmLoadAPs
                } else {
                    MOp::MmLoadUPs
                },
                d,
                0,
            )],
            // Fig. 3.2: loadl_pi + load_ss + shuffle.
            3 => vec![
                LoweredOp::load(MOp::MmLoadLPi, Slot::Tmp(0), 0),
                LoweredOp::load(MOp::MmLoadSs, Slot::Tmp(1), 2),
                LoweredOp::reg(MOp::MmShufPs, d, vec![Slot::Tmp(0), Slot::Tmp(1)]),
            ],
            2 => vec![LoweredOp::load(MOp::MmLoadLPi, d, 0)],
            _ => vec![LoweredOp::load(MOp::MmLoadSs, d, 0)],
        };
    }
    // Vertical / arbitrary map: per-element loads combined with unpacks
    // (the classic column gather).
    let entries = map.entries();
    if entries.len() == 1 {
        return vec![LoweredOp::load(MOp::MmLoadSs, d, entries[0].0)];
    }
    let mut seq = Vec::new();
    for (i, &(off, _lane)) in entries.iter().enumerate() {
        seq.push(LoweredOp::load(MOp::MmLoadSs, Slot::Tmp(i as u32), off));
    }
    // Combine: unpack pairs, then merge.
    match entries.len() {
        2 => seq.push(LoweredOp::reg(
            MOp::MmUnpckPs,
            d,
            vec![Slot::Tmp(0), Slot::Tmp(1)],
        )),
        3 => {
            seq.push(LoweredOp::reg(
                MOp::MmUnpckPs,
                Slot::Tmp(3),
                vec![Slot::Tmp(0), Slot::Tmp(1)],
            ));
            seq.push(LoweredOp::reg(
                MOp::MmShufPs,
                d,
                vec![Slot::Tmp(3), Slot::Tmp(2)],
            ));
        }
        _ => {
            seq.push(LoweredOp::reg(
                MOp::MmUnpckPs,
                Slot::Tmp(4),
                vec![Slot::Tmp(0), Slot::Tmp(1)],
            ));
            seq.push(LoweredOp::reg(
                MOp::MmUnpckPs,
                Slot::Tmp(5),
                vec![Slot::Tmp(2), Slot::Tmp(3)],
            ));
            seq.push(LoweredOp::reg(
                MOp::MmShufPs,
                d,
                vec![Slot::Tmp(4), Slot::Tmp(5)],
            ));
        }
    }
    seq
}

fn lower_load_neon(d: Slot, map: &MemMap) -> Vec<LoweredOp> {
    if map.is_broadcast() {
        return vec![LoweredOp::load(MOp::VldDup, d, 0)];
    }
    if map.is_horizontal() {
        return match map.lanes() {
            4 => vec![LoweredOp::load(MOp::VldQ, d, 0)],
            // Fig. 3.4 load side: vld1q + zero lane 3 via vsetq_lane.
            3 => vec![
                LoweredOp::load(MOp::VldQ, Slot::Tmp(0), 0),
                LoweredOp::reg(MOp::Vzero, Slot::Tmp(1), vec![]),
                LoweredOp::reg(MOp::VsetLane, d, vec![Slot::Tmp(0), Slot::Tmp(1)]),
            ],
            2 => vec![LoweredOp::load(MOp::VldD, d, 0)],
            _ => vec![LoweredOp::load(MOp::VldLane, d, 0)],
        };
    }
    // Vertical map: one lane load per element.
    map.entries()
        .iter()
        .map(|&(off, _)| LoweredOp::load(MOp::VldLane, d, off))
        .collect()
}

/// Lowers a generic store of `src` per `map` on `isa`.
///
/// # Panics
///
/// Panics on map shapes not implementable on the ISA (see [`lower_load`]).
pub fn lower_store(isa: VectorIsa, src: VReg, map: &MemMap, aligned: bool) -> Vec<LoweredOp> {
    assert!(!map.is_broadcast(), "cannot store a broadcast map");
    let s = Slot::Reg(src);
    match isa {
        VectorIsa::Ssse3 => lower_store_ssse3(s, map, aligned),
        VectorIsa::Neon => lower_store_neon(s, map),
        VectorIsa::Scalar => {
            assert_eq!(
                map.lanes(),
                1,
                "scalar ISA cannot store {} lanes",
                map.lanes()
            );
            vec![LoweredOp::store(MOp::FStore, s, map.entries()[0].0)]
        }
    }
}

fn lower_store_ssse3(s: Slot, map: &MemMap, aligned: bool) -> Vec<LoweredOp> {
    if map.is_horizontal() {
        return match map.lanes() {
            4 => vec![LoweredOp::store(
                if aligned {
                    MOp::MmStoreAPs
                } else {
                    MOp::MmStoreUPs
                },
                s,
                0,
            )],
            // Fig. 3.2: storel_pi + shuffle + store_ss.
            3 => vec![
                LoweredOp::store(MOp::MmStoreLPi, s, 0),
                LoweredOp::reg(MOp::MmShufPs, Slot::Tmp(0), vec![s, s]),
                LoweredOp::store(MOp::MmStoreSs, Slot::Tmp(0), 2),
            ],
            2 => vec![LoweredOp::store(MOp::MmStoreLPi, s, 0)],
            _ => vec![LoweredOp::store(MOp::MmStoreSs, s, 0)],
        };
    }
    // Vertical map: shuffle each lane down to lane 0 and store_ss.
    let mut seq = Vec::new();
    for (i, &(off, lane)) in map.entries().iter().enumerate() {
        if lane == 0 {
            seq.push(LoweredOp::store(MOp::MmStoreSs, s, off));
        } else {
            seq.push(LoweredOp::reg(
                MOp::MmShufPs,
                Slot::Tmp(i as u32),
                vec![s, s],
            ));
            seq.push(LoweredOp::store(MOp::MmStoreSs, Slot::Tmp(i as u32), off));
        }
    }
    seq
}

fn lower_store_neon(s: Slot, map: &MemMap) -> Vec<LoweredOp> {
    if map.is_horizontal() {
        return match map.lanes() {
            4 => vec![LoweredOp::store(MOp::VstQ, s, 0)],
            // Fig. 3.4 store side: vst1_f32 (two lanes) + vst1q_lane (third).
            3 => vec![
                LoweredOp::store(MOp::VstD, s, 0),
                LoweredOp::store(MOp::VstLane, s, 2),
            ],
            2 => vec![LoweredOp::store(MOp::VstD, s, 0)],
            _ => vec![LoweredOp::store(MOp::VstLane, s, 0)],
        };
    }
    map.entries()
        .iter()
        .map(|&(off, _)| LoweredOp::store(MOp::VstLane, s, off))
        .collect()
}

/// Lowers an arithmetic C-IR op.
///
/// # Panics
///
/// Panics on width/ISA combinations the code generator must not produce
/// (doubleword ops on SSSE3, vector ops on the scalar ISA).
pub fn lower_arith(isa: VectorIsa, op: VArith, dst: VReg, a: VReg, b: VReg) -> Vec<LoweredOp> {
    let d = Slot::Reg(dst);
    let (a, b) = (Slot::Reg(a), Slot::Reg(b));
    match isa {
        VectorIsa::Ssse3 => lower_arith_ssse3(op, d, a, b),
        VectorIsa::Neon => lower_arith_neon(op, d, a, b),
        VectorIsa::Scalar => lower_arith_scalar(op, d, a, b),
    }
}

fn lower_arith_ssse3(op: VArith, d: Slot, a: Slot, b: Slot) -> Vec<LoweredOp> {
    use VArith::*;
    match op {
        Add(VWidth::S) => vec![LoweredOp::reg(MOp::FAdd, d, vec![a, b])],
        Sub(VWidth::S) => vec![LoweredOp::reg(MOp::FAdd, d, vec![a, b])],
        Mul(VWidth::S) => vec![LoweredOp::reg(MOp::FMul, d, vec![a, b])],
        // SSSE3 has no doubleword forms: D-width ops are executed as Q.
        Add(_) | Sub(_) => vec![LoweredOp::reg(MOp::MmAddPs, d, vec![a, b])],
        Mul(_) => vec![LoweredOp::reg(MOp::MmMulPs, d, vec![a, b])],
        Hadd | Pairwise => vec![LoweredOp::reg(MOp::MmHaddPs, d, vec![a, b])],
        Fma(VWidth::S) => vec![
            LoweredOp::reg(MOp::FMul, Slot::Tmp(0), vec![a, b]),
            LoweredOp::reg(MOp::FAdd, d, vec![d, Slot::Tmp(0)]),
        ],
        Fma(_) => vec![
            LoweredOp::reg(MOp::MmMulPs, Slot::Tmp(0), vec![a, b]),
            LoweredOp::reg(MOp::MmAddPs, d, vec![d, Slot::Tmp(0)]),
        ],
        MulLane(_, _) => vec![
            LoweredOp::reg(MOp::MmShufPs, Slot::Tmp(0), vec![b, b]),
            LoweredOp::reg(MOp::MmMulPs, d, vec![a, Slot::Tmp(0)]),
        ],
        FmaLane(_, _) => vec![
            LoweredOp::reg(MOp::MmShufPs, Slot::Tmp(0), vec![b, b]),
            LoweredOp::reg(MOp::MmMulPs, Slot::Tmp(1), vec![a, Slot::Tmp(0)]),
            LoweredOp::reg(MOp::MmAddPs, d, vec![d, Slot::Tmp(1)]),
        ],
    }
}

fn lower_arith_neon(op: VArith, d: Slot, a: Slot, b: Slot) -> Vec<LoweredOp> {
    use VArith::*;
    let one = |m: MOp| vec![LoweredOp::reg(m, d, vec![a, b])];
    let acc = |m: MOp| vec![LoweredOp::reg(m, d, vec![d, a, b])];
    match op {
        Add(VWidth::Q) | Sub(VWidth::Q) => one(MOp::VaddQ),
        Add(_) | Sub(_) => one(MOp::VaddD),
        Mul(VWidth::Q) => one(MOp::VmulQ),
        Mul(_) => one(MOp::VmulD),
        Fma(VWidth::Q) => acc(MOp::VmlaQ),
        Fma(_) => acc(MOp::VmlaD),
        MulLane(VWidth::Q, _) => one(MOp::VmulLaneQ),
        MulLane(_, _) => one(MOp::VmulLaneD),
        FmaLane(VWidth::Q, _) => acc(MOp::VmlaLaneQ),
        FmaLane(_, _) => acc(MOp::VmlaLaneD),
        Pairwise => one(MOp::Vpadd),
        // NEON has no single-instruction 4-lane horizontal add: emulate the
        // SSE hadd semantics with two pairwise adds and a permute.
        Hadd => vec![
            LoweredOp::reg(MOp::Vpadd, Slot::Tmp(0), vec![a, a]),
            LoweredOp::reg(MOp::Vpadd, Slot::Tmp(1), vec![b, b]),
            LoweredOp::reg(MOp::Vperm, d, vec![Slot::Tmp(0), Slot::Tmp(1)]),
        ],
    }
}

fn lower_arith_scalar(op: VArith, d: Slot, a: Slot, b: Slot) -> Vec<LoweredOp> {
    use VArith::*;
    match op {
        Add(VWidth::S) | Sub(VWidth::S) => vec![LoweredOp::reg(MOp::FAdd, d, vec![a, b])],
        Mul(VWidth::S) => vec![LoweredOp::reg(MOp::FMul, d, vec![a, b])],
        Fma(VWidth::S) => vec![
            LoweredOp::reg(MOp::FMul, Slot::Tmp(0), vec![a, b]),
            LoweredOp::reg(MOp::FAdd, d, vec![d, Slot::Tmp(0)]),
        ],
        other => panic!("vector op {other:?} on the scalar ISA"),
    }
}

/// Lowers a register move / lane manipulation.
pub fn lower_move(isa: VectorIsa, op: VMove, dst: VReg, a: VReg, b: VReg) -> Vec<LoweredOp> {
    let d = Slot::Reg(dst);
    let (a, b) = (Slot::Reg(a), Slot::Reg(b));
    use VMove::*;
    match isa {
        VectorIsa::Ssse3 => match op {
            Mov => vec![LoweredOp::reg(MOp::MmMovAps, d, vec![a])],
            Zero => vec![LoweredOp::reg(MOp::MmSetZeroPs, d, vec![])],
            Splat(_) => vec![LoweredOp::reg(MOp::MmShufPs, d, vec![a, a])],
            Shuf(_) => vec![LoweredOp::reg(MOp::MmShufPs, d, vec![a, b])],
            SetLane(_) => vec![
                LoweredOp::reg(MOp::MmShufPs, Slot::Tmp(0), vec![a, b]),
                LoweredOp::reg(MOp::MmShufPs, d, vec![a, Slot::Tmp(0)]),
            ],
            GetLane(_) => vec![LoweredOp::reg(MOp::MmShufPs, d, vec![a, a])],
        },
        VectorIsa::Neon => match op {
            Mov => vec![LoweredOp::reg(MOp::Vmov, d, vec![a])],
            Zero => vec![LoweredOp::reg(MOp::Vzero, d, vec![])],
            Splat(_) => vec![LoweredOp::reg(MOp::VdupLane, d, vec![a])],
            Shuf(_) => vec![LoweredOp::reg(MOp::Vperm, d, vec![a, b])],
            SetLane(_) => vec![LoweredOp::reg(MOp::VsetLane, d, vec![a, b])],
            GetLane(_) => vec![LoweredOp::reg(MOp::VgetLane, d, vec![a])],
        },
        VectorIsa::Scalar => match op {
            Mov | Splat(_) | GetLane(_) => vec![LoweredOp::reg(MOp::FMov, d, vec![a])],
            Zero => vec![LoweredOp::reg(MOp::FMov, d, vec![])],
            SetLane(_) => vec![LoweredOp::reg(MOp::FMov, d, vec![b])],
            Shuf(_) => panic!("shuffle on the scalar ISA"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_width_load_respects_alignment_verdict() {
        let seq = lower_load(VectorIsa::Ssse3, 0, &MemMap::horizontal(4), true);
        assert_eq!(seq.len(), 1);
        assert_eq!(seq[0].op, MOp::MmLoadAPs);
        let seq = lower_load(VectorIsa::Ssse3, 0, &MemMap::horizontal(4), false);
        assert_eq!(seq[0].op, MOp::MmLoadUPs);
        // NEON ignores the verdict — vld1q handles any alignment.
        let seq = lower_load(VectorIsa::Neon, 0, &MemMap::horizontal(4), false);
        assert_eq!(seq[0].op, MOp::VldQ);
    }

    /// The mismatched NEON 3-element implementations of Fig. 3.4.
    #[test]
    fn fig_3_4_mismatched_three_element_access() {
        let load: Vec<MOp> = lower_load(VectorIsa::Neon, 0, &MemMap::horizontal(3), false)
            .iter()
            .map(|l| l.op)
            .collect();
        assert_eq!(load, vec![MOp::VldQ, MOp::Vzero, MOp::VsetLane]);
        let store: Vec<MOp> = lower_store(VectorIsa::Neon, 0, &MemMap::horizontal(3), false)
            .iter()
            .map(|l| l.op)
            .collect();
        assert_eq!(store, vec![MOp::VstD, MOp::VstLane]);
    }

    /// The SSE 3-element sequences of Fig. 3.2.
    #[test]
    fn fig_3_2_three_element_sse() {
        let load: Vec<MOp> = lower_load(VectorIsa::Ssse3, 0, &MemMap::horizontal(3), false)
            .iter()
            .map(|l| l.op)
            .collect();
        assert_eq!(load, vec![MOp::MmLoadLPi, MOp::MmLoadSs, MOp::MmShufPs]);
        let store: Vec<MOp> = lower_store(VectorIsa::Ssse3, 0, &MemMap::horizontal(3), false)
            .iter()
            .map(|l| l.op)
            .collect();
        assert_eq!(store, vec![MOp::MmStoreLPi, MOp::MmShufPs, MOp::MmStoreSs]);
    }

    #[test]
    fn vertical_maps_gather_and_scatter() {
        let seq = lower_load(VectorIsa::Ssse3, 0, &MemMap::vertical(4, 8), false);
        let loads = seq.iter().filter(|l| l.op == MOp::MmLoadSs).count();
        assert_eq!(loads, 4);
        assert_eq!(seq.iter().filter(|l| l.op.touches_memory()).count(), 4);
        let seq = lower_load(VectorIsa::Neon, 0, &MemMap::vertical(3, 5), false);
        assert_eq!(seq.len(), 3);
        assert!(seq.iter().all(|l| l.op == MOp::VldLane));
        // Offsets follow the stride.
        assert_eq!(
            seq.iter().map(|l| l.mem_off.unwrap()).collect::<Vec<_>>(),
            vec![0, 5, 10]
        );
    }

    #[test]
    fn fma_expands_on_ssse3_but_not_neon() {
        let x86 = lower_arith(VectorIsa::Ssse3, VArith::Fma(VWidth::Q), 0, 1, 2);
        assert_eq!(
            x86.iter().map(|l| l.op).collect::<Vec<_>>(),
            vec![MOp::MmMulPs, MOp::MmAddPs]
        );
        let neon = lower_arith(VectorIsa::Neon, VArith::Fma(VWidth::Q), 0, 1, 2);
        assert_eq!(
            neon.iter().map(|l| l.op).collect::<Vec<_>>(),
            vec![MOp::VmlaQ]
        );
        // Doubleword on NEON.
        let neon_d = lower_arith(VectorIsa::Neon, VArith::Fma(VWidth::D), 0, 1, 2);
        assert_eq!(neon_d[0].op, MOp::VmlaD);
    }

    #[test]
    fn lane_multiplies_avoid_shuffles_on_neon() {
        // §2.2.2: NEON's by-scalar instructions avoid the shuffles x86 needs.
        let neon = lower_arith(VectorIsa::Neon, VArith::MulLane(VWidth::Q, 2), 0, 1, 2);
        assert_eq!(neon.len(), 1);
        let x86 = lower_arith(VectorIsa::Ssse3, VArith::MulLane(VWidth::Q, 2), 0, 1, 2);
        assert_eq!(x86.len(), 2);
    }

    #[test]
    #[should_panic(expected = "scalar ISA")]
    fn vector_op_on_scalar_isa_panics() {
        lower_arith(VectorIsa::Scalar, VArith::Add(VWidth::Q), 0, 1, 2);
    }
}
