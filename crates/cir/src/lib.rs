//! C-IR: LGen's C-like intermediate representation (paper §2.1.4, §3.1, §3.2).
//!
//! A [`Kernel`] is a loop nest over straight-line blocks of
//! vector/scalar instructions whose memory accesses are *generic loads and
//! stores* (§3.1): each carries an affine address and a [`MemMap`]
//! describing which memory offsets map to which vector lanes. Generic memory
//! ops are kept abstract through all code-level optimizations and lowered to
//! concrete ISA instructions only at the very end, which is what makes scalar
//! replacement work even when a store and the matching load would be
//! implemented by different instruction sequences (Fig. 3.4).
//!
//! The crate provides:
//!
//! * the IR itself ([`ir`], [`map`]) and a builder API ([`builder`]),
//! * code-level optimizations ([`passes`]): loop unrolling, scalar
//!   replacement, copy propagation, dead-code elimination, and alignment
//!   detection with alignment versioning (§3.2) — each registered as a
//!   first-class [`Pass`](passes::Pass) schedulable by a spec-string
//!   [`PassPipeline`] with per-pass timing, between-pass verification,
//!   fixpoint `repeat(...)` groups, and IR tracing,
//! * lowering of C-IR to machine opcodes per ISA ([`lower`]),
//! * a reference interpreter that executes kernels numerically while
//!   emitting the dynamic instruction trace ([`interp`]),
//! * a static verifier that re-proves the pass invariants (bounds,
//!   def-before-use, lane consistency) by abstract interpretation
//!   ([`verify`], [`diag`]),
//! * an unparser producing C-with-intrinsics source text ([`unparse`]),
//! * a versioned binary codec for persisting compiled kernels on disk
//!   ([`codec`]), used by the compile service's warm-start cache.

pub mod arena;
pub mod builder;
pub mod codec;
pub mod diag;
pub mod interp;
pub mod ir;
pub mod lower;
pub mod map;
pub mod passes;
pub mod unparse;
pub mod verify;

pub use arena::Arena;
pub use builder::KernelBuilder;
pub use codec::{decode_kernel, encode_kernel, CodecError, CODEC_VERSION};
pub use diag::{render, Check, Diagnostic};
pub use interp::{run_kernel, ExecError, MemLayout};
pub use ir::{
    merge_kernel_versions, ArrayDecl, ArrayId, ArrayKind, Inst, Kernel, KernelVersion,
    OverheadKind, VArith, VMove, VReg, VWidth,
};
pub use map::MemMap;
pub use passes::{PassCtx, PassPipeline, PassStats, PassTrace};
pub use verify::{verify_kernel, verify_stage, VerifyFailure, VerifyLevel};
