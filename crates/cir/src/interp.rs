//! Reference interpreter for C-IR kernels.
//!
//! Executes a kernel numerically (for correctness validation against naive
//! references, §5.1.4) while emitting the dynamic machine-instruction trace
//! through a [`TraceSink`] (for cycle measurement by `lgen-machine`). The
//! lowering of each C-IR instruction to machine opcodes is shared with the C
//! unparser, so the measured instruction stream is the printed one.

use crate::ir::{ArrayKind, Inst, Kernel, KernelVersion, VArith, VMove};
use crate::lower::{self, LoweredOp, Slot};
use crate::map::MemMap;
use lgen_absint::AffineExpr;
use lgen_isa::{MOp, MachInst, MemRef, TraceSink, VectorIsa};
use std::collections::HashMap;

/// Safety padding (floats) after each array, so that NEON's "load 4, keep 3"
/// trick (Fig. 3.4) never reads out of the buffer.
pub const ARRAY_PAD: usize = 4;

/// Register-id namespace for loop-variable counters (overhead ops).
const VAR_REG_BASE: u32 = 1 << 30;

/// Placement of the kernel's arrays in a flat byte-addressed memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemLayout {
    /// Byte base address of each array (declaration order).
    pub bases: Vec<usize>,
    total_floats: usize,
}

impl MemLayout {
    /// Lays out every array at a 64-byte boundary (the paper's default:
    /// "unless otherwise stated, all the arrays … were 16-byte aligned").
    pub fn aligned(kernel: &Kernel) -> Self {
        Self::with_float_offsets(kernel, &vec![0; kernel.param_ids().len()])
    }

    /// Lays out parameter array `i` at a 64-byte boundary plus
    /// `offsets[i]` floats — the misalignment protocol of Fig. 5.9
    /// ("allocated at an aligned memory address plus an offset").
    /// Locals are always aligned.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` does not have one entry per parameter array.
    pub fn with_float_offsets(kernel: &Kernel, offsets: &[usize]) -> Self {
        let nparams = kernel.arrays.iter().filter(|a| a.kind.is_param()).count();
        assert_eq!(
            offsets.len(),
            nparams,
            "need one offset per parameter array"
        );
        let mut bases = Vec::with_capacity(kernel.arrays.len());
        let mut cursor = 0usize; // floats
        let mut param_idx = 0usize;
        for decl in &kernel.arrays {
            // Round up to a 64-byte (16-float) boundary.
            cursor = cursor.div_ceil(16) * 16;
            let off = if decl.kind.is_param() {
                let o = offsets[param_idx];
                param_idx += 1;
                o
            } else {
                0
            };
            bases.push((cursor + off) * 4);
            cursor += off + decl.len + ARRAY_PAD;
        }
        MemLayout {
            bases,
            total_floats: cursor,
        }
    }

    /// Base offset of array `i` in floats modulo `nu`.
    pub fn float_offset_mod(&self, arr: usize, nu: usize) -> usize {
        (self.bases[arr] / 4) % nu
    }
}

/// Errors produced by kernel execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// Wrong number of argument slices.
    ArgCount {
        /// Expected parameter count.
        expected: usize,
        /// Provided argument count.
        got: usize,
    },
    /// An argument slice has the wrong length.
    ArgLen {
        /// Array name.
        name: String,
        /// Declared length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// An access fell outside its array (plus padding).
    OutOfBounds {
        /// Array name.
        name: String,
        /// Offending float index relative to the array base.
        index: i64,
    },
    /// An instruction marked `aligned` by the analysis reached an unaligned
    /// address at runtime — a soundness violation (must never happen;
    /// checked to validate Theorem 3.1 dynamically).
    AlignmentViolation {
        /// Array name.
        name: String,
        /// The unaligned byte address.
        byte_addr: usize,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::ArgCount { expected, got } => {
                write!(f, "expected {expected} arguments, got {got}")
            }
            ExecError::ArgLen {
                name,
                expected,
                got,
            } => {
                write!(f, "argument {name}: expected {expected} floats, got {got}")
            }
            ExecError::OutOfBounds { name, index } => {
                write!(f, "out-of-bounds access to {name} at float index {index}")
            }
            ExecError::AlignmentViolation { name, byte_addr } => {
                write!(
                    f,
                    "aligned instruction reached unaligned address {byte_addr} in {name}"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {}

struct Exec<'a, 'b> {
    kernel: &'a Kernel,
    layout: &'a MemLayout,
    isa: VectorIsa,
    sink: &'b mut dyn TraceSink,
    mem: Vec<f32>,
    regs: Vec<[f32; 4]>,
    env: HashMap<usize, i64>,
    next_tmp: u32,
}

/// Runs `kernel` on `args` (one mutable slice per parameter array, in
/// declaration order), placing arrays per `layout`, lowering to `isa`, and
/// streaming the dynamic instruction trace into `sink`.
///
/// # Errors
///
/// Returns [`ExecError`] on arity/length mismatches, out-of-bounds accesses
/// or dynamic alignment violations (see the variants).
///
/// # Example
///
/// ```
/// use lgen_cir::{KernelBuilder, MemMap, MemLayout, run_kernel, VArith, VWidth};
/// use lgen_absint::AffineExpr;
/// use lgen_isa::{VectorIsa, inst::NullSink};
///
/// let mut b = KernelBuilder::new("double4");
/// let x = b.input("x", 4);
/// let y = b.output("y", 4);
/// let vx = b.load(x, AffineExpr::constant(0), MemMap::horizontal(4));
/// let s = b.arith(VArith::Add(VWidth::Q), vx, vx);
/// b.store(s, y, AffineExpr::constant(0), MemMap::horizontal(4));
/// let k = b.finish(4);
///
/// let mut xv = vec![1.0, 2.0, 3.0, 4.0];
/// let mut yv = vec![0.0; 4];
/// let layout = MemLayout::aligned(&k);
/// run_kernel(&k, &mut [&mut xv, &mut yv], &layout, VectorIsa::Ssse3, &mut NullSink)?;
/// assert_eq!(yv, vec![2.0, 4.0, 6.0, 8.0]);
/// # Ok::<(), lgen_cir::ExecError>(())
/// ```
pub fn run_kernel(
    kernel: &Kernel,
    args: &mut [&mut [f32]],
    layout: &MemLayout,
    isa: VectorIsa,
    sink: &mut dyn TraceSink,
) -> Result<(), ExecError> {
    let params: Vec<usize> = kernel
        .arrays
        .iter()
        .enumerate()
        .filter(|(_, d)| d.kind.is_param())
        .map(|(i, _)| i)
        .collect();
    if args.len() != params.len() {
        return Err(ExecError::ArgCount {
            expected: params.len(),
            got: args.len(),
        });
    }
    for (slot, &arr) in args.iter().zip(&params) {
        let decl = &kernel.arrays[arr];
        if slot.len() != decl.len {
            return Err(ExecError::ArgLen {
                name: decl.name.clone(),
                expected: decl.len,
                got: slot.len(),
            });
        }
    }

    let mut exec = Exec {
        kernel,
        layout,
        isa,
        sink,
        mem: vec![0.0; layout.total_floats],
        regs: vec![[0.0; 4]; kernel.nreg as usize],
        env: HashMap::new(),
        next_tmp: VAR_REG_BASE / 2,
    };

    // Copy inputs into the flat memory.
    for (slot, &arr) in args.iter().zip(&params) {
        if matches!(kernel.arrays[arr].kind, ArrayKind::Input | ArrayKind::InOut) {
            let base = layout.bases[arr] / 4;
            exec.mem[base..base + slot.len()].copy_from_slice(slot);
        }
    }

    let version = select_version(kernel, layout, &params, exec.sink);
    let body = &kernel.versions[version].body;
    exec.block(body)?;

    // Copy outputs back.
    for (slot, &arr) in args.iter_mut().zip(&params) {
        if matches!(
            kernel.arrays[arr].kind,
            ArrayKind::Output | ArrayKind::InOut
        ) {
            let base = layout.bases[arr] / 4;
            slot.copy_from_slice(&exec.mem[base..base + slot.len()]);
        }
    }
    Ok(())
}

/// Picks the first matching alignment version, charging the runtime checks
/// of the dispatch chain (Listing 3.3) as overhead instructions.
fn select_version(
    kernel: &Kernel,
    layout: &MemLayout,
    params: &[usize],
    sink: &mut dyn TraceSink,
) -> usize {
    let matches = |v: &KernelVersion| -> bool {
        match &v.required_offsets {
            None => true,
            Some(reqs) => reqs.iter().zip(params).all(|(req, &arr)| match req {
                None => true,
                Some(r) => layout.float_offset_mod(arr, 4) == *r,
            }),
        }
    };
    for (i, v) in kernel.versions.iter().enumerate() {
        // Each tried version evaluates its alignment predicates.
        if let Some(reqs) = &v.required_offsets {
            for req in reqs.iter().flatten() {
                let _ = req;
                sink.emit(&MachInst::reg(MOp::IAddr, None, vec![]));
            }
            sink.emit(&MachInst::reg(MOp::Branch, None, vec![]));
        }
        if matches(v) {
            return i;
        }
    }
    kernel.versions.len() - 1
}

impl Exec<'_, '_> {
    fn block(&mut self, insts: &[Inst]) -> Result<(), ExecError> {
        for inst in insts {
            self.inst(inst)?;
        }
        Ok(())
    }

    fn addr_value(&self, e: &AffineExpr) -> i64 {
        e.terms.iter().map(|&(c, v)| c * self.env[&v]).sum::<i64>() + e.constant
    }

    fn reg(&mut self, r: u32) -> [f32; 4] {
        let idx = r as usize;
        if idx >= self.regs.len() {
            self.regs.resize(idx + 1, [0.0; 4]);
        }
        self.regs[idx]
    }

    fn set_reg(&mut self, r: u32, v: [f32; 4]) {
        let idx = r as usize;
        if idx >= self.regs.len() {
            self.regs.resize(idx + 1, [0.0; 4]);
        }
        self.regs[idx] = v;
    }

    /// Checks bounds and returns the absolute float index of `arr[fidx]`.
    fn check(&self, arr: crate::ir::ArrayId, fidx: i64) -> Result<usize, ExecError> {
        let decl = &self.kernel.arrays[arr.0];
        if fidx < 0 || fidx as usize >= decl.len + ARRAY_PAD {
            return Err(ExecError::OutOfBounds {
                name: decl.name.clone(),
                index: fidx,
            });
        }
        Ok(self.layout.bases[arr.0] / 4 + fidx as usize)
    }

    /// Emits the lowered machine ops for a C-IR instruction whose base
    /// address (in floats, absolute) is `abs_base`.
    fn emit_lowered(&mut self, seq: &[LoweredOp], abs_base: Option<usize>) {
        let tmp_base = self.next_tmp;
        let mut max_tmp = 0;
        for l in seq {
            let slot_id = |s: &Slot| match s {
                Slot::Reg(r) => *r,
                Slot::Tmp(t) => tmp_base + t,
            };
            if let Some(Slot::Tmp(t)) = l.dst {
                max_tmp = max_tmp.max(t + 1);
            }
            let mem = l.mem_off.map(|off| {
                let base = abs_base.expect("memory op without address") as i64;
                MemRef {
                    addr: ((base + off) * 4) as usize,
                    bytes: l.op.access_bytes(),
                }
            });
            self.sink.emit(&MachInst {
                op: l.op,
                dst: l.dst.as_ref().map(slot_id),
                srcs: l.srcs.iter().map(slot_id).collect(),
                mem,
            });
        }
        self.next_tmp += max_tmp;
    }

    fn inst(&mut self, inst: &Inst) -> Result<(), ExecError> {
        match inst {
            Inst::GLoad {
                dst,
                arr,
                addr,
                map,
                aligned,
            } => {
                let base = self.addr_value(addr);
                let abs = self.check(*arr, base + map.max_offset())? - map.max_offset() as usize;
                self.check(*arr, base)?;
                self.validate_alignment(*arr, abs, map, *aligned)?;
                let mut v = [0.0f32; 4];
                for &(off, lane) in map.entries() {
                    let idx = self.check(*arr, base + off)?;
                    v[lane as usize] = self.mem[idx];
                }
                self.set_reg(*dst, v);
                let seq = lower::lower_load(self.isa, *dst, map, *aligned);
                self.emit_lowered(&seq, Some(abs));
            }
            Inst::GStore {
                src,
                arr,
                addr,
                map,
                aligned,
            } => {
                let base = self.addr_value(addr);
                let abs = self.check(*arr, base)?;
                self.validate_alignment(*arr, abs, map, *aligned)?;
                let v = self.reg(*src);
                for &(off, lane) in map.entries() {
                    let idx = self.check(*arr, base + off)?;
                    self.mem[idx] = v[lane as usize];
                }
                let seq = lower::lower_store(self.isa, *src, map, *aligned);
                self.emit_lowered(&seq, Some(abs));
            }
            Inst::Arith { op, dst, a, b } => {
                let va = self.reg(*a);
                let vb = self.reg(*b);
                let mut vd = self.reg(*dst);
                eval_arith(*op, &mut vd, va, vb);
                self.set_reg(*dst, vd);
                let seq = lower::lower_arith(self.isa, *op, *dst, *a, *b);
                self.emit_lowered(&seq, None);
            }
            Inst::Move { op, dst, a, b } => {
                let va = self.reg(*a);
                let vb = self.reg(*b);
                let vd = eval_move(*op, va, vb);
                self.set_reg(*dst, vd);
                let seq = lower::lower_move(self.isa, *op, *dst, *a, *b);
                self.emit_lowered(&seq, None);
            }
            Inst::Overhead { kind, count } => {
                let op = match kind {
                    crate::ir::OverheadKind::Addr => MOp::IAddr,
                    crate::ir::OverheadKind::Branch => MOp::Branch,
                    crate::ir::OverheadKind::Call => MOp::CallOverhead,
                };
                for _ in 0..*count {
                    self.sink.emit(&MachInst::reg(op, None, vec![]));
                }
            }
            Inst::Loop {
                var,
                start,
                end,
                step,
                body,
                ..
            } => {
                let counter = VAR_REG_BASE + *var as u32;
                let mut k = *start;
                while k < *end {
                    self.env.insert(*var, k);
                    self.block(body)?;
                    // Loop bookkeeping: increment + compare-and-branch.
                    self.sink
                        .emit(&MachInst::reg(MOp::IAddr, Some(counter), vec![counter]));
                    self.sink
                        .emit(&MachInst::reg(MOp::Branch, None, vec![counter]));
                    k += *step;
                }
            }
        }
        Ok(())
    }

    /// Validates the alignment-detection verdict dynamically (Theorem 3.1:
    /// an access marked aligned must never reach an unaligned address).
    fn validate_alignment(
        &self,
        arr: crate::ir::ArrayId,
        abs_float: usize,
        map: &MemMap,
        aligned: bool,
    ) -> Result<(), ExecError> {
        if aligned && map.contiguous_bytes() == Some(16) && !(abs_float * 4).is_multiple_of(16) {
            return Err(ExecError::AlignmentViolation {
                name: self.kernel.arrays[arr.0].name.clone(),
                byte_addr: abs_float * 4,
            });
        }
        Ok(())
    }
}

fn eval_arith(op: VArith, d: &mut [f32; 4], a: [f32; 4], b: [f32; 4]) {
    use VArith::*;
    match op {
        Add(w) => {
            let mut r = [0.0; 4];
            r[..w.lanes()]
                .iter_mut()
                .enumerate()
                .for_each(|(i, x)| *x = a[i] + b[i]);
            *d = r;
        }
        Sub(w) => {
            let mut r = [0.0; 4];
            r[..w.lanes()]
                .iter_mut()
                .enumerate()
                .for_each(|(i, x)| *x = a[i] - b[i]);
            *d = r;
        }
        Mul(w) => {
            let mut r = [0.0; 4];
            r[..w.lanes()]
                .iter_mut()
                .enumerate()
                .for_each(|(i, x)| *x = a[i] * b[i]);
            *d = r;
        }
        Hadd => *d = [a[0] + a[1], a[2] + a[3], b[0] + b[1], b[2] + b[3]],
        Fma(w) => {
            for i in 0..w.lanes() {
                d[i] += a[i] * b[i];
            }
        }
        MulLane(w, l) => {
            let s = b[l as usize];
            let mut r = [0.0; 4];
            r[..w.lanes()]
                .iter_mut()
                .enumerate()
                .for_each(|(i, x)| *x = a[i] * s);
            *d = r;
        }
        FmaLane(w, l) => {
            let s = b[l as usize];
            for i in 0..w.lanes() {
                d[i] += a[i] * s;
            }
        }
        Pairwise => *d = [a[0] + a[1], b[0] + b[1], 0.0, 0.0],
    }
}

fn eval_move(op: VMove, a: [f32; 4], b: [f32; 4]) -> [f32; 4] {
    use VMove::*;
    match op {
        Mov => a,
        Zero => [0.0; 4],
        Splat(l) => [a[l as usize]; 4],
        Shuf(sel) => {
            let mut r = [0.0; 4];
            for (i, &s) in sel.iter().enumerate() {
                r[i] = if s < 4 {
                    a[s as usize]
                } else {
                    b[(s - 4) as usize]
                };
            }
            r
        }
        SetLane(l) => {
            let mut r = a;
            r[l as usize] = b[0];
            r
        }
        GetLane(l) => [a[l as usize], 0.0, 0.0, 0.0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::ir::VWidth;
    use lgen_isa::inst::{CountingSink, NullSink, RecordingSink};

    fn vadd_kernel(n: usize) -> Kernel {
        let mut b = KernelBuilder::new("vadd");
        let x = b.input("x", n);
        let y = b.input("y", n);
        let z = b.output("z", n);
        b.for_loop("i", 0, n as i64, 4, |b, i| {
            let vx = b.load(x, AffineExpr::var(i), MemMap::horizontal(4));
            let vy = b.load(y, AffineExpr::var(i), MemMap::horizontal(4));
            let s = b.arith(VArith::Add(VWidth::Q), vx, vy);
            b.store(s, z, AffineExpr::var(i), MemMap::horizontal(4));
        });
        b.finish(n as u64)
    }

    #[test]
    fn vector_add_is_correct() {
        let k = vadd_kernel(16);
        let mut x: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let mut y: Vec<f32> = (0..16).map(|i| (2 * i) as f32).collect();
        let mut z = vec![0.0f32; 16];
        let layout = MemLayout::aligned(&k);
        run_kernel(
            &k,
            &mut [&mut x, &mut y, &mut z],
            &layout,
            VectorIsa::Ssse3,
            &mut NullSink,
        )
        .unwrap();
        for (i, v) in z.iter().enumerate() {
            assert_eq!(*v, (3 * i) as f32);
        }
    }

    #[test]
    fn trace_contains_expected_ops() {
        let k = vadd_kernel(8);
        let mut x = vec![0.0f32; 8];
        let mut y = vec![0.0f32; 8];
        let mut z = vec![0.0f32; 8];
        let layout = MemLayout::aligned(&k);
        let mut sink = CountingSink::new();
        run_kernel(
            &k,
            &mut [&mut x, &mut y, &mut z],
            &layout,
            VectorIsa::Ssse3,
            &mut sink,
        )
        .unwrap();
        // 2 iterations × (2 loads + 1 add + 1 store + loop overhead).
        assert_eq!(sink.count(MOp::MmLoadUPs), 4);
        assert_eq!(sink.count(MOp::MmAddPs), 2);
        assert_eq!(sink.count(MOp::MmStoreUPs), 2);
        assert_eq!(sink.count(MOp::Branch), 2);
    }

    #[test]
    fn neon_lowering_of_same_kernel() {
        let k = vadd_kernel(8);
        let mut x = vec![0.0f32; 8];
        let mut y = vec![0.0f32; 8];
        let mut z = vec![0.0f32; 8];
        let layout = MemLayout::aligned(&k);
        let mut sink = CountingSink::new();
        run_kernel(
            &k,
            &mut [&mut x, &mut y, &mut z],
            &layout,
            VectorIsa::Neon,
            &mut sink,
        )
        .unwrap();
        assert_eq!(sink.count(MOp::VldQ), 4);
        assert_eq!(sink.count(MOp::VaddQ), 2);
        assert_eq!(sink.count(MOp::VstQ), 2);
    }

    #[test]
    fn misaligned_layout_shifts_addresses() {
        let k = vadd_kernel(4);
        let layout = MemLayout::with_float_offsets(&k, &[1, 0, 0]);
        assert_eq!(layout.float_offset_mod(0, 4), 1);
        assert_eq!(layout.float_offset_mod(1, 4), 0);
        let mut x = vec![1.0f32; 4];
        let mut y = vec![2.0f32; 4];
        let mut z = vec![0.0f32; 4];
        let mut sink = RecordingSink::default();
        run_kernel(
            &k,
            &mut [&mut x, &mut y, &mut z],
            &layout,
            VectorIsa::Ssse3,
            &mut sink,
        )
        .unwrap();
        assert_eq!(z, vec![3.0; 4]);
        // The load of x must be at a non-16B-aligned address.
        let first_load = sink.insts.iter().find(|i| i.op == MOp::MmLoadUPs).unwrap();
        assert_ne!(first_load.mem.unwrap().addr % 16, 0);
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let mut b = KernelBuilder::new("oob");
        let x = b.input("x", 4);
        let y = b.output("y", 4);
        let v = b.load(x, AffineExpr::constant(8), MemMap::horizontal(4));
        b.store(v, y, AffineExpr::constant(0), MemMap::horizontal(4));
        let k = b.finish(0);
        let layout = MemLayout::aligned(&k);
        let mut x = vec![0.0f32; 4];
        let mut y = vec![0.0f32; 4];
        let err = run_kernel(
            &k,
            &mut [&mut x, &mut y],
            &layout,
            VectorIsa::Ssse3,
            &mut NullSink,
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::OutOfBounds { .. }));
    }

    #[test]
    fn alignment_violation_is_caught() {
        // Force an (incorrect) aligned flag onto an unaligned access.
        let mut b = KernelBuilder::new("bad");
        let x = b.input("x", 8);
        let y = b.output("y", 4);
        let v = b.load(x, AffineExpr::constant(1), MemMap::horizontal(4));
        b.store(v, y, AffineExpr::constant(0), MemMap::horizontal(4));
        let mut k = b.finish(0);
        if let Inst::GLoad { aligned, .. } = &mut k.body_mut()[0] {
            *aligned = true;
        }
        let layout = MemLayout::aligned(&k);
        let mut x = vec![0.0f32; 8];
        let mut y = vec![0.0f32; 4];
        let err = run_kernel(
            &k,
            &mut [&mut x, &mut y],
            &layout,
            VectorIsa::Ssse3,
            &mut NullSink,
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::AlignmentViolation { .. }));
    }

    #[test]
    fn leftover_maps_pack_with_zeros() {
        // Load 3 elements, add to itself, store 3: lane 3 must not leak.
        let mut b = KernelBuilder::new("left");
        let x = b.input("x", 3);
        let y = b.output("y", 3);
        let v = b.load(x, AffineExpr::constant(0), MemMap::horizontal(3));
        let s = b.arith(VArith::Add(VWidth::Q), v, v);
        b.store(s, y, AffineExpr::constant(0), MemMap::horizontal(3));
        let k = b.finish(3);
        let layout = MemLayout::aligned(&k);
        let mut x = vec![1.0f32, 2.0, 3.0];
        let mut y = vec![9.0f32; 3];
        run_kernel(
            &k,
            &mut [&mut x, &mut y],
            &layout,
            VectorIsa::Neon,
            &mut NullSink,
        )
        .unwrap();
        assert_eq!(y, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn vertical_map_reads_columns() {
        // x is a 3x4 row-major matrix; load column 1 (stride 4).
        let mut b = KernelBuilder::new("col");
        let x = b.input("x", 12);
        let y = b.output("y", 3);
        let v = b.load(x, AffineExpr::constant(1), MemMap::vertical(3, 4));
        b.store(v, y, AffineExpr::constant(0), MemMap::horizontal(3));
        let k = b.finish(0);
        let layout = MemLayout::aligned(&k);
        let mut x: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let mut y = vec![0.0f32; 3];
        run_kernel(
            &k,
            &mut [&mut x, &mut y],
            &layout,
            VectorIsa::Ssse3,
            &mut NullSink,
        )
        .unwrap();
        assert_eq!(y, vec![1.0, 5.0, 9.0]);
    }

    #[test]
    fn scalar_isa_runs_scalar_kernels() {
        let mut b = KernelBuilder::new("s");
        let x = b.input("x", 2);
        let y = b.output("y", 1);
        let a = b.load(x, AffineExpr::constant(0), MemMap::scalar());
        let c = b.load(x, AffineExpr::constant(1), MemMap::scalar());
        let s = b.arith(VArith::Mul(VWidth::S), a, c);
        b.store(s, y, AffineExpr::constant(0), MemMap::scalar());
        let k = b.finish(1);
        let layout = MemLayout::aligned(&k);
        let mut x = vec![3.0f32, 5.0];
        let mut y = vec![0.0f32];
        let mut sink = CountingSink::new();
        run_kernel(
            &k,
            &mut [&mut x, &mut y],
            &layout,
            VectorIsa::Scalar,
            &mut sink,
        )
        .unwrap();
        assert_eq!(y[0], 15.0);
        assert_eq!(sink.count(MOp::FLoad), 2);
        assert_eq!(sink.count(MOp::FMul), 1);
        assert_eq!(sink.count(MOp::FStore), 1);
    }
}
