//! Verifier diagnostics with a stable text rendering.
//!
//! Every report from [`crate::verify`] is a [`Diagnostic`]: which check
//! fired, where (kernel version + flat pre-order instruction index), and
//! the structured payload that triggered it — the array, the register,
//! and/or the abstract value of the offending index expression. The
//! `Display` format is stable so diagnostics can be snapshotted in golden
//! tests and printed by `lgenc --verify`.

use crate::ir::{ArrayId, VReg};
use lgen_absint::interval::Bound;
use lgen_absint::{AbstractDomain, Congruence, Interval, IntervalCongruence};
use std::fmt;

/// Which verifier check produced a diagnostic.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Check {
    /// A register (or one of its lanes) is read before any instruction
    /// defines it.
    UseBeforeDef,
    /// A load/store may touch an index outside the array (plus the
    /// interpreter's safety padding).
    OutOfBounds,
    /// Vector-width/lane inconsistency: an operation names a lane outside
    /// `[0, 2ν)` or reads lanes its operands never defined.
    LaneConsistency,
    /// A surviving load from a local array reads elements no store may have
    /// written (e.g. scalar replacement forwarded the store away but left
    /// the load behind).
    LocalDataflow,
    /// Malformed kernel structure: non-positive loop step, missing
    /// fallback version, an address over an unbound loop variable, …
    Structure,
}

impl Check {
    /// Short stable code used in the rendered diagnostic.
    pub fn code(self) -> &'static str {
        match self {
            Check::UseBeforeDef => "use-before-def",
            Check::OutOfBounds => "oob",
            Check::LaneConsistency => "lane",
            Check::LocalDataflow => "local-dataflow",
            Check::Structure => "structure",
        }
    }
}

/// A single verifier report.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// The check that fired.
    pub check: Check,
    /// Kernel version index the instruction lives in.
    pub version: usize,
    /// Flat pre-order instruction index within the version (loop headers
    /// count as one instruction, then their body).
    pub inst: usize,
    /// Short opcode description of the offending instruction.
    pub opcode: String,
    /// Human-readable explanation with the triggering values inlined.
    pub detail: String,
    /// The array involved, if any.
    pub array: Option<ArrayId>,
    /// The register involved, if any.
    pub reg: Option<VReg>,
    /// The abstract index value that triggered the report, if any.
    pub value: Option<IntervalCongruence>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error[{}] v{} #{} ({}): {}",
            self.check.code(),
            self.version,
            self.inst,
            self.opcode,
            self.detail
        )
    }
}

/// Renders a batch of diagnostics, one per line, in instruction order.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

/// Renders an abstract value as `c+mZ in [lo, hi]` (ASCII, stable). Used in
/// diagnostic details so the report shows exactly what the analysis knew.
pub fn render_value(v: &IntervalCongruence) -> String {
    if v.is_bottom() {
        return "bottom".into();
    }
    let con = match v.congruence() {
        Congruence::Bottom => "bottom".into(),
        Congruence::Class { c, m: 0 } => format!("{c}"),
        Congruence::Class { c, m } => format!("{c}+{m}Z"),
    };
    let bound = |b: Option<Bound>| match b {
        Some(Bound::Finite(x)) => format!("{x}"),
        Some(Bound::NegInf) => "-inf".into(),
        Some(Bound::PosInf) => "+inf".into(),
        None => "?".into(),
    };
    match v.interval() {
        Interval::Bottom => "bottom".into(),
        iv => format!("{} in [{}, {}]", con, bound(iv.lo()), bound(iv.hi())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_stable() {
        let d = Diagnostic {
            check: Check::OutOfBounds,
            version: 0,
            inst: 3,
            opcode: "GStore".into(),
            detail: "store to `y` index 8+4Z in [8, 16] exceeds len 4 (+4 pad)".into(),
            array: Some(ArrayId(1)),
            reg: None,
            value: Some(IntervalCongruence::constant(8)),
        };
        assert_eq!(
            d.to_string(),
            "error[oob] v0 #3 (GStore): store to `y` index 8+4Z in [8, 16] exceeds len 4 (+4 pad)"
        );
        assert_eq!(render(&[d.clone(), d]).lines().count(), 2);
    }

    #[test]
    fn value_rendering() {
        assert_eq!(
            render_value(&IntervalCongruence::constant(7)),
            "7 in [7, 7]"
        );
        assert_eq!(render_value(&IntervalCongruence::bottom()), "bottom");
        let v = IntervalCongruence::new(Interval::range(0, 12), Congruence::modulo(0, 4));
        assert_eq!(render_value(&v), "0+4Z in [0, 12]");
        let top = IntervalCongruence::top();
        assert_eq!(render_value(&top), "0+1Z in [-inf, +inf]");
    }
}
