//! Memory maps (§3.1).
//!
//! A memory map relates offsets (in floats) from an instruction's base
//! address to lanes of the vector register being loaded or stored. The
//! original LGen memory map only described horizontal (row) segments; the
//! generic load/store extension added vertical (column) segments, which is
//! what lets scalar replacement match strided accesses without leftover
//! shuffles.

/// A memory map: which float offsets correspond to which vector lanes.
///
/// Maps are ordered by lane. For loads, lanes not present in the map are
/// implicitly zero-filled (the Loader packs leftover tiles into ν-sized
/// matrices padded with zeros, §2.1.4).
///
/// # Example
///
/// ```
/// use lgen_cir::MemMap;
///
/// let row = MemMap::horizontal(3);          // offsets 0,1,2 → lanes 0,1,2
/// let col = MemMap::vertical(3, 10);        // offsets 0,10,20 → lanes 0,1,2
/// assert!(row.footprint_equals(&row));
/// assert!(!row.footprint_equals(&col));
/// assert_eq!(col.stride(), Some(10));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub struct MemMap {
    /// `(offset_in_floats, lane)` pairs, sorted by lane, lanes distinct.
    entries: Vec<(i64, u8)>,
    /// Whether a single memory element is broadcast to all lanes.
    broadcast: bool,
}

impl MemMap {
    /// A horizontal (unit-stride) map of `lanes` elements starting at lane 0.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or greater than 4.
    pub fn horizontal(lanes: usize) -> Self {
        assert!(
            (1..=4).contains(&lanes),
            "lanes must be in 1..=4, got {lanes}"
        );
        MemMap {
            entries: (0..lanes).map(|i| (i as i64, i as u8)).collect(),
            broadcast: false,
        }
    }

    /// A vertical (strided) map of `lanes` elements with `stride` floats
    /// between consecutive elements (the row length of a row-major matrix).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or greater than 4, or `stride` is not positive.
    pub fn vertical(lanes: usize, stride: i64) -> Self {
        assert!(
            (1..=4).contains(&lanes),
            "lanes must be in 1..=4, got {lanes}"
        );
        assert!(stride > 0, "stride must be positive, got {stride}");
        MemMap {
            entries: (0..lanes).map(|i| (i as i64 * stride, i as u8)).collect(),
            broadcast: false,
        }
    }

    /// A broadcast map: one element replicated into all `lanes` lanes
    /// (loads only; lowers to `_mm_load1_ps` / `vld1q_dup_f32`).
    pub fn splat(lanes: usize) -> Self {
        assert!(
            (1..=4).contains(&lanes),
            "lanes must be in 1..=4, got {lanes}"
        );
        MemMap {
            entries: (0..lanes).map(|i| (0, i as u8)).collect(),
            broadcast: true,
        }
    }

    /// A single-element map targeting lane 0 (scalar access).
    pub fn scalar() -> Self {
        MemMap::horizontal(1)
    }

    /// An arbitrary map from explicit `(offset, lane)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if empty, lanes are not distinct, or any lane exceeds 3.
    pub fn from_entries(mut entries: Vec<(i64, u8)>) -> Self {
        assert!(!entries.is_empty(), "memory map must be non-empty");
        entries.sort_by_key(|&(_, lane)| lane);
        for w in entries.windows(2) {
            assert!(w[0].1 < w[1].1, "duplicate lane {} in memory map", w[1].1);
        }
        assert!(entries.iter().all(|&(_, l)| l < 4), "lanes must be < 4");
        MemMap {
            entries,
            broadcast: false,
        }
    }

    /// The `(offset, lane)` pairs, sorted by lane.
    pub fn entries(&self) -> &[(i64, u8)] {
        &self.entries
    }

    /// Number of lanes touched.
    pub fn lanes(&self) -> usize {
        self.entries.len()
    }

    /// Whether this is a broadcast (splat) map.
    pub fn is_broadcast(&self) -> bool {
        self.broadcast
    }

    /// Whether the map is horizontal: offsets `0..k` mapping to lanes `0..k`.
    pub fn is_horizontal(&self) -> bool {
        !self.broadcast
            && self
                .entries
                .iter()
                .enumerate()
                .all(|(i, &(off, lane))| off == i as i64 && lane == i as u8)
    }

    /// The constant stride between consecutive lanes, if the map is a
    /// uniform vertical/strided segment starting at lane 0 (returns the
    /// stride; `Some(1)` for horizontal maps of ≥ 2 lanes).
    pub fn stride(&self) -> Option<i64> {
        if self.broadcast || self.entries.len() < 2 {
            return None;
        }
        if self.entries[0] != (0, 0) {
            return None;
        }
        let s = self.entries[1].0 - self.entries[0].0;
        for (i, &(off, lane)) in self.entries.iter().enumerate() {
            if lane != i as u8 || off != s * i as i64 {
                return None;
            }
        }
        Some(s)
    }

    /// Whether two maps describe the same memory footprint relative to
    /// their (shared) base address — the scalar-replacement matching
    /// criterion of §3.1.
    pub fn footprint_equals(&self, other: &MemMap) -> bool {
        // The footprint is the set of (offset, lane) pairs: a store/load
        // pair forwards only if the same offsets feed the same lanes.
        self.entries == other.entries
    }

    /// The largest offset touched (in floats), for bounds checking.
    pub fn max_offset(&self) -> i64 {
        self.entries.iter().map(|&(off, _)| off).max().unwrap_or(0)
    }

    /// Bytes spanned when the map is a contiguous horizontal run.
    pub fn contiguous_bytes(&self) -> Option<usize> {
        if self.is_horizontal() {
            Some(self.lanes() * 4)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizontal_shape() {
        let m = MemMap::horizontal(4);
        assert!(m.is_horizontal());
        assert_eq!(m.lanes(), 4);
        assert_eq!(m.stride(), Some(1));
        assert_eq!(m.contiguous_bytes(), Some(16));
        assert_eq!(m.max_offset(), 3);
    }

    #[test]
    fn vertical_shape() {
        let m = MemMap::vertical(4, 8);
        assert!(!m.is_horizontal());
        assert_eq!(m.stride(), Some(8));
        assert_eq!(m.max_offset(), 24);
        assert_eq!(m.contiguous_bytes(), None);
    }

    #[test]
    fn splat_shape() {
        let m = MemMap::splat(4);
        assert!(m.is_broadcast());
        assert_eq!(m.lanes(), 4);
        assert_eq!(m.stride(), None);
        assert_eq!(m.max_offset(), 0);
    }

    #[test]
    fn footprint_matching_requires_same_offsets_and_lanes() {
        // The paper's Fig. 3.4 case: a 3-element store and a 3-element load
        // implemented differently still match on footprint.
        let st = MemMap::horizontal(3);
        let ld = MemMap::horizontal(3);
        assert!(st.footprint_equals(&ld));
        // Horizontal vs vertical 3-element segments do not match.
        assert!(!st.footprint_equals(&MemMap::vertical(3, 6)));
        // Same offsets in different lanes do not match.
        let swapped = MemMap::from_entries(vec![(1, 0), (0, 1), (2, 2)]);
        assert!(!st.footprint_equals(&swapped));
    }

    #[test]
    #[should_panic(expected = "duplicate lane")]
    fn duplicate_lanes_rejected() {
        let _ = MemMap::from_entries(vec![(0, 1), (4, 1)]);
    }

    #[test]
    fn vertical_one_lane_equals_scalar_footprint() {
        assert!(MemMap::vertical(1, 8).footprint_equals(&MemMap::scalar()));
    }
}
