//! A fluent builder for C-IR kernels.
//!
//! Used by the Σ-LL lowering (`lgen-sigma`), the baselines, and tests to
//! assemble kernels without manipulating [`Inst`] vectors directly.

use crate::ir::{ArrayDecl, ArrayId, ArrayKind, Inst, Kernel, KernelVersion, VArith, VMove, VReg};
use crate::map::MemMap;
use lgen_absint::{AffineExpr, VarId};

/// Incremental kernel construction.
///
/// # Example
///
/// Build `y[0..4] = x[0..4]` as a loop of scalar copies:
///
/// ```
/// use lgen_cir::{KernelBuilder, MemMap};
/// use lgen_absint::AffineExpr;
///
/// let mut b = KernelBuilder::new("copy4");
/// let x = b.input("x", 4);
/// let y = b.output("y", 4);
/// b.begin_loop("i", 0, 4, 1);
/// let i = b.current_loop_var().unwrap();
/// let r = b.load(x, AffineExpr::var(i), MemMap::scalar());
/// b.store(r, y, AffineExpr::var(i), MemMap::scalar());
/// b.end_loop();
/// let kernel = b.finish(0);
/// assert_eq!(kernel.static_size(), 3);
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    arrays: Vec<ArrayDecl>,
    /// Stack of open instruction sequences; `frames[0]` is the kernel body,
    /// deeper frames are open loops.
    frames: Vec<Vec<Inst>>,
    /// Open loop headers matching `frames[1..]`.
    open_loops: Vec<(VarId, String, i64, i64, i64)>,
    nreg: u32,
    nvars: usize,
}

impl KernelBuilder {
    /// Starts a new kernel with the given C function name.
    pub fn new(name: &str) -> Self {
        KernelBuilder {
            name: name.to_string(),
            arrays: Vec::new(),
            frames: vec![Vec::new()],
            open_loops: Vec::new(),
            nreg: 0,
            nvars: 0,
        }
    }

    fn decl(&mut self, name: &str, len: usize, kind: ArrayKind) -> ArrayId {
        assert!(len > 0, "array {name} must have positive length");
        self.arrays.push(ArrayDecl {
            name: name.to_string(),
            len,
            kind,
        });
        ArrayId(self.arrays.len() - 1)
    }

    /// Declares a read-only parameter of `len` floats.
    pub fn input(&mut self, name: &str, len: usize) -> ArrayId {
        self.decl(name, len, ArrayKind::Input)
    }

    /// Declares a write-only parameter.
    pub fn output(&mut self, name: &str, len: usize) -> ArrayId {
        self.decl(name, len, ArrayKind::Output)
    }

    /// Declares a read-write parameter.
    pub fn inout(&mut self, name: &str, len: usize) -> ArrayId {
        self.decl(name, len, ArrayKind::InOut)
    }

    /// Declares a kernel-local temporary array.
    pub fn local(&mut self, name: &str, len: usize) -> ArrayId {
        self.decl(name, len, ArrayKind::Local)
    }

    /// Number of instructions emitted so far at the top level of the
    /// kernel body (loops count as one instruction). Callers composing a
    /// kernel from several driver passes — e.g. the program lowering in
    /// `lgen-sigma` — use this to delimit per-statement instruction
    /// ranges.
    ///
    /// # Panics
    ///
    /// Panics if a loop is still open.
    pub fn top_level_len(&self) -> usize {
        assert!(
            self.open_loops.is_empty(),
            "top_level_len with an open loop"
        );
        self.frames[0].len()
    }

    /// Allocates a fresh virtual register.
    pub fn fresh_reg(&mut self) -> VReg {
        self.nreg += 1;
        self.nreg - 1
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, inst: Inst) {
        self.frames
            .last_mut()
            .expect("builder has a frame")
            .push(inst);
    }

    /// Emits a generic load and returns the destination register.
    pub fn load(&mut self, arr: ArrayId, addr: AffineExpr, map: MemMap) -> VReg {
        let dst = self.fresh_reg();
        self.push(Inst::GLoad {
            dst,
            arr,
            addr,
            map,
            aligned: false,
        });
        dst
    }

    /// Emits a generic store.
    pub fn store(&mut self, src: VReg, arr: ArrayId, addr: AffineExpr, map: MemMap) {
        self.push(Inst::GStore {
            src,
            arr,
            addr,
            map,
            aligned: false,
        });
    }

    /// Emits `op(a, b)` into a fresh register.
    pub fn arith(&mut self, op: VArith, a: VReg, b: VReg) -> VReg {
        assert!(!op.reads_dst(), "use arith_acc for accumulating ops");
        let dst = self.fresh_reg();
        self.push(Inst::Arith { op, dst, a, b });
        dst
    }

    /// Emits an accumulating op (`dst += a*b` style) into `dst`.
    pub fn arith_acc(&mut self, op: VArith, dst: VReg, a: VReg, b: VReg) {
        assert!(op.reads_dst(), "use arith for non-accumulating ops");
        self.push(Inst::Arith { op, dst, a, b });
    }

    /// Emits a register move/lane op into a fresh register.
    pub fn mov_op(&mut self, op: VMove, a: VReg, b: VReg) -> VReg {
        let dst = self.fresh_reg();
        self.push(Inst::Move { op, dst, a, b });
        dst
    }

    /// Emits `dst = 0`.
    pub fn zero(&mut self) -> VReg {
        let dst = self.fresh_reg();
        self.push(Inst::Move {
            op: VMove::Zero,
            dst,
            a: 0,
            b: 0,
        });
        dst
    }

    /// Charges schedule-only overhead (see [`Inst::Overhead`]).
    pub fn overhead(&mut self, kind: crate::ir::OverheadKind, count: u16) {
        self.push(Inst::Overhead { kind, count });
    }

    /// Opens a counted loop; returns its variable id.
    pub fn begin_loop(&mut self, name: &str, start: i64, end: i64, step: i64) -> VarId {
        assert!(step > 0, "loop step must be positive");
        let var = self.nvars;
        self.nvars += 1;
        self.open_loops
            .push((var, name.to_string(), start, end, step));
        self.frames.push(Vec::new());
        var
    }

    /// The variable of the innermost open loop.
    pub fn current_loop_var(&self) -> Option<VarId> {
        self.open_loops.last().map(|l| l.0)
    }

    /// Closes the innermost open loop.
    ///
    /// # Panics
    ///
    /// Panics if no loop is open.
    pub fn end_loop(&mut self) {
        let body = self.frames.pop().expect("no open loop body");
        let (var, name, start, end, step) = self.open_loops.pop().expect("no open loop");
        self.push(Inst::Loop {
            var,
            name,
            start,
            end,
            step,
            body,
        });
    }

    /// Runs `f` inside a new loop scope (convenience wrapper around
    /// [`begin_loop`](Self::begin_loop)/[`end_loop`](Self::end_loop)).
    pub fn for_loop(
        &mut self,
        name: &str,
        start: i64,
        end: i64,
        step: i64,
        f: impl FnOnce(&mut Self, VarId),
    ) {
        let var = self.begin_loop(name, start, end, step);
        f(self, var);
        self.end_loop();
    }

    /// Finalizes the kernel with the given useful-flop count.
    ///
    /// # Panics
    ///
    /// Panics if loops are still open.
    pub fn finish(mut self, flops: u64) -> Kernel {
        assert!(
            self.open_loops.is_empty(),
            "unclosed loops: {}",
            self.open_loops.len()
        );
        let body = self.frames.pop().expect("body frame");
        Kernel {
            name: self.name,
            arrays: self.arrays,
            versions: vec![KernelVersion {
                required_offsets: None,
                body,
            }],
            nreg: self.nreg,
            nvars: self.nvars,
            flops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::VWidth;

    #[test]
    fn builds_structured_kernels() {
        let mut b = KernelBuilder::new("t");
        let x = b.input("x", 8);
        let y = b.output("y", 8);
        b.for_loop("i", 0, 8, 4, |b, i| {
            let vx = b.load(x, AffineExpr::var(i), MemMap::horizontal(4));
            let s = b.arith(VArith::Add(VWidth::Q), vx, vx);
            b.store(s, y, AffineExpr::var(i), MemMap::horizontal(4));
        });
        let k = b.finish(8);
        assert_eq!(k.nvars, 1);
        assert_eq!(k.static_size(), 4);
        assert_eq!(k.flops, 8);
        assert_eq!(k.arrays.len(), 2);
    }

    #[test]
    #[should_panic(expected = "unclosed loops")]
    fn unclosed_loop_panics() {
        let mut b = KernelBuilder::new("t");
        b.begin_loop("i", 0, 4, 1);
        let _ = b.finish(0);
    }

    #[test]
    #[should_panic(expected = "accumulating")]
    fn arith_rejects_fma() {
        let mut b = KernelBuilder::new("t");
        let r = b.zero();
        b.arith(VArith::Fma(VWidth::Q), r, r);
    }
}
