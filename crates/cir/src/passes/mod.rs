//! Code-level optimizations on C-IR (paper §2.1.4, §3.1, §3.2).
//!
//! Each optimization is available two ways: as a plain function over
//! instruction bodies (below), and as a registered first-class [`Pass`]
//! scheduled by the [`manager`]. The standard LGen schedule is the
//! [`PassPipeline::standard`] spec `unroll,scalrep,copyprop,dce,align`:
//!
//! 1. `unroll` — loop unrolling (full or by a factor), exposing
//!    instruction-level parallelism and constant addresses;
//! 2. `scalrep` — replaces store→load sequences through local temporary
//!    arrays with register moves, matching on generic-load/store
//!    footprints (§3.1);
//! 3. `copyprop` — forwards register copies introduced by scalar
//!    replacement;
//! 4. `dce` — removes dead stores to local arrays and dead value
//!    computations;
//! 5. `align` — alignment detection via abstract interpretation (§3.2);
//!    alignment *versioning* with runtime dispatch (§3.2.4) is a
//!    whole-kernel transform outside the pipeline
//!    ([`version_for_alignment`]).
//!
//! Any other schedule is equally runnable: build a [`PassPipeline`] from a
//! spec string (e.g. `"unroll,scalrep,repeat(copyprop,dce),align"`) and
//! [`run`](PassPipeline::run) it.

pub mod align;
pub mod copy_prop;
pub mod dce;
pub mod manager;
pub mod scalar_replacement;
pub mod unroll;

pub use align::{detect_alignment, detect_alignment_partial, version_for_alignment};
pub use copy_prop::copy_prop;
pub use dce::dce;
pub use manager::{
    pass_by_name, Analysis, Pass, PassCtx, PassPipeline, PassStats, PassTrace, PipelineReport,
    PipelineSpecError, PipelineStep, PASSES,
};
pub use scalar_replacement::scalar_replacement;
pub use unroll::{unroll, UnrollPolicy};

use crate::ir::Kernel;
use crate::verify::{verify_stage, VerifyFailure, VerifyLevel};

/// Applies the standard optimization schedule in the canonical order.
///
/// A thin wrapper over the default [`PassPipeline`]: it builds
/// [`PassPipeline::standard`] (dropping the final `align` step when
/// `detect_align` is false) and [`run`](PassPipeline::run)s it with the
/// given unrolling decision. Alignment detection assumes all parameter
/// arrays are 16-byte aligned; versioning for arbitrary alignment is a
/// separate, opt-in step via [`version_for_alignment`].
///
/// Runs no verification; see [`optimize_verified`].
pub fn optimize(kernel: &mut Kernel, policy: UnrollPolicy, detect_align: bool) {
    optimize_verified(kernel, policy, detect_align, VerifyLevel::Off).expect("verification is off");
}

/// [`optimize`] under a [`VerifyLevel`]: the same thin wrapper over the
/// default [`PassPipeline`], with the kernel statically verified at the
/// pipeline boundaries (entry and exit) — or between every pass at
/// [`VerifyLevel::EveryPass`], where the first failure names the pass
/// whose output broke an invariant.
pub fn optimize_verified(
    kernel: &mut Kernel,
    policy: UnrollPolicy,
    detect_align: bool,
    level: VerifyLevel,
) -> Result<(), VerifyFailure> {
    let pipeline = if detect_align {
        PassPipeline::standard()
    } else {
        PassPipeline::standard().without("align")
    };
    verify_stage("codegen", kernel, level, true)?;
    let mut ctx = PassCtx::new(policy);
    ctx.verify = level;
    pipeline.run(kernel, &ctx)?;
    verify_stage("pipeline", kernel, level, true)?;
    Ok(())
}
