//! Code-level optimizations on C-IR (paper §2.1.4, §3.1, §3.2).
//!
//! The standard LGen pipeline applies, in order:
//!
//! 1. [`unroll()`](unroll()) — loop unrolling (full or by a factor), exposing
//!    instruction-level parallelism and constant addresses;
//! 2. [`scalar_replacement()`](scalar_replacement()) — replaces store→load sequences through local
//!    temporary arrays with register moves, matching on generic-load/store
//!    footprints (§3.1);
//! 3. [`copy_prop()`](copy_prop()) — forwards register copies introduced by scalar
//!    replacement;
//! 4. [`dce()`](dce()) — removes dead stores to local arrays and dead value
//!    computations;
//! 5. [`align`] — alignment detection via abstract interpretation and,
//!    optionally, alignment versioning with runtime dispatch (§3.2).

pub mod align;
pub mod copy_prop;
pub mod dce;
pub mod scalar_replacement;
pub mod unroll;

pub use align::{detect_alignment, detect_alignment_partial, version_for_alignment};
pub use copy_prop::copy_prop;
pub use dce::dce;
pub use scalar_replacement::scalar_replacement;
pub use unroll::{unroll, UnrollPolicy};

use crate::ir::Kernel;
use crate::verify::{verify_stage, VerifyFailure, VerifyLevel};

/// Applies the standard optimization pipeline in the canonical order.
///
/// When `detect_align` is true (the §3.2 default), the pipeline finishes
/// with alignment detection under the assumption that all parameter arrays
/// are 16-byte aligned; versioning for arbitrary alignment is a separate,
/// opt-in step via [`version_for_alignment`].
///
/// Runs no verification; see [`optimize_verified`].
pub fn optimize(kernel: &mut Kernel, policy: UnrollPolicy, detect_align: bool) {
    optimize_verified(kernel, policy, detect_align, VerifyLevel::Off).expect("verification is off");
}

/// [`optimize`] under a [`VerifyLevel`]: the kernel is statically verified
/// at pipeline boundaries (or between every pass at
/// [`VerifyLevel::EveryPass`]), and the first failure names the pass whose
/// output broke an invariant.
pub fn optimize_verified(
    kernel: &mut Kernel,
    policy: UnrollPolicy,
    detect_align: bool,
    level: VerifyLevel,
) -> Result<(), VerifyFailure> {
    verify_stage("codegen", kernel, level, true)?;
    let body = std::mem::take(kernel.body_mut());
    *kernel.body_mut() = unroll(body, policy);
    verify_stage("unroll", kernel, level, false)?;
    let body = std::mem::take(kernel.body_mut());
    let body = scalar_replacement(body, &kernel.arrays);
    *kernel.body_mut() = body;
    verify_stage("scalar-replacement", kernel, level, false)?;
    let body = std::mem::take(kernel.body_mut());
    *kernel.body_mut() = copy_prop(body);
    verify_stage("copy-prop", kernel, level, false)?;
    let body = std::mem::take(kernel.body_mut());
    let body = dce(body, &kernel.arrays);
    *kernel.body_mut() = body;
    verify_stage("dce", kernel, level, !detect_align)?;
    if detect_align {
        let zeros = vec![0usize; kernel.arrays.len()];
        detect_alignment(kernel.body_mut(), &zeros);
        verify_stage("alignment", kernel, level, true)?;
    }
    Ok(())
}
