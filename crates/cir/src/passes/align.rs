//! Alignment detection and alignment versioning (§3.2).
//!
//! Alignment detection runs the abstract interpretation of `lgen-absint`
//! (reduced product of Interval and Congruence) over the kernel's loop nest
//! and marks every 16-byte memory access whose address is provably a
//! multiple of ν floats, given assumptions about the base alignment of each
//! array. Lowering then uses aligned instructions for marked accesses.
//!
//! Alignment versioning (§3.2.4) generates one code version per alignment
//! combination of the vector-accessed parameter arrays — `(N/l)^a + 1`
//! versions, each analyzed under its own assumption — combined by runtime
//! dispatch (Listing 3.3).

use crate::ir::{ArrayKind, Inst, Kernel, KernelVersion};
use lgen_absint::{eval_affine, loop_index_value, AbstractDomain, IntervalCongruence, LoopSpec};
use std::collections::HashMap;

/// Number of float offsets per alignment class (ν for single precision with
/// 16-byte vectors).
pub const ALIGN_CLASSES: usize = 4;

/// Marks provably aligned accesses in `body`.
///
/// `base_offsets[a]` is the assumed base offset of array `a` in floats
/// modulo [`ALIGN_CLASSES`] (locals are always 0: the layout aligns them).
pub fn detect_alignment(body: &mut [Inst], base_offsets: &[usize]) {
    let opts: Vec<Option<usize>> = base_offsets.iter().map(|&o| Some(o)).collect();
    detect_alignment_partial(body, &opts);
}

/// [`detect_alignment`] with possibly-unknown base offsets: `None` entries
/// are arrays whose alignment is not assumed (their 16-byte accesses are
/// never marked). Used by runtime-peeling competitor models that dispatch
/// on one array's alignment only.
pub fn detect_alignment_partial(body: &mut [Inst], base_offsets: &[Option<usize>]) {
    let mut env: HashMap<usize, IntervalCongruence> = HashMap::new();
    walk(body, &mut env, base_offsets);
}

fn walk(
    insts: &mut [Inst],
    env: &mut HashMap<usize, IntervalCongruence>,
    base_offsets: &[Option<usize>],
) {
    for inst in insts {
        match inst {
            Inst::GLoad {
                arr,
                addr,
                map,
                aligned,
                ..
            }
            | Inst::GStore {
                arr,
                addr,
                map,
                aligned,
                ..
            } => {
                if map.contiguous_bytes() != Some(16) {
                    // Only full-width contiguous accesses have aligned
                    // instruction variants.
                    *aligned = false;
                    continue;
                }
                let Some(base) = base_offsets[arr.0] else {
                    *aligned = false;
                    continue;
                };
                let v = eval_affine(addr, |var| {
                    env.get(&var)
                        .copied()
                        .unwrap_or_else(IntervalCongruence::top)
                })
                .add(&IntervalCongruence::constant(base as i64));
                *aligned = v.divisible_by(ALIGN_CLASSES as i64);
            }
            Inst::Loop {
                var,
                name,
                start,
                end,
                step,
                body,
            } => {
                let value = loop_index_value(&LoopSpec::new(name, *start, *end, *step));
                let saved = env.insert(*var, value);
                walk(body, env, base_offsets);
                match saved {
                    Some(s) => {
                        env.insert(*var, s);
                    }
                    None => {
                        env.remove(var);
                    }
                }
            }
            _ => {}
        }
    }
}

/// Generates the alignment-versioned form of a kernel (§3.2.4).
///
/// Parameter arrays long enough to be vector-accessed (length ≥ ν) are
/// versioned over their 4 possible float offsets; short (scalar) parameters
/// are don't-care. The result has `4^a + 1` versions: every combination,
/// each with alignment detection applied under its assumption, plus the
/// all-unaligned fallback.
///
/// # Panics
///
/// Panics if the kernel is already versioned, or if more than 3 arrays
/// would be versioned (4^4 + 1 = 257 versions is past the paper's own
/// practical limit; Listing 3.3 uses 3 arrays → 65 versions).
pub fn version_for_alignment(kernel: &Kernel) -> Kernel {
    assert_eq!(kernel.versions.len(), 1, "kernel is already versioned");
    let base_body = &kernel.versions[0].body;
    let params: Vec<usize> = kernel
        .arrays
        .iter()
        .enumerate()
        .filter(|(_, d)| d.kind.is_param())
        .map(|(i, _)| i)
        .collect();
    let versioned: Vec<usize> = params
        .iter()
        .copied()
        .filter(|&a| kernel.arrays[a].len >= ALIGN_CLASSES)
        .collect();
    assert!(
        versioned.len() <= 3,
        "refusing to version {} arrays (4^{} versions)",
        versioned.len(),
        versioned.len()
    );

    let ncombos = ALIGN_CLASSES.pow(versioned.len() as u32);
    let mut versions = Vec::with_capacity(ncombos + 1);
    for combo in 0..ncombos {
        // Decode the combination into per-array offsets.
        let mut offsets = vec![0usize; kernel.arrays.len()];
        let mut required: Vec<Option<usize>> = vec![None; params.len()];
        let mut rem = combo;
        for &a in &versioned {
            let off = rem % ALIGN_CLASSES;
            rem /= ALIGN_CLASSES;
            offsets[a] = off;
            let pidx = params.iter().position(|&p| p == a).expect("param");
            required[pidx] = Some(off);
        }
        let mut body = base_body.clone();
        detect_alignment(&mut body, &offsets);
        versions.push(KernelVersion {
            required_offsets: Some(required),
            body,
        });
    }
    // Unconditional fallback: everything unaligned.
    let mut fallback = base_body.clone();
    clear_alignment(&mut fallback);
    versions.push(KernelVersion {
        required_offsets: None,
        body: fallback,
    });

    Kernel {
        versions,
        ..kernel.clone()
    }
}

fn clear_alignment(insts: &mut [Inst]) {
    for inst in insts {
        match inst {
            Inst::GLoad { aligned, .. } | Inst::GStore { aligned, .. } => *aligned = false,
            Inst::Loop { body, .. } => clear_alignment(body),
            _ => {}
        }
    }
}

/// Counts aligned and total 16-byte accesses (static), for tests and
/// diagnostics.
pub fn count_aligned(insts: &[Inst]) -> (usize, usize) {
    let mut aligned = 0;
    let mut total = 0;
    fn go(insts: &[Inst], aligned: &mut usize, total: &mut usize) {
        for inst in insts {
            match inst {
                Inst::GLoad {
                    map, aligned: a, ..
                }
                | Inst::GStore {
                    map, aligned: a, ..
                } if map.contiguous_bytes() == Some(16) => {
                    *total += 1;
                    if *a {
                        *aligned += 1;
                    }
                }
                Inst::Loop { body, .. } => go(body, aligned, total),
                _ => {}
            }
        }
    }
    go(insts, &mut aligned, &mut total);
    (aligned, total)
}

/// Convenience: does any parameter kind make the array local?
pub fn is_local(kind: ArrayKind) -> bool {
    kind == ArrayKind::Local
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::map::MemMap;
    use lgen_absint::AffineExpr;

    /// `for i in (0..16).step 4: load A+i` — all accesses aligned when the
    /// base is aligned, none when the base is off by one float.
    #[test]
    fn strided_loop_detection() {
        let mut b = KernelBuilder::new("t");
        let x = b.input("x", 16);
        let y = b.output("y", 16);
        b.for_loop("i", 0, 16, 4, |b, i| {
            let v = b.load(x, AffineExpr::var(i), MemMap::horizontal(4));
            b.store(v, y, AffineExpr::var(i), MemMap::horizontal(4));
        });
        let mut k = b.finish(0);
        detect_alignment(k.body_mut(), &[0, 0]);
        assert_eq!(count_aligned(k.body()), (2, 2));
        detect_alignment(k.body_mut(), &[1, 0]);
        assert_eq!(count_aligned(k.body()), (1, 2));
    }

    /// The paper's Listing 3.2: a loop taken once with a non-multiple step —
    /// the reduced product proves alignment where Congruence alone cannot.
    #[test]
    fn listing_3_2_single_trip_loop() {
        let mut b = KernelBuilder::new("t");
        let x = b.input("A", 16);
        let y = b.output("y", 16);
        b.for_loop("k", 0, 8, 13, |b, k| {
            let v = b.load(x, AffineExpr::var(k), MemMap::horizontal(4));
            b.store(v, y, AffineExpr::var(k), MemMap::horizontal(4));
        });
        let mut k = b.finish(0);
        detect_alignment(k.body_mut(), &[0, 0]);
        assert_eq!(count_aligned(k.body()), (2, 2));
    }

    /// Rows of a 4×n matrix with n mod 4 ≠ 0: only some rows are aligned —
    /// the mechanism behind the ripple in Fig. 5.1.
    #[test]
    fn row_alignment_depends_on_row_length() {
        // A is 4×6: row r starts at 6r → aligned only for r ∈ {0, 2}.
        let mut b = KernelBuilder::new("t");
        let a = b.input("A", 24);
        let y = b.output("y", 16);
        b.for_loop("r", 0, 4, 1, |b, r| {
            let v = b.load(a, AffineExpr::scaled(6, r), MemMap::horizontal(4));
            b.store(v, y, AffineExpr::scaled(4, r), MemMap::horizontal(4));
        });
        let mut k = b.finish(0);
        detect_alignment(k.body_mut(), &[0, 0]);
        // Statically the row load cannot be proven aligned (depends on r)…
        assert_eq!(count_aligned(k.body()), (1, 2));
        // …but after full unrolling, exactly the even rows are.
        let body = crate::passes::unroll(
            std::mem::take(k.body_mut()),
            crate::passes::UnrollPolicy::Full { max_trip: 8 },
        );
        *k.body_mut() = body;
        detect_alignment(k.body_mut(), &[0, 0]);
        let (aligned, total) = count_aligned(k.body());
        assert_eq!(total, 8);
        assert_eq!(aligned, 2 + 4, "rows 0 and 2 of A, all 4 stores to y");
    }

    #[test]
    fn partial_maps_are_never_marked() {
        let mut b = KernelBuilder::new("t");
        let x = b.input("x", 8);
        let y = b.output("y", 8);
        let v = b.load(x, AffineExpr::constant(0), MemMap::horizontal(3));
        b.store(v, y, AffineExpr::constant(0), MemMap::horizontal(2));
        let mut k = b.finish(0);
        detect_alignment(k.body_mut(), &[0, 0]);
        assert_eq!(count_aligned(k.body()), (0, 0));
    }

    #[test]
    fn versioning_produces_4_pow_a_plus_1() {
        let mut b = KernelBuilder::new("t");
        let x = b.input("x", 8);
        let _alpha = b.input("alpha", 1);
        let y = b.inout("y", 8);
        b.for_loop("i", 0, 8, 4, |b, i| {
            let v = b.load(x, AffineExpr::var(i), MemMap::horizontal(4));
            let w = b.load(y, AffineExpr::var(i), MemMap::horizontal(4));
            let s = b.arith(crate::ir::VArith::Add(crate::ir::VWidth::Q), v, w);
            b.store(s, y, AffineExpr::var(i), MemMap::horizontal(4));
        });
        let k = b.finish(8);
        let vk = version_for_alignment(&k);
        // Two vector arrays (x, y) versioned; alpha is don't-care.
        assert_eq!(vk.versions.len(), 4 * 4 + 1);
        // The all-aligned version must mark all 3 accesses aligned.
        let v0 = vk
            .versions
            .iter()
            .find(|v| v.required_offsets == Some(vec![Some(0), None, Some(0)]))
            .expect("all-aligned combo");
        assert_eq!(count_aligned(&v0.body), (3, 3));
        // The fallback marks none.
        let fb = vk.versions.last().unwrap();
        assert!(fb.required_offsets.is_none());
        assert_eq!(count_aligned(&fb.body), (0, 3));
        // A mixed combo: x at offset 1 (never aligned), y at 0 (aligned).
        let vm = vk
            .versions
            .iter()
            .find(|v| v.required_offsets == Some(vec![Some(1), None, Some(0)]))
            .unwrap();
        assert_eq!(count_aligned(&vm.body), (2, 3));
    }
}
