//! Loop unrolling.
//!
//! LGen "typically unrolls inner loops" (§2.1.2): full unrolling of small
//! trip counts exposes straight-line codelet chains to scalar replacement
//! and lets alignment detection see constant addresses; partial unrolling
//! trades instruction-cache pressure for instruction-level parallelism.
//! The unroll decision is part of the autotuning search space.

use crate::ir::Inst;
use lgen_absint::{AffineExpr, VarId};

/// Unrolling policy applied to every loop in a body (innermost included).
///
/// `Hash` so the policy can be part of the kernel-cache key.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum UnrollPolicy {
    /// Leave loops as written.
    None,
    /// Fully unroll every loop whose trip count is at most `max_trip`.
    Full {
        /// Trip-count threshold.
        max_trip: usize,
    },
    /// Unroll by `factor` when the trip count divides evenly; loops with
    /// trip count ≤ `factor` are fully unrolled.
    Factor {
        /// Unroll factor (≥ 2).
        factor: usize,
    },
}

/// Substitutes `var := value` in an affine expression.
fn subst_expr(e: &AffineExpr, var: VarId, value: i64) -> AffineExpr {
    let mut out = AffineExpr {
        terms: Vec::with_capacity(e.terms.len()),
        constant: e.constant,
    };
    for &(c, v) in &e.terms {
        if v == var {
            out.constant += c * value;
        } else {
            out.terms.push((c, v));
        }
    }
    out
}

/// Substitutes `var := value` throughout a block (recursively).
pub fn subst_block(insts: &[Inst], var: VarId, value: i64) -> Vec<Inst> {
    insts
        .iter()
        .map(|inst| match inst {
            Inst::GLoad {
                dst,
                arr,
                addr,
                map,
                aligned,
            } => Inst::GLoad {
                dst: *dst,
                arr: *arr,
                addr: subst_expr(addr, var, value),
                map: map.clone(),
                aligned: *aligned,
            },
            Inst::GStore {
                src,
                arr,
                addr,
                map,
                aligned,
            } => Inst::GStore {
                src: *src,
                arr: *arr,
                addr: subst_expr(addr, var, value),
                map: map.clone(),
                aligned: *aligned,
            },
            Inst::Loop {
                var: v,
                name,
                start,
                end,
                step,
                body,
            } => Inst::Loop {
                var: *v,
                name: name.clone(),
                start: *start,
                end: *end,
                step: *step,
                body: subst_block(body, var, value),
            },
            other => other.clone(),
        })
        .collect()
}

/// Applies `policy` to every loop in `insts`, bottom-up.
pub fn unroll(insts: Vec<Inst>, policy: UnrollPolicy) -> Vec<Inst> {
    insts
        .into_iter()
        .flat_map(|inst| unroll_inst(inst, policy))
        .collect()
}

fn trip_count(start: i64, end: i64, step: i64) -> usize {
    if end <= start {
        0
    } else {
        ((end - start + step - 1) / step) as usize
    }
}

fn unroll_inst(inst: Inst, policy: UnrollPolicy) -> Vec<Inst> {
    let Inst::Loop {
        var,
        name,
        start,
        end,
        step,
        body,
    } = inst
    else {
        return vec![inst];
    };
    let body = unroll(body, policy);
    let trips = trip_count(start, end, step);
    let full = |body: &[Inst]| -> Vec<Inst> {
        let mut out = Vec::new();
        let mut k = start;
        while k < end {
            out.extend(subst_block(body, var, k));
            k += step;
        }
        out
    };
    match policy {
        UnrollPolicy::None => {
            vec![Inst::Loop {
                var,
                name,
                start,
                end,
                step,
                body,
            }]
        }
        UnrollPolicy::Full { max_trip } => {
            if trips <= max_trip {
                full(&body)
            } else {
                vec![Inst::Loop {
                    var,
                    name,
                    start,
                    end,
                    step,
                    body,
                }]
            }
        }
        UnrollPolicy::Factor { factor } => {
            if trips <= factor {
                full(&body)
            } else if factor >= 2 && trips.is_multiple_of(factor) {
                // Repeat the body `factor` times with offsets, widen the step.
                let mut widened = Vec::new();
                for u in 0..factor {
                    let shifted: Vec<Inst> = body
                        .iter()
                        .map(|i| shift_var(i, var, u as i64 * step))
                        .collect();
                    widened.extend(shifted);
                }
                vec![Inst::Loop {
                    var,
                    name,
                    start,
                    end,
                    step: step * factor as i64,
                    body: widened,
                }]
            } else {
                vec![Inst::Loop {
                    var,
                    name,
                    start,
                    end,
                    step,
                    body,
                }]
            }
        }
    }
}

/// Rewrites `var` to `var + delta` inside an instruction (for factor
/// unrolling).
fn shift_var(inst: &Inst, var: VarId, delta: i64) -> Inst {
    let shift_expr = |e: &AffineExpr| -> AffineExpr {
        let coeff: i64 = e.terms.iter().filter(|t| t.1 == var).map(|t| t.0).sum();
        e.offset(coeff * delta)
    };
    match inst {
        Inst::GLoad {
            dst,
            arr,
            addr,
            map,
            aligned,
        } => Inst::GLoad {
            dst: *dst,
            arr: *arr,
            addr: shift_expr(addr),
            map: map.clone(),
            aligned: *aligned,
        },
        Inst::GStore {
            src,
            arr,
            addr,
            map,
            aligned,
        } => Inst::GStore {
            src: *src,
            arr: *arr,
            addr: shift_expr(addr),
            map: map.clone(),
            aligned: *aligned,
        },
        Inst::Loop {
            var: v,
            name,
            start,
            end,
            step,
            body,
        } => Inst::Loop {
            var: *v,
            name: name.clone(),
            start: *start,
            end: *end,
            step: *step,
            body: body.iter().map(|i| shift_var(i, var, delta)).collect(),
        },
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ArrayId;
    use crate::map::MemMap;

    fn load_at(addr: AffineExpr) -> Inst {
        Inst::GLoad {
            dst: 0,
            arr: ArrayId(0),
            addr,
            map: MemMap::horizontal(4),
            aligned: false,
        }
    }

    fn simple_loop(start: i64, end: i64, step: i64) -> Inst {
        Inst::Loop {
            var: 0,
            name: "i".into(),
            start,
            end,
            step,
            body: vec![load_at(AffineExpr::var(0))],
        }
    }

    #[test]
    fn full_unroll_substitutes_constants() {
        let out = unroll(
            vec![simple_loop(0, 12, 4)],
            UnrollPolicy::Full { max_trip: 8 },
        );
        assert_eq!(out.len(), 3);
        let addrs: Vec<i64> = out
            .iter()
            .map(|i| match i {
                Inst::GLoad { addr, .. } => {
                    assert!(addr.terms.is_empty());
                    addr.constant
                }
                _ => panic!("expected load"),
            })
            .collect();
        assert_eq!(addrs, vec![0, 4, 8]);
    }

    #[test]
    fn full_unroll_respects_threshold() {
        let out = unroll(
            vec![simple_loop(0, 400, 4)],
            UnrollPolicy::Full { max_trip: 8 },
        );
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], Inst::Loop { .. }));
    }

    #[test]
    fn factor_unroll_widens_step() {
        let out = unroll(
            vec![simple_loop(0, 32, 4)],
            UnrollPolicy::Factor { factor: 2 },
        );
        let Inst::Loop { step, body, .. } = &out[0] else {
            panic!()
        };
        assert_eq!(*step, 8);
        assert_eq!(body.len(), 2);
        let Inst::GLoad { addr, .. } = &body[1] else {
            panic!()
        };
        // Second copy accesses var + 4.
        assert_eq!(addr.constant, 4);
        assert_eq!(addr.terms, vec![(1, 0)]);
    }

    #[test]
    fn factor_unroll_skips_nondividing_trip_counts() {
        let out = unroll(
            vec![simple_loop(0, 12, 4)],
            UnrollPolicy::Factor { factor: 2 },
        );
        // 3 trips, not divisible by 2, but 3 > 2 → untouched.
        let Inst::Loop { step, body, .. } = &out[0] else {
            panic!()
        };
        assert_eq!(*step, 4);
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn nested_loops_unroll_bottom_up() {
        let inner = simple_loop(0, 8, 4);
        let outer = Inst::Loop {
            var: 1,
            name: "j".into(),
            start: 0,
            end: 100,
            step: 1,
            body: vec![inner],
        };
        let out = unroll(vec![outer], UnrollPolicy::Full { max_trip: 4 });
        // Outer survives (100 trips), inner fully unrolled inside it.
        let Inst::Loop { body, .. } = &out[0] else {
            panic!()
        };
        assert_eq!(body.len(), 2);
        assert!(body.iter().all(|i| matches!(i, Inst::GLoad { .. })));
    }
}
