//! The pass manager: C-IR optimization passes as first-class data.
//!
//! The code-level optimizations of §2.1.4/§3.1/§3.2 used to be a frozen
//! call sequence wired into the driver. Here each of them is wrapped as a
//! registered [`Pass`] object, and a whole optimization schedule is a
//! [`PassPipeline`] *value*: buildable from a spec string such as
//!
//! ```text
//! unroll,scalrep,repeat(copyprop,dce),align
//! ```
//!
//! serializable back to that string ([`PassPipeline::to_spec`]), stably
//! fingerprintable for cache keys ([`PassPipeline::fingerprint`]), and
//! runnable ([`PassPipeline::run`]). The manager owns the cross-cutting
//! machinery the driver used to hand-thread around every call:
//!
//! * **per-pass wall-clock accounting** into a dynamic [`PassStats`] table
//!   (one row per pass actually run, in first-run order);
//! * **between-pass verification** at [`VerifyLevel::EveryPass`] — interior
//!   checks only; pipeline *boundary* checks remain the caller's
//!   responsibility so failure attribution matches the driver's stages;
//! * **fixpoint combinators** — [`PipelineStep::Repeat`] reruns its body
//!   until no pass reports a change (capped at [`MAX_FIXPOINT_ITERS`]);
//! * **`--print-after-all` IR snapshots** into a [`PassTrace`].
//!
//! Passes declare which analysis results ([`Analysis`]) they
//! [`preserve`](Pass::preserves), [`invalidate`](Pass::invalidates), or
//! [`provide`](Pass::provides); the manager folds these over the run and
//! reports which facts are still valid at exit ([`PipelineReport::valid`]).

use super::{copy_prop, dce, detect_alignment, scalar_replacement, unroll, UnrollPolicy};
use crate::arena::{self, Arena, BlockId};
use crate::ir::{ArrayDecl, Kernel};
use crate::unparse::unparse;
use crate::verify::{verify_stage, VerifyFailure, VerifyLevel};
use lgen_isa::VectorIsa;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Iteration cap for [`PipelineStep::Repeat`]: a repeat block that has not
/// reached a fixpoint after this many rounds stops anyway (every pass is a
/// semantics preserver, so stopping early is always sound).
pub const MAX_FIXPOINT_ITERS: usize = 8;

/// Analysis results that live *in* the IR and that passes may keep valid
/// or silently stale.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Analysis {
    /// Alignment facts: the `aligned` marks the `align` pass proves onto
    /// generic memory accesses (§3.2).
    Alignment,
}

/// Every analysis the manager tracks.
pub const ALL_ANALYSES: &[Analysis] = &[Analysis::Alignment];

/// Shared context a pipeline run threads through every pass.
///
/// The pipeline spec is pure *ordering* data; pass parameters that the
/// autotuner searches independently (the unrolling decision) or that are
/// fixed per compilation (the target ISA, the verification level) live
/// here instead of in the spec.
#[derive(Clone, Copy, Debug)]
pub struct PassCtx<'a> {
    /// Unrolling decision for the `unroll` pass.
    pub unroll: UnrollPolicy,
    /// Verification between passes: at [`VerifyLevel::EveryPass`] the
    /// manager re-verifies the kernel after every pass execution (interior
    /// checks; boundary checks are the caller's).
    pub verify: VerifyLevel,
    /// Target ISA, used to render [`PassTrace`] snapshots.
    pub isa: VectorIsa,
    /// Per-pass wall-clock accounting sink.
    pub stats: Option<&'a PassStats>,
    /// `--print-after-all` snapshot sink.
    pub trace: Option<&'a PassTrace>,
}

impl PassCtx<'_> {
    /// A context with the given unrolling decision and everything else
    /// off: no verification, scalar ISA for traces, no sinks.
    pub fn new(unroll: UnrollPolicy) -> Self {
        PassCtx {
            unroll,
            verify: VerifyLevel::Off,
            isa: VectorIsa::Scalar,
            stats: None,
            trace: None,
        }
    }
}

/// A code-level optimization, wrapped as a first-class unit the manager
/// can schedule, time, verify, and repeat.
pub trait Pass: Sync {
    /// Canonical spec-string name (`unroll`, `scalrep`, `copyprop`, `dce`,
    /// `align`).
    fn name(&self) -> &'static str;

    /// Runs the pass on an unversioned kernel; returns whether the kernel
    /// changed (drives [`PipelineStep::Repeat`] fixpoints).
    fn run(&self, kernel: &mut Kernel, ctx: &PassCtx) -> bool;

    /// Analyses whose in-IR results remain valid across this pass.
    fn preserves(&self) -> &'static [Analysis] {
        &[]
    }

    /// Analyses this pass establishes.
    fn provides(&self) -> &'static [Analysis] {
        &[]
    }

    /// Analyses this pass leaves stale: everything it neither
    /// [`preserves`](Self::preserves) nor [`provides`](Self::provides).
    fn invalidates(&self) -> Vec<Analysis> {
        ALL_ANALYSES
            .iter()
            .copied()
            .filter(|a| !self.preserves().contains(a) && !self.provides().contains(a))
            .collect()
    }
}

/// Takes the single body out of `kernel`, maps it through `f`, puts the
/// result back, and reports whether it changed.
fn rewrite_body(
    kernel: &mut Kernel,
    f: impl FnOnce(Vec<crate::ir::Inst>) -> Vec<crate::ir::Inst>,
) -> bool {
    let body = std::mem::take(kernel.body_mut());
    let out = f(body.clone());
    let changed = out != body;
    *kernel.body_mut() = out;
    changed
}

/// Loop unrolling (§2.1.2) under the context's [`UnrollPolicy`].
pub struct UnrollPass;

impl Pass for UnrollPass {
    fn name(&self) -> &'static str {
        "unroll"
    }
    fn run(&self, kernel: &mut Kernel, ctx: &PassCtx) -> bool {
        rewrite_body(kernel, |b| unroll(b, ctx.unroll))
    }
}

/// Scalar replacement over generic load/store footprints (§3.1).
pub struct ScalarReplacementPass;

impl Pass for ScalarReplacementPass {
    fn name(&self) -> &'static str {
        "scalrep"
    }
    fn run(&self, kernel: &mut Kernel, _ctx: &PassCtx) -> bool {
        let arrays = kernel.arrays.clone();
        rewrite_body(kernel, |b| scalar_replacement(b, &arrays))
    }
    fn preserves(&self) -> &'static [Analysis] {
        // Surviving accesses keep their addresses, hence their marks.
        &[Analysis::Alignment]
    }
}

/// Copy propagation of the register moves scalar replacement introduces.
pub struct CopyPropPass;

impl Pass for CopyPropPass {
    fn name(&self) -> &'static str {
        "copyprop"
    }
    fn run(&self, kernel: &mut Kernel, _ctx: &PassCtx) -> bool {
        rewrite_body(kernel, copy_prop)
    }
    fn preserves(&self) -> &'static [Analysis] {
        // Rewrites register operands only; addresses are untouched.
        &[Analysis::Alignment]
    }
}

/// Dead-code elimination of dead local stores and value chains.
pub struct DcePass;

impl Pass for DcePass {
    fn name(&self) -> &'static str {
        "dce"
    }
    fn run(&self, kernel: &mut Kernel, _ctx: &PassCtx) -> bool {
        let arrays = kernel.arrays.clone();
        rewrite_body(kernel, |b| dce(b, &arrays))
    }
    fn preserves(&self) -> &'static [Analysis] {
        // Only removes instructions; survivors keep their marks.
        &[Analysis::Alignment]
    }
}

/// Alignment detection (§3.2) under the all-aligned assumption.
pub struct AlignPass;

impl Pass for AlignPass {
    fn name(&self) -> &'static str {
        "align"
    }
    fn run(&self, kernel: &mut Kernel, _ctx: &PassCtx) -> bool {
        let zeros = vec![0usize; kernel.arrays.len()];
        let before = kernel.body().to_vec();
        detect_alignment(kernel.body_mut(), &zeros);
        *kernel.body() != before[..]
    }
    fn provides(&self) -> &'static [Analysis] {
        &[Analysis::Alignment]
    }
}

/// The pass registry: every schedulable pass, in canonical order.
pub static PASSES: &[&dyn Pass] = &[
    &UnrollPass,
    &ScalarReplacementPass,
    &CopyPropPass,
    &DcePass,
    &AlignPass,
];

/// Resolves a spec-string name (canonical or alias) to its registered
/// pass. Aliases accept the hyphenated long names the verifier stages use.
pub fn pass_by_name(name: &str) -> Option<&'static dyn Pass> {
    let canonical = match name {
        "scalar-replacement" => "scalrep",
        "copy-prop" => "copyprop",
        "alignment" => "align",
        other => other,
    };
    PASSES.iter().copied().find(|p| p.name() == canonical)
}

/// One step of a [`PassPipeline`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum PipelineStep {
    /// Run a registered pass once (canonical name, always resolvable via
    /// [`pass_by_name`]).
    Pass(&'static str),
    /// Run the inner steps repeatedly until none of them changes the
    /// kernel (capped at [`MAX_FIXPOINT_ITERS`] rounds).
    Repeat(Vec<PipelineStep>),
}

/// Error parsing a pipeline spec string.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PipelineSpecError {
    /// Human-readable description of what was wrong.
    pub message: String,
}

impl fmt::Display for PipelineSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid pass pipeline spec: {}", self.message)
    }
}

impl std::error::Error for PipelineSpecError {}

/// What a pipeline run did.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PipelineReport {
    /// Individual pass executions (repeat rounds counted each time).
    pub passes_run: usize,
    /// Whether any pass changed the kernel.
    pub changed: bool,
    /// Analyses whose in-IR results are valid at pipeline exit, per the
    /// passes' [`preserves`](Pass::preserves)/[`provides`](Pass::provides)
    /// declarations.
    pub valid: Vec<Analysis>,
}

/// An optimization schedule as a value: an ordered list of
/// [`PipelineStep`]s.
///
/// Equality, hashing, and [`fingerprint`](Self::fingerprint) are all
/// structural, so a pipeline can serve as (part of) a kernel-cache key;
/// [`to_spec`](Self::to_spec)/[`parse`](Self::parse) round-trip exactly.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PassPipeline {
    steps: Vec<PipelineStep>,
}

impl Default for PassPipeline {
    fn default() -> Self {
        Self::standard()
    }
}

impl PassPipeline {
    /// The standard LGen schedule: `unroll,scalrep,copyprop,dce,align`.
    pub fn standard() -> Self {
        PassPipeline {
            steps: vec![
                PipelineStep::Pass("unroll"),
                PipelineStep::Pass("scalrep"),
                PipelineStep::Pass("copyprop"),
                PipelineStep::Pass("dce"),
                PipelineStep::Pass("align"),
            ],
        }
    }

    /// A pipeline that runs nothing.
    pub fn empty() -> Self {
        PassPipeline { steps: Vec::new() }
    }

    /// Whether the pipeline has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The top-level steps.
    pub fn steps(&self) -> &[PipelineStep] {
        &self.steps
    }

    /// Parses a spec string: comma-separated pass names (canonical or
    /// alias) and `repeat(...)` groups, nestable. The empty string is the
    /// empty pipeline.
    pub fn parse(spec: &str) -> Result<Self, PipelineSpecError> {
        let mut tokens = tokenize(spec)?;
        tokens.reverse(); // pop() from the front
        let steps = parse_steps(&mut tokens, false)?;
        if let Some(t) = tokens.pop() {
            return Err(PipelineSpecError {
                message: format!("unexpected `{t}` after end of pipeline"),
            });
        }
        Ok(PassPipeline { steps })
    }

    /// Serializes back to the canonical spec string
    /// (`parse(p.to_spec()) == p`).
    pub fn to_spec(&self) -> String {
        fn write_steps(steps: &[PipelineStep], out: &mut String) {
            for (i, step) in steps.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match step {
                    PipelineStep::Pass(name) => out.push_str(name),
                    PipelineStep::Repeat(inner) => {
                        out.push_str("repeat(");
                        write_steps(inner, out);
                        out.push(')');
                    }
                }
            }
        }
        let mut out = String::new();
        write_steps(&self.steps, &mut out);
        out
    }

    /// A stable 64-bit fingerprint of the schedule (FNV-1a over the
    /// canonical spec), usable in content-addressed cache keys across
    /// processes.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_spec().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Whether the pipeline schedules `name` anywhere (aliases accepted,
    /// repeat groups included).
    pub fn contains(&self, name: &str) -> bool {
        let canonical = pass_by_name(name).map(|p| p.name());
        fn search(steps: &[PipelineStep], name: &str) -> bool {
            steps.iter().any(|s| match s {
                PipelineStep::Pass(n) => *n == name,
                PipelineStep::Repeat(inner) => search(inner, name),
            })
        }
        canonical.is_some_and(|n| search(&self.steps, n))
    }

    /// A copy with every occurrence of `name` removed (repeat groups that
    /// become empty are dropped). Unknown names remove nothing.
    #[must_use]
    pub fn without(&self, name: &str) -> Self {
        let Some(canonical) = pass_by_name(name).map(|p| p.name()) else {
            return self.clone();
        };
        fn filter(steps: &[PipelineStep], name: &str) -> Vec<PipelineStep> {
            steps
                .iter()
                .filter_map(|s| match s {
                    PipelineStep::Pass(n) if *n == name => None,
                    PipelineStep::Pass(n) => Some(PipelineStep::Pass(n)),
                    PipelineStep::Repeat(inner) => {
                        let inner = filter(inner, name);
                        (!inner.is_empty()).then_some(PipelineStep::Repeat(inner))
                    }
                })
                .collect()
        }
        PassPipeline {
            steps: filter(&self.steps, canonical),
        }
    }

    /// Runs the schedule on an unversioned kernel: times every pass into
    /// `ctx.stats`, snapshots into `ctx.trace`, verifies between passes at
    /// [`VerifyLevel::EveryPass`], and drives `repeat(...)` fixpoints.
    ///
    /// Boundary verification (the codegen input and the final kernel) is
    /// deliberately left to the caller so its failure attribution matches
    /// the surrounding driver stages.
    ///
    /// Internally the kernel body is converted to the arena representation
    /// ([`crate::arena`]) once, the passes run as linear index sweeps, and
    /// the body is converted back once. When per-pass observation is
    /// requested (an IR trace sink or [`VerifyLevel::EveryPass`]) the run
    /// falls back to the tree-walking reference path, which materializes a
    /// `Kernel` after every pass.
    pub fn run(&self, kernel: &mut Kernel, ctx: &PassCtx) -> Result<PipelineReport, VerifyFailure> {
        if ctx.trace.is_none() && ctx.verify != VerifyLevel::EveryPass {
            return self.run_arena(kernel, ctx);
        }
        self.run_reference(kernel, ctx)
    }

    /// The tree-walking reference implementation of [`run`](Self::run):
    /// every pass is a clone-and-rebuild rewrite over boxed [`Inst`]
    /// trees. Semantically authoritative — the arena fast path is pinned
    /// to it by the differential suite (`tests/arena_equivalence.rs`) —
    /// and required when observing the IR between passes.
    ///
    /// [`Inst`]: crate::ir::Inst
    pub fn run_reference(
        &self,
        kernel: &mut Kernel,
        ctx: &PassCtx,
    ) -> Result<PipelineReport, VerifyFailure> {
        let mut report = PipelineReport::default();
        let mut valid: Vec<Analysis> = Vec::new();
        report.changed = run_steps(&self.steps, kernel, ctx, &mut report.passes_run, &mut valid)?;
        report.valid = valid;
        Ok(report)
    }

    /// The arena fast path: one tree→arena conversion, linear sweeps, one
    /// arena→tree conversion.
    fn run_arena(
        &self,
        kernel: &mut Kernel,
        ctx: &PassCtx,
    ) -> Result<PipelineReport, VerifyFailure> {
        let body = std::mem::take(kernel.body_mut());
        let (mut arena, root) = Arena::from_body(&body);
        drop(body);
        let mut report = PipelineReport::default();
        let mut valid: Vec<Analysis> = Vec::new();
        report.changed = run_steps_arena(
            &self.steps,
            &mut arena,
            root,
            &kernel.arrays,
            ctx,
            &mut report.passes_run,
            &mut valid,
        )?;
        report.valid = valid;
        *kernel.body_mut() = arena.to_body(root);
        Ok(report)
    }
}

impl fmt::Display for PassPipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_spec())
    }
}

impl FromStr for PassPipeline {
    type Err = PipelineSpecError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

/// Executes `steps` in order; returns whether anything changed.
fn run_steps(
    steps: &[PipelineStep],
    kernel: &mut Kernel,
    ctx: &PassCtx,
    passes_run: &mut usize,
    valid: &mut Vec<Analysis>,
) -> Result<bool, VerifyFailure> {
    let mut changed_any = false;
    for step in steps {
        match step {
            PipelineStep::Pass(name) => {
                let pass = pass_by_name(name).expect("pipeline steps hold registered names");
                let mut span = lgen_telemetry::span(name);
                let t = Instant::now();
                let changed = pass.run(kernel, ctx);
                let ns = t.elapsed().as_nanos() as u64;
                if span.is_recording() {
                    span.attr("pass_ns", ns);
                    span.attr("changed", changed);
                }
                drop(span);
                if let Some(stats) = ctx.stats {
                    stats.record(name, ns);
                }
                *passes_run += 1;
                changed_any |= changed;
                valid.retain(|a| pass.preserves().contains(a));
                for a in pass.provides() {
                    if !valid.contains(a) {
                        valid.push(*a);
                    }
                }
                if let Some(trace) = ctx.trace {
                    trace.record(name, kernel, ctx.isa);
                }
                verify_stage(name, kernel, ctx.verify, false)?;
            }
            PipelineStep::Repeat(inner) => {
                for _ in 0..MAX_FIXPOINT_ITERS {
                    let changed = run_steps(inner, kernel, ctx, passes_run, valid)?;
                    changed_any |= changed;
                    if !changed {
                        break;
                    }
                }
            }
        }
    }
    Ok(changed_any)
}

/// Executes `steps` as arena sweeps; returns whether anything changed.
/// Bookkeeping (spans, stats, pass counts, analysis validity) matches
/// [`run_steps`] row for row; only the IR representation differs.
fn run_steps_arena(
    steps: &[PipelineStep],
    a: &mut Arena,
    root: BlockId,
    arrays: &[ArrayDecl],
    ctx: &PassCtx,
    passes_run: &mut usize,
    valid: &mut Vec<Analysis>,
) -> Result<bool, VerifyFailure> {
    let mut changed_any = false;
    for step in steps {
        match step {
            PipelineStep::Pass(name) => {
                let pass = pass_by_name(name).expect("pipeline steps hold registered names");
                let mut span = lgen_telemetry::span(name);
                let t = Instant::now();
                let changed = match *name {
                    "unroll" => arena::unroll_block(a, root, ctx.unroll),
                    "scalrep" => arena::scalar_replacement_block(a, root, arrays),
                    "copyprop" => arena::copy_prop_block(a, root),
                    "dce" => arena::dce_block(a, root, arrays),
                    "align" => arena::align_block(a, root, &vec![0usize; arrays.len()]),
                    other => unreachable!("registered pass `{other}` has no arena sweep"),
                };
                let ns = t.elapsed().as_nanos() as u64;
                if span.is_recording() {
                    span.attr("pass_ns", ns);
                    span.attr("changed", changed);
                }
                drop(span);
                if let Some(stats) = ctx.stats {
                    stats.record(name, ns);
                }
                *passes_run += 1;
                changed_any |= changed;
                valid.retain(|an| pass.preserves().contains(an));
                for an in pass.provides() {
                    if !valid.contains(an) {
                        valid.push(*an);
                    }
                }
            }
            PipelineStep::Repeat(inner) => {
                for _ in 0..MAX_FIXPOINT_ITERS {
                    let changed = run_steps_arena(inner, a, root, arrays, ctx, passes_run, valid)?;
                    changed_any |= changed;
                    if !changed {
                        break;
                    }
                }
            }
        }
    }
    Ok(changed_any)
}

/// Spec tokens: pass names, `repeat`, `(`, `)`, `,`.
fn tokenize(spec: &str) -> Result<Vec<String>, PipelineSpecError> {
    let mut tokens = Vec::new();
    let mut word = String::new();
    for c in spec.chars() {
        match c {
            '(' | ')' | ',' => {
                if !word.is_empty() {
                    tokens.push(std::mem::take(&mut word));
                }
                tokens.push(c.to_string());
            }
            c if c.is_whitespace() => {
                if !word.is_empty() {
                    tokens.push(std::mem::take(&mut word));
                }
            }
            c if c.is_ascii_alphanumeric() || c == '-' || c == '_' => word.push(c),
            c => {
                return Err(PipelineSpecError {
                    message: format!("unexpected character `{c}`"),
                })
            }
        }
    }
    if !word.is_empty() {
        tokens.push(word);
    }
    Ok(tokens)
}

/// Parses a comma-separated step list from a reversed token stack; stops
/// at `)` (consuming it) when `in_group`.
fn parse_steps(
    tokens: &mut Vec<String>,
    in_group: bool,
) -> Result<Vec<PipelineStep>, PipelineSpecError> {
    let mut steps = Vec::new();
    loop {
        match tokens.pop() {
            None if in_group => {
                return Err(PipelineSpecError {
                    message: "unclosed `repeat(`".into(),
                })
            }
            None => return Ok(steps),
            Some(t) if t == ")" && in_group => {
                if steps.is_empty() {
                    return Err(PipelineSpecError {
                        message: "`repeat()` must contain at least one pass".into(),
                    });
                }
                return Ok(steps);
            }
            Some(t) if t == "repeat" => {
                match tokens.pop() {
                    Some(p) if p == "(" => {}
                    _ => {
                        return Err(PipelineSpecError {
                            message: "`repeat` must be followed by `(`".into(),
                        })
                    }
                }
                steps.push(PipelineStep::Repeat(parse_steps(tokens, true)?));
                expect_separator(tokens, in_group)?;
            }
            Some(t) if t == "," || t == "(" || t == ")" => {
                return Err(PipelineSpecError {
                    message: format!("unexpected `{t}`"),
                })
            }
            Some(name) => {
                let pass = pass_by_name(&name).ok_or_else(|| PipelineSpecError {
                    message: format!(
                        "unknown pass `{name}` (known: {})",
                        PASSES
                            .iter()
                            .map(|p| p.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                })?;
                steps.push(PipelineStep::Pass(pass.name()));
                expect_separator(tokens, in_group)?;
            }
        }
        // expect_separator consumed a `,`; loop for the next step. A `)` or
        // end-of-input was pushed back and handled above.
    }
}

/// After a step: consume `,`, or push back a group-closing `)`, or accept
/// end of input.
fn expect_separator(tokens: &mut Vec<String>, in_group: bool) -> Result<(), PipelineSpecError> {
    match tokens.pop() {
        None if !in_group => Ok(()),
        None => Err(PipelineSpecError {
            message: "unclosed `repeat(`".into(),
        }),
        Some(t) if t == "," => Ok(()),
        Some(t) if t == ")" && in_group => {
            tokens.push(t);
            Ok(())
        }
        Some(t) => Err(PipelineSpecError {
            message: format!("expected `,` but found `{t}`"),
        }),
    }
}

/// Cumulative per-pass wall-clock accounting: one dynamic row per pass
/// actually run (plus driver-recorded stages such as `codegen`), in
/// first-run order. Shared by reference across worker threads; rows are
/// totals, not a trace.
#[derive(Debug, Default)]
pub struct PassStats {
    rows: Mutex<Vec<PassStatsRow>>,
    compiles: AtomicU64,
}

#[derive(Debug, Clone)]
struct PassStatsRow {
    name: String,
    ns: u64,
    runs: u64,
}

impl PassStats {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one run of `name` taking `ns` nanoseconds.
    ///
    /// Stats/trace locks swallow poisoning: a panicking candidate sharing
    /// this `PassStats` with a long-running service must cost at most its
    /// own request, never wedge later compiles on a poisoned lock (the
    /// guarded state is append-only rows, safe to read after any panic).
    pub fn record(&self, name: &str, ns: u64) {
        let mut rows = self
            .rows
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match rows.iter_mut().find(|r| r.name == name) {
            Some(row) => {
                row.ns += ns;
                row.runs += 1;
            }
            None => rows.push(PassStatsRow {
                name: name.to_string(),
                ns,
                runs: 1,
            }),
        }
    }

    /// Counts one full pipeline run.
    pub fn record_compile(&self) {
        self.compiles.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of full pipeline runs recorded.
    pub fn compiles(&self) -> u64 {
        self.compiles.load(Ordering::Relaxed)
    }

    /// `(pass name, cumulative nanoseconds, runs)` rows in first-run
    /// order — one row per pass actually run.
    pub fn rows(&self) -> Vec<(String, u64, u64)> {
        self.rows
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|r| (r.name.clone(), r.ns, r.runs))
            .collect()
    }

    /// Total nanoseconds across all rows.
    pub fn total_ns(&self) -> u64 {
        self.rows
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|r| r.ns)
            .sum()
    }
}

/// `--print-after-all` sink: the IR (as C-with-intrinsics text) after each
/// recorded stage, in execution order.
#[derive(Debug, Default)]
pub struct PassTrace {
    snaps: Mutex<Vec<(String, String)>>,
}

impl PassTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the kernel as it stands after `stage`.
    pub fn record(&self, stage: &str, kernel: &Kernel, isa: VectorIsa) {
        self.snaps
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push((stage.to_string(), unparse(kernel, isa)));
    }

    /// `(stage, rendered IR)` snapshots in execution order.
    pub fn snapshots(&self) -> Vec<(String, String)> {
        self.snaps
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_and_resolves_aliases() {
        let spec = "unroll,scalrep,repeat(copyprop,dce),align";
        let p = PassPipeline::parse(spec).unwrap();
        assert_eq!(p.to_spec(), spec);
        assert_eq!(PassPipeline::parse(&p.to_spec()).unwrap(), p);
        // Aliases canonicalize.
        let long =
            PassPipeline::parse("unroll, scalar-replacement, repeat(copy-prop, dce), alignment")
                .unwrap();
        assert_eq!(long, p);
        // Standard order matches the issue's default spec.
        assert_eq!(
            PassPipeline::standard().to_spec(),
            "unroll,scalrep,copyprop,dce,align"
        );
        assert_eq!(
            PassPipeline::parse("unroll,scalrep,copyprop,dce,align").unwrap(),
            PassPipeline::standard()
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "unroll,,dce",
            "nosuchpass",
            "repeat(unroll",
            "repeat()",
            "repeat",
            "unroll)",
            "unroll dce",
            "unroll,repeat(dce))",
            "unroll;dce",
        ] {
            assert!(PassPipeline::parse(bad).is_err(), "`{bad}` must not parse");
        }
        let err = PassPipeline::parse("nosuchpass").unwrap_err();
        assert!(err.to_string().contains("unknown pass"), "{err}");
        assert!(err.to_string().contains("scalrep"), "{err}");
    }

    #[test]
    fn empty_spec_is_the_empty_pipeline() {
        let p = PassPipeline::parse("").unwrap();
        assert!(p.is_empty());
        assert_eq!(p.to_spec(), "");
        assert_eq!(p, PassPipeline::empty());
    }

    #[test]
    fn fingerprints_are_stable_and_spec_sensitive() {
        let a = PassPipeline::standard();
        assert_eq!(a.fingerprint(), PassPipeline::standard().fingerprint());
        let b = a.without("align");
        assert_ne!(a.fingerprint(), b.fingerprint());
        let c = PassPipeline::parse("unroll,scalrep,repeat(copyprop,dce),align").unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
        // The fingerprint is content-addressed: independent of process
        // state (spot-check the FNV of the standard spec).
        assert_eq!(a.fingerprint(), {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in "unroll,scalrep,copyprop,dce,align".bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        });
    }

    #[test]
    fn contains_and_without_descend_into_repeats() {
        let p = PassPipeline::parse("unroll,repeat(copyprop,dce),align").unwrap();
        assert!(p.contains("dce"));
        assert!(p.contains("alignment")); // alias
        assert!(!p.contains("scalrep"));
        let no_dce = p.without("dce");
        assert_eq!(no_dce.to_spec(), "unroll,repeat(copyprop),align");
        let no_align = p.without("alignment");
        assert_eq!(no_align.to_spec(), "unroll,repeat(copyprop,dce)");
        // Removing every pass of a repeat drops the group entirely.
        let gutted = p.without("copyprop").without("dce");
        assert_eq!(gutted.to_spec(), "unroll,align");
        // Unknown names are a no-op.
        assert_eq!(p.without("nosuchpass"), p);
    }

    #[test]
    fn registry_knows_every_standard_pass() {
        for name in ["unroll", "scalrep", "copyprop", "dce", "align"] {
            let p = pass_by_name(name).unwrap_or_else(|| panic!("`{name}` not registered"));
            assert_eq!(p.name(), name);
        }
        assert!(pass_by_name("nosuchpass").is_none());
        assert_eq!(PASSES.len(), 5);
    }

    #[test]
    fn invalidates_is_the_complement_of_preserves_and_provides() {
        assert_eq!(UnrollPass.invalidates(), vec![Analysis::Alignment]);
        assert!(DcePass.invalidates().is_empty());
        assert!(AlignPass.invalidates().is_empty());
    }
}
