//! Register copy propagation.
//!
//! Scalar replacement leaves `Mov dst ← src` instructions behind; this pass
//! rewrites later uses of `dst` to `src` so that dead-code elimination can
//! drop the moves (and, transitively, the stores that fed them).

use crate::ir::{Inst, VMove, VReg};
use std::collections::HashMap;

/// Propagates copies within each straight-line region (loops are barriers —
/// registers defined before a loop but copied inside it keep their moves).
pub fn copy_prop(insts: Vec<Inst>) -> Vec<Inst> {
    prop_block(insts)
}

fn resolve(copies: &HashMap<VReg, VReg>, mut r: VReg) -> VReg {
    // Paths are short; guard against accidental cycles anyway.
    for _ in 0..copies.len() + 1 {
        match copies.get(&r) {
            Some(&next) => r = next,
            None => break,
        }
    }
    r
}

/// Removes any mapping that flows *through* `dst` (it is being redefined).
fn kill(copies: &mut HashMap<VReg, VReg>, dst: VReg) {
    copies.remove(&dst);
    copies.retain(|_, v| *v != dst);
}

fn prop_block(insts: Vec<Inst>) -> Vec<Inst> {
    let mut copies: HashMap<VReg, VReg> = HashMap::new();
    let mut out = Vec::with_capacity(insts.len());
    for inst in insts {
        match inst {
            Inst::Move {
                op: VMove::Mov,
                dst,
                a,
                b: _,
            } => {
                let src = resolve(&copies, a);
                kill(&mut copies, dst);
                if src != dst {
                    copies.insert(dst, src);
                }
                // Keep the move; DCE removes it if no un-rewritten use remains.
                out.push(Inst::Move {
                    op: VMove::Mov,
                    dst,
                    a: src,
                    b: 0,
                });
            }
            Inst::Move { op, dst, a, b } => {
                let (a, b) = (resolve(&copies, a), resolve(&copies, b));
                kill(&mut copies, dst);
                out.push(Inst::Move { op, dst, a, b });
            }
            Inst::Arith { op, dst, a, b } => {
                let (a, b) = (resolve(&copies, a), resolve(&copies, b));
                // Accumulating ops read dst: the read must see the resolved
                // source, but dst is then redefined in place, so accumulation
                // through a copy is left un-propagated to stay correct.
                kill(&mut copies, dst);
                out.push(Inst::Arith { op, dst, a, b });
            }
            Inst::GLoad {
                dst,
                arr,
                addr,
                map,
                aligned,
            } => {
                kill(&mut copies, dst);
                out.push(Inst::GLoad {
                    dst,
                    arr,
                    addr,
                    map,
                    aligned,
                });
            }
            Inst::GStore {
                src,
                arr,
                addr,
                map,
                aligned,
            } => {
                let src = resolve(&copies, src);
                out.push(Inst::GStore {
                    src,
                    arr,
                    addr,
                    map,
                    aligned,
                });
            }
            Inst::Overhead { kind, count } => {
                out.push(Inst::Overhead { kind, count });
            }
            Inst::Loop {
                var,
                name,
                start,
                end,
                step,
                body,
            } => {
                // Copies made before the loop hold on entry, but iterating
                // may redefine sources; be conservative.
                copies.clear();
                out.push(Inst::Loop {
                    var,
                    name,
                    start,
                    end,
                    step,
                    body: prop_block(body),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ArrayId, VArith, VWidth};
    use crate::map::MemMap;
    use lgen_absint::AffineExpr;

    fn mov(dst: VReg, a: VReg) -> Inst {
        Inst::Move {
            op: VMove::Mov,
            dst,
            a,
            b: 0,
        }
    }

    fn add(dst: VReg, a: VReg, b: VReg) -> Inst {
        Inst::Arith {
            op: VArith::Add(VWidth::Q),
            dst,
            a,
            b,
        }
    }

    #[test]
    fn uses_are_rewritten() {
        let out = prop_block(vec![mov(1, 0), add(2, 1, 1)]);
        assert_eq!(out[1], add(2, 0, 0));
    }

    #[test]
    fn chains_resolve_transitively() {
        let out = prop_block(vec![mov(1, 0), mov(2, 1), add(3, 2, 2)]);
        assert_eq!(out[2], add(3, 0, 0));
    }

    #[test]
    fn redefinition_kills_mapping() {
        let out = prop_block(vec![
            mov(1, 0),
            // 0 is redefined: the copy 1←0 must die.
            Inst::GLoad {
                dst: 0,
                arr: ArrayId(0),
                addr: AffineExpr::constant(0),
                map: MemMap::horizontal(4),
                aligned: false,
            },
            add(2, 1, 1),
        ]);
        // The use of 1 must NOT be rewritten to the redefined 0.
        assert_eq!(out[2], add(2, 1, 1));
    }

    #[test]
    fn store_sources_are_rewritten() {
        let out = prop_block(vec![
            mov(1, 0),
            Inst::GStore {
                src: 1,
                arr: ArrayId(0),
                addr: AffineExpr::constant(0),
                map: MemMap::horizontal(4),
                aligned: false,
            },
        ]);
        let Inst::GStore { src, .. } = out[1] else {
            panic!()
        };
        assert_eq!(src, 0);
    }
}
