//! Scalar replacement (§2.1.4, §3.1).
//!
//! LGen's codelets follow a load-compute-store discipline, chained through
//! kernel-local temporary arrays (Fig. 2.3). Scalar replacement substitutes
//! a store to a local array followed by a load with the *same memory
//! footprint* — same array, same affine address, same memory map — by a
//! register move (Fig. 2.4). Because footprints are compared on the generic
//! load/store level, a store and a load that would be *implemented* by
//! different instruction sequences still forward (Fig. 3.4), which is the
//! whole point of the generic memory instructions.

use crate::ir::{ArrayDecl, ArrayKind, Inst, VMove};
use lgen_absint::AffineExpr;
use std::collections::HashMap;

/// Hashable key of a memory footprint.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct Footprint {
    arr: usize,
    terms: Vec<(i64, usize)>,
    constant: i64,
    map: Vec<(i64, u8)>,
    broadcast: bool,
}

fn footprint(arr: crate::ir::ArrayId, addr: &AffineExpr, map: &crate::map::MemMap) -> Footprint {
    let mut terms: Vec<(i64, usize)> = addr.terms.iter().map(|&(c, v)| (c, v)).collect();
    terms.sort_by_key(|&(_, v)| v);
    Footprint {
        arr: arr.0,
        terms,
        constant: addr.constant,
        map: map.entries().to_vec(),
        broadcast: map.is_broadcast(),
    }
}

/// Ranges touched by two footprints on the same array might overlap even if
/// the footprints differ; this coarse check errs on the safe side.
fn may_overlap(a: &Footprint, b: &Footprint) -> bool {
    if a.arr != b.arr {
        return false;
    }
    if a.terms != b.terms {
        // Different index expressions on the same array: assume aliasing.
        return true;
    }
    let a_lo = a.constant;
    let a_hi = a.constant + a.map.iter().map(|e| e.0).max().unwrap_or(0);
    let b_lo = b.constant;
    let b_hi = b.constant + b.map.iter().map(|e| e.0).max().unwrap_or(0);
    a_lo <= b_hi && b_lo <= a_hi
}

/// Applies scalar replacement to a body, recursively inside loops.
///
/// Only *local* arrays participate: parameters may alias each other, so
/// store→load forwarding through them would be unsound in general.
pub fn scalar_replacement(insts: Vec<Inst>, arrays: &[ArrayDecl]) -> Vec<Inst> {
    replace_block(insts, arrays)
}

/// The register an instruction (re)defines, if any.
fn defined_reg(inst: &Inst) -> Option<u32> {
    match inst {
        Inst::GLoad { dst, .. } | Inst::Arith { dst, .. } | Inst::Move { dst, .. } => Some(*dst),
        _ => None,
    }
}

fn replace_block(insts: Vec<Inst>, arrays: &[ArrayDecl]) -> Vec<Inst> {
    // Footprint → register holding the stored value.
    let mut avail: HashMap<Footprint, u32> = HashMap::new();
    let mut out = Vec::with_capacity(insts.len());
    for inst in insts {
        // A redefined register invalidates forwardings that captured its
        // old value (unrolled bodies reuse the same virtual registers).
        if let Some(d) = defined_reg(&inst) {
            avail.retain(|_, v| *v != d);
        }
        match inst {
            Inst::GStore {
                src,
                arr,
                ref addr,
                ref map,
                ..
            } if arrays[arr.0].kind == ArrayKind::Local => {
                let fp = footprint(arr, addr, map);
                // A store may invalidate overlapping prior stores.
                avail.retain(|k, _| !may_overlap(k, &fp) || k == &fp);
                avail.insert(fp, src);
                out.push(inst);
            }
            Inst::GLoad {
                dst,
                arr,
                ref addr,
                ref map,
                ..
            } if arrays[arr.0].kind == ArrayKind::Local => {
                let fp = footprint(arr, addr, map);
                if let Some(&src) = avail.get(&fp) {
                    // Matched footprint: forward through a register move.
                    out.push(Inst::Move {
                        op: VMove::Mov,
                        dst,
                        a: src,
                        b: 0,
                    });
                } else {
                    out.push(inst);
                }
            }
            Inst::Loop {
                var,
                name,
                start,
                end,
                step,
                body,
            } => {
                // Conservative: a loop body may overwrite any local array,
                // so forwardings do not survive across the loop boundary,
                // and the body starts with an empty availability set.
                avail.clear();
                out.push(Inst::Loop {
                    var,
                    name,
                    start,
                    end,
                    step,
                    body: replace_block(body, arrays),
                });
            }
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::ir::{VArith, VWidth};
    use crate::map::MemMap;
    use crate::passes::{copy_prop, dce};
    use lgen_isa::{MOp, VectorIsa};

    /// Rebuilds the store→load chain of the paper's Fig. 3.1 and checks it
    /// collapses to a direct use.
    #[test]
    fn simple_store_load_forwards() {
        let mut b = KernelBuilder::new("t");
        let x = b.input("x", 4);
        let y = b.output("y", 4);
        let t = b.local("t0", 4);
        let v = b.load(x, AffineExpr::constant(0), MemMap::horizontal(4));
        b.store(v, t, AffineExpr::constant(0), MemMap::horizontal(4));
        let w = b.load(t, AffineExpr::constant(0), MemMap::horizontal(4));
        b.store(w, y, AffineExpr::constant(0), MemMap::horizontal(4));
        let k = b.finish(0);

        let body = scalar_replacement(k.versions[0].body.clone(), &k.arrays);
        let loads_from_local = body
            .iter()
            .filter(|i| matches!(i, Inst::GLoad { arr, .. } if arr.0 == 2))
            .count();
        assert_eq!(loads_from_local, 0, "local load must be forwarded");
        assert!(body
            .iter()
            .any(|i| matches!(i, Inst::Move { op: VMove::Mov, .. })));
    }

    /// The Fig. 3.4 scenario: 3-element store and 3-element load through a
    /// local, lowered *differently* on NEON, still forward because the
    /// generic footprints match. After copy-prop + DCE no shuffle remains.
    #[test]
    fn mismatched_generic_implementations_still_forward() {
        let mut b = KernelBuilder::new("t");
        let x = b.input("x", 3);
        let y = b.output("y", 3);
        let t = b.local("t0", 4);
        let v = b.load(x, AffineExpr::constant(0), MemMap::horizontal(3));
        b.store(v, t, AffineExpr::constant(0), MemMap::horizontal(3));
        let w = b.load(t, AffineExpr::constant(0), MemMap::horizontal(3));
        let s = b.arith(VArith::Add(VWidth::Q), w, w);
        b.store(s, y, AffineExpr::constant(0), MemMap::horizontal(3));
        let mut k = b.finish(3);

        let body = scalar_replacement(std::mem::take(k.body_mut()), &k.arrays);
        let body = copy_prop(body);
        let body = dce(body, &k.arrays);
        *k.body_mut() = body;

        // No access to the local array survives.
        let mut local_accesses = 0;
        k.visit_insts(|i| match i {
            Inst::GLoad { arr, .. } | Inst::GStore { arr, .. } if arr.0 == 2 => local_accesses += 1,
            _ => {}
        });
        assert_eq!(local_accesses, 0);

        // And the NEON trace has no VsetLane from the forwarded load
        // (only the input load's zero-fill remains).
        let layout = crate::interp::MemLayout::aligned(&k);
        let mut xv = vec![1.0f32, 2.0, 3.0];
        let mut yv = vec![0.0f32; 3];
        let mut sink = lgen_isa::inst::CountingSink::new();
        crate::interp::run_kernel(
            &k,
            &mut [&mut xv, &mut yv],
            &layout,
            VectorIsa::Neon,
            &mut sink,
        )
        .unwrap();
        assert_eq!(yv, vec![2.0, 4.0, 6.0]);
        assert_eq!(sink.count(MOp::VstD), 1, "only the final store remains");
    }

    #[test]
    fn param_arrays_do_not_forward() {
        let mut b = KernelBuilder::new("t");
        let x = b.inout("x", 4);
        let v = b.load(x, AffineExpr::constant(0), MemMap::horizontal(4));
        b.store(v, x, AffineExpr::constant(0), MemMap::horizontal(4));
        let w = b.load(x, AffineExpr::constant(0), MemMap::horizontal(4));
        b.store(w, x, AffineExpr::constant(0), MemMap::horizontal(4));
        let k = b.finish(0);
        let body = scalar_replacement(k.versions[0].body.clone(), &k.arrays);
        let loads = body
            .iter()
            .filter(|i| matches!(i, Inst::GLoad { .. }))
            .count();
        assert_eq!(loads, 2, "parameter accesses must not be forwarded");
    }

    #[test]
    fn different_footprints_do_not_forward() {
        let mut b = KernelBuilder::new("t");
        let x = b.input("x", 4);
        let y = b.output("y", 4);
        let t = b.local("t0", 8);
        let v = b.load(x, AffineExpr::constant(0), MemMap::horizontal(4));
        b.store(v, t, AffineExpr::constant(0), MemMap::horizontal(4));
        // Load from a different offset of the local.
        let w = b.load(t, AffineExpr::constant(4), MemMap::horizontal(4));
        b.store(w, y, AffineExpr::constant(0), MemMap::horizontal(4));
        let k = b.finish(0);
        let body = scalar_replacement(k.versions[0].body.clone(), &k.arrays);
        let local_loads = body
            .iter()
            .filter(|i| matches!(i, Inst::GLoad { arr, .. } if arr.0 == 2))
            .count();
        assert_eq!(local_loads, 1);
    }

    #[test]
    fn overlapping_store_invalidates() {
        let mut b = KernelBuilder::new("t");
        let x = b.input("x", 8);
        let y = b.output("y", 4);
        let t = b.local("t0", 8);
        let v0 = b.load(x, AffineExpr::constant(0), MemMap::horizontal(4));
        let v1 = b.load(x, AffineExpr::constant(4), MemMap::horizontal(4));
        b.store(v0, t, AffineExpr::constant(0), MemMap::horizontal(4));
        // Overlapping store at offset 2 clobbers part of the first store.
        b.store(v1, t, AffineExpr::constant(2), MemMap::horizontal(4));
        let w = b.load(t, AffineExpr::constant(0), MemMap::horizontal(4));
        b.store(w, y, AffineExpr::constant(0), MemMap::horizontal(4));
        let k = b.finish(0);
        let body = scalar_replacement(k.versions[0].body.clone(), &k.arrays);
        // The load must NOT be forwarded to v0.
        let forwarded = body
            .iter()
            .any(|i| matches!(i, Inst::Move { op: VMove::Mov, .. }));
        assert!(!forwarded, "overlapped store must invalidate forwarding");
    }

    /// Regression (found by the random-BLAC fuzzer): a store's source
    /// register redefined before the matching load must not forward —
    /// unrolled bodies reuse the same virtual registers.
    #[test]
    fn redefined_source_register_invalidates_forwarding() {
        let mut b = KernelBuilder::new("t");
        let x = b.input("x", 8);
        let y = b.output("y", 4);
        let t = b.local("t0", 4);
        let v = b.load(x, AffineExpr::constant(0), MemMap::horizontal(4));
        b.store(v, t, AffineExpr::constant(0), MemMap::horizontal(4));
        // Redefine v (as a cloned unrolled body would).
        b.push(Inst::GLoad {
            dst: v,
            arr: x,
            addr: AffineExpr::constant(4),
            map: MemMap::horizontal(4),
            aligned: false,
        });
        let w = b.load(t, AffineExpr::constant(0), MemMap::horizontal(4));
        b.store(w, y, AffineExpr::constant(0), MemMap::horizontal(4));
        let k = b.finish(0);
        let body = scalar_replacement(k.versions[0].body.clone(), &k.arrays);
        // The load of t0 must survive: forwarding from the stale register
        // would read x[4..8] instead of x[0..4].
        let local_loads = body
            .iter()
            .filter(|i| matches!(i, Inst::GLoad { arr, .. } if *arr == t))
            .count();
        assert_eq!(local_loads, 1, "stale forwarding detected: {body:#?}");
    }

    #[test]
    fn loop_boundary_invalidates() {
        let mut b = KernelBuilder::new("t");
        let x = b.input("x", 4);
        let y = b.output("y", 16);
        let t = b.local("t0", 4);
        let v = b.load(x, AffineExpr::constant(0), MemMap::horizontal(4));
        b.store(v, t, AffineExpr::constant(0), MemMap::horizontal(4));
        b.for_loop("i", 0, 16, 4, |b, i| {
            let w = b.load(t, AffineExpr::constant(0), MemMap::horizontal(4));
            b.store(w, y, AffineExpr::var(i), MemMap::horizontal(4));
        });
        let k = b.finish(0);
        let body = scalar_replacement(k.versions[0].body.clone(), &k.arrays);
        // Inside the loop, the load survives (conservatively).
        let Inst::Loop { body: inner, .. } = &body[2] else {
            panic!()
        };
        assert!(matches!(inner[0], Inst::GLoad { .. }));
    }
}
