//! Dead-code elimination.
//!
//! After scalar replacement and copy propagation, the stores into local
//! chain arrays (and the moves that replaced the loads) are dead; this pass
//! removes them, completing the Fig. 2.3 → Fig. 2.4 transformation.

use crate::ir::{ArrayDecl, ArrayKind, Inst, VReg};
use std::collections::HashSet;

/// Removes instructions whose results are never observed.
///
/// Liveness roots are stores to parameter arrays. Stores to local arrays
/// are live only if the array is still read by a live load; value-producing
/// instructions are live only if their destination register is used by a
/// live instruction. The analysis is array- and register-global (hence
/// conservative across loop iterations) and iterates to a fixpoint.
pub fn dce(insts: Vec<Inst>, arrays: &[ArrayDecl]) -> Vec<Inst> {
    let n = count(&insts);
    let mut live = vec![false; n];
    loop {
        let mut used_regs: HashSet<VReg> = HashSet::new();
        let mut read_arrays: HashSet<usize> = HashSet::new();
        collect_uses(&insts, &live, &mut 0, &mut used_regs, &mut read_arrays);
        let mut changed = false;
        mark(
            &insts,
            &mut live,
            &mut 0,
            arrays,
            &used_regs,
            &read_arrays,
            &mut changed,
        );
        if !changed {
            break;
        }
    }
    filter(insts, &live, &mut 0)
}

fn count(insts: &[Inst]) -> usize {
    insts
        .iter()
        .map(|i| match i {
            Inst::Loop { body, .. } => 1 + count(body),
            _ => 1,
        })
        .sum()
}

/// Gathers registers and arrays used by currently-live instructions.
fn collect_uses(
    insts: &[Inst],
    live: &[bool],
    idx: &mut usize,
    used: &mut HashSet<VReg>,
    read: &mut HashSet<usize>,
) {
    for inst in insts {
        let my = *idx;
        *idx += 1;
        match inst {
            Inst::Loop { body, .. } => collect_uses(body, live, idx, used, read),
            _ if live[my] => match inst {
                Inst::GLoad { arr, .. } => {
                    read.insert(arr.0);
                }
                Inst::GStore { src, .. } => {
                    used.insert(*src);
                }
                Inst::Arith { op, dst, a, b } => {
                    used.insert(*a);
                    used.insert(*b);
                    if op.reads_dst() {
                        used.insert(*dst);
                    }
                }
                Inst::Move { op, dst: _, a, b } => {
                    use crate::ir::VMove::*;
                    match op {
                        Zero => {}
                        Mov | Splat(_) | GetLane(_) => {
                            used.insert(*a);
                        }
                        Shuf(_) | SetLane(_) => {
                            used.insert(*a);
                            used.insert(*b);
                        }
                    }
                }
                Inst::Overhead { .. } => {}
                Inst::Loop { .. } => unreachable!(),
            },
            _ => {}
        }
    }
}

fn mark(
    insts: &[Inst],
    live: &mut [bool],
    idx: &mut usize,
    arrays: &[ArrayDecl],
    used: &HashSet<VReg>,
    read: &HashSet<usize>,
    changed: &mut bool,
) {
    for inst in insts {
        let my = *idx;
        *idx += 1;
        let newly = match inst {
            Inst::GStore { arr, .. } => {
                arrays[arr.0].kind != ArrayKind::Local || read.contains(&arr.0)
            }
            Inst::Overhead { .. } => true,
            Inst::GLoad { dst, .. } => used.contains(dst),
            Inst::Arith { dst, .. } => used.contains(dst),
            Inst::Move { dst, .. } => used.contains(dst),
            Inst::Loop { body, .. } => {
                mark(body, live, idx, arrays, used, read, changed);
                // The loop node itself is kept iff its body has live code;
                // decided at filter time, no mark needed.
                false
            }
        };
        if newly && !live[my] {
            live[my] = true;
            *changed = true;
        }
    }
}

fn filter(insts: Vec<Inst>, live: &[bool], idx: &mut usize) -> Vec<Inst> {
    let mut out = Vec::with_capacity(insts.len());
    for inst in insts {
        let my = *idx;
        *idx += 1;
        match inst {
            Inst::Loop {
                var,
                name,
                start,
                end,
                step,
                body,
            } => {
                let body = filter(body, live, idx);
                if !body.is_empty() {
                    out.push(Inst::Loop {
                        var,
                        name,
                        start,
                        end,
                        step,
                        body,
                    });
                }
            }
            _ if live[my] => out.push(inst),
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::ir::{VArith, VMove, VWidth};
    use crate::map::MemMap;
    use crate::passes::{copy_prop, scalar_replacement};
    use lgen_absint::AffineExpr;

    /// The full Fig. 2.3 → Fig. 2.4 pipeline: a chain through local arrays
    /// collapses to loads, arithmetic, and the final store.
    #[test]
    fn chain_through_locals_collapses() {
        // D = (A + B) + C on one 4-wide tile, chained via t0..t4.
        let mut b = KernelBuilder::new("chain");
        let a = b.input("A", 4);
        let bb = b.input("B", 4);
        let c = b.input("C", 4);
        let d = b.output("D", 4);
        let t = [
            b.local("t0", 4),
            b.local("t1", 4),
            b.local("t2", 4),
            b.local("t3", 4),
        ];
        let zero = AffineExpr::constant(0);
        let m = MemMap::horizontal(4);

        // Loader A → t0; Loader B → t1.
        let va = b.load(a, zero.clone(), m.clone());
        b.store(va, t[0], zero.clone(), m.clone());
        let vb = b.load(bb, zero.clone(), m.clone());
        b.store(vb, t[1], zero.clone(), m.clone());
        // + ν-BLAC: t2 = t0 + t1.
        let l0 = b.load(t[0], zero.clone(), m.clone());
        let l1 = b.load(t[1], zero.clone(), m.clone());
        let s0 = b.arith(VArith::Add(VWidth::Q), l0, l1);
        b.store(s0, t[2], zero.clone(), m.clone());
        // Loader C → t3.
        let vc = b.load(c, zero.clone(), m.clone());
        b.store(vc, t[3], zero.clone(), m.clone());
        // + ν-BLAC: load t2, t3, add, store D.
        let l2 = b.load(t[2], zero.clone(), m.clone());
        let l3 = b.load(t[3], zero.clone(), m.clone());
        let s1 = b.arith(VArith::Add(VWidth::Q), l2, l3);
        b.store(s1, d, zero.clone(), m.clone());
        let k = b.finish(8);

        let body = scalar_replacement(k.versions[0].body.clone(), &k.arrays);
        let body = copy_prop(body);
        let body = dce(body, &k.arrays);

        // Exactly: 3 loads (A, B, C), 2 adds, 1 store (D).
        let loads = body
            .iter()
            .filter(|i| matches!(i, Inst::GLoad { .. }))
            .count();
        let stores = body
            .iter()
            .filter(|i| matches!(i, Inst::GStore { .. }))
            .count();
        let adds = body
            .iter()
            .filter(|i| matches!(i, Inst::Arith { .. }))
            .count();
        let movs = body
            .iter()
            .filter(|i| matches!(i, Inst::Move { .. }))
            .count();
        assert_eq!((loads, stores, adds, movs), (3, 1, 2, 0), "body: {body:#?}");
    }

    #[test]
    fn dead_value_code_is_removed() {
        let mut b = KernelBuilder::new("t");
        let x = b.input("x", 4);
        let y = b.output("y", 4);
        let v = b.load(x, AffineExpr::constant(0), MemMap::horizontal(4));
        let _dead = b.arith(VArith::Mul(VWidth::Q), v, v);
        let _dead2 = b.mov_op(VMove::Splat(0), v, 0);
        b.store(v, y, AffineExpr::constant(0), MemMap::horizontal(4));
        let k = b.finish(0);
        let body = dce(k.versions[0].body.clone(), &k.arrays);
        assert_eq!(body.len(), 2);
    }

    #[test]
    fn empty_loops_are_dropped() {
        let mut b = KernelBuilder::new("t");
        let x = b.input("x", 16);
        let y = b.output("y", 4);
        b.for_loop("i", 0, 16, 4, |b, i| {
            let _dead = b.load(x, AffineExpr::var(i), MemMap::horizontal(4));
        });
        let v = b.load(x, AffineExpr::constant(0), MemMap::horizontal(4));
        b.store(v, y, AffineExpr::constant(0), MemMap::horizontal(4));
        let k = b.finish(0);
        let body = dce(k.versions[0].body.clone(), &k.arrays);
        assert!(!body.iter().any(|i| matches!(i, Inst::Loop { .. })));
    }

    #[test]
    fn fma_accumulators_stay_live() {
        let mut b = KernelBuilder::new("t");
        let x = b.input("x", 4);
        let y = b.output("y", 4);
        let acc = b.zero();
        let v = b.load(x, AffineExpr::constant(0), MemMap::horizontal(4));
        b.arith_acc(VArith::Fma(VWidth::Q), acc, v, v);
        b.store(acc, y, AffineExpr::constant(0), MemMap::horizontal(4));
        let k = b.finish(8);
        let body = dce(k.versions[0].body.clone(), &k.arrays);
        assert_eq!(body.len(), 4, "zero, load, fma, store all live: {body:#?}");
    }
}
