//! Property tests of memory maps and memory layouts.

use lgen_cir::{Kernel, KernelBuilder, MemLayout, MemMap};
use proptest::prelude::*;

fn arb_map() -> impl Strategy<Value = MemMap> {
    prop_oneof![
        (1usize..=4).prop_map(MemMap::horizontal),
        (1usize..=4, 1i64..32).prop_map(|(l, s)| MemMap::vertical(l, s)),
        (1usize..=4).prop_map(MemMap::splat),
    ]
}

proptest! {
    /// Footprint equality is an equivalence relation and respects lanes.
    #[test]
    fn footprint_equality_properties(a in arb_map(), b in arb_map()) {
        prop_assert!(a.footprint_equals(&a));
        prop_assert_eq!(a.footprint_equals(&b), b.footprint_equals(&a));
        if a.footprint_equals(&b) {
            prop_assert_eq!(a.lanes(), b.lanes());
            prop_assert_eq!(a.max_offset(), b.max_offset());
        }
    }

    /// Horizontal maps are exactly the stride-1 maps (or single-lane).
    #[test]
    fn horizontal_iff_unit_stride(l in 2usize..=4) {
        let h = MemMap::horizontal(l);
        prop_assert!(h.is_horizontal());
        prop_assert_eq!(h.stride(), Some(1));
        let v = MemMap::vertical(l, 1);
        prop_assert!(v.footprint_equals(&h));
        let v2 = MemMap::vertical(l, 2);
        prop_assert!(!v2.is_horizontal());
        prop_assert_eq!(v2.stride(), Some(2));
    }

    /// Entries are sorted by lane with distinct lanes.
    #[test]
    fn entries_are_canonical(m in arb_map()) {
        let lanes: Vec<u8> = m.entries().iter().map(|e| e.1).collect();
        let mut sorted = lanes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(lanes, sorted);
    }
}

fn kernel_with_arrays(lens: &[usize]) -> Kernel {
    let mut b = KernelBuilder::new("k");
    for (i, &len) in lens.iter().enumerate() {
        b.input(&format!("a{i}"), len);
    }
    // A kernel needs at least something; arrays suffice for layout tests.
    b.output("out", 4);
    b.finish(0)
}

proptest! {
    /// Array placements never overlap, including padding, and honor the
    /// requested offsets.
    #[test]
    fn layouts_do_not_overlap(
        lens in prop::collection::vec(1usize..64, 1..6),
        offs_seed in 0usize..4,
    ) {
        let k = kernel_with_arrays(&lens);
        let nparams = lens.len() + 1;
        let offsets: Vec<usize> = (0..nparams).map(|i| (offs_seed + i) % 4).collect();
        let layout = MemLayout::with_float_offsets(&k, &offsets);
        let mut spans: Vec<(usize, usize)> = k
            .arrays
            .iter()
            .enumerate()
            .map(|(i, d)| (layout.bases[i], layout.bases[i] + 4 * (d.len + 4)))
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "arrays overlap: {spans:?}");
        }
        for (i, &off) in offsets.iter().enumerate() {
            prop_assert_eq!(layout.float_offset_mod(i, 4), off % 4);
        }
    }
}

mod dispatch_overhead {
    use lgen_absint::AffineExpr;
    use lgen_cir::passes::version_for_alignment;
    use lgen_cir::{run_kernel, KernelBuilder, MemLayout, MemMap, VArith, VWidth};
    use lgen_isa::inst::CountingSink;
    use lgen_isa::{MOp, VectorIsa};

    /// The Listing 3.3 dispatch chain costs runtime checks proportional to
    /// how deep in the if/else-if cascade the matching version sits.
    #[test]
    fn versioned_dispatch_charges_runtime_checks() {
        let mut b = KernelBuilder::new("k");
        let x = b.input("x", 8);
        let y = b.output("y", 8);
        b.for_loop("i", 0, 8, 4, |b, i| {
            let v = b.load(x, AffineExpr::var(i), MemMap::horizontal(4));
            let s = b.arith(VArith::Add(VWidth::Q), v, v);
            b.store(s, y, AffineExpr::var(i), MemMap::horizontal(4));
        });
        let k = version_for_alignment(&b.finish(8));
        let run_at = |offs: &[usize]| {
            let layout = MemLayout::with_float_offsets(&k, offs);
            let mut xv = vec![1.0f32; 8];
            let mut yv = vec![0.0f32; 8];
            let mut sink = CountingSink::new();
            run_kernel(
                &k,
                &mut [&mut xv, &mut yv],
                &layout,
                VectorIsa::Ssse3,
                &mut sink,
            )
            .unwrap();
            sink.count(MOp::Branch)
        };
        // Version (0,0) is first in the chain; (3,3) is last of 16 — it
        // must execute strictly more dispatch branches.
        let first = run_at(&[0, 0]);
        let last = run_at(&[3, 3]);
        assert!(
            last > first,
            "dispatch depth not charged: {first} vs {last}"
        );
    }
}
