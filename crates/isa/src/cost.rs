//! Per-microarchitecture instruction cost tables.
//!
//! Latency/throughput pairs follow the paper's published data where given
//! (Table 3.1 for `_mm_add_ps` vs `_mm_hadd_ps`; §2.2 for issue disciplines,
//! the doubleword/quadword NEON asymmetry, the non-pipelined Cortex-A8 VFP,
//! and the single-issue Cortex-A9 NEON pipeline) and plausible values from
//! vendor optimization manuals elsewhere. These numbers are the *mechanism*
//! behind every performance result this repository reproduces.

use crate::ops::MOp;
use crate::uarch::Microarch;

/// Issue-port requirement of an instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum PortReq {
    /// May issue on any port in the bitmask (bit *i* = port *i*).
    AnyOf(u8),
    /// Occupies *all* ports while issuing (e.g. `_mm_hadd_ps` on Atom,
    /// which "occupies both of the issue ports", §3.3).
    All,
}

impl PortReq {
    /// Bitmask of candidate ports given the machine's port count.
    pub fn mask(self, num_ports: u32) -> u8 {
        let all = ((1u16 << num_ports) - 1) as u8;
        match self {
            PortReq::AnyOf(m) => m & all,
            PortReq::All => all,
        }
    }

    /// Whether the instruction blocks every port while it issues.
    pub fn blocks_all(self) -> bool {
        matches!(self, PortReq::All)
    }
}

/// Cost of one instruction on one microarchitecture.
///
/// `latency` is the cycles until the result is available; `issue` is the
/// reciprocal throughput (cycles the chosen port stays busy) — the same
/// convention as the paper's Table 3.1 "latency / throughput" pairs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct InstCost {
    /// Result latency in cycles.
    pub latency: u32,
    /// Reciprocal throughput (port-busy cycles).
    pub issue: u32,
    /// Which port(s) the instruction needs.
    pub ports: PortReq,
}

const fn c(latency: u32, issue: u32, ports: PortReq) -> InstCost {
    InstCost {
        latency,
        issue,
        ports,
    }
}

const ANY: PortReq = PortReq::AnyOf(0xff);
const P0: PortReq = PortReq::AnyOf(0b001);
const P1: PortReq = PortReq::AnyOf(0b010);
const P2: PortReq = PortReq::AnyOf(0b100);

/// Cost of `op` on `arch`.
///
/// Opcodes that cannot occur on an architecture (NEON ops on x86 and vice
/// versa) get a generic conservative cost rather than panicking, so that
/// exhaustive property tests can sweep the full cross product.
pub fn cost(arch: Microarch, op: MOp) -> InstCost {
    match arch {
        Microarch::Atom => atom_cost(op),
        Microarch::CortexA8 => a8_cost(op),
        Microarch::CortexA9 => a9_cost(op),
        Microarch::Arm1176 => arm1176_cost(op),
        _ => big_x86_cost(op),
    }
}

/// Intel Atom (Bonnell): in-order, two issue ports shared by memory and
/// arithmetic; unaligned 16-byte accesses are far slower than aligned ones
/// (§3.2.1); `_mm_hadd_ps` is 8/7 and occupies both ports (Table 3.1, §3.3);
/// SIMD multiply has half the throughput of SIMD add (1.5 DP instructions
/// per cycle at a 2:1 add:mul ratio, §2.2.1).
fn atom_cost(op: MOp) -> InstCost {
    use MOp::*;
    match op {
        MmLoadAPs => c(3, 1, ANY),
        MmLoadUPs => c(9, 5, ANY),
        MmLoadSs | MmLoadLPi => c(3, 1, ANY),
        MmLoad1Ps => c(4, 2, ANY),
        MmStoreAPs => c(3, 1, ANY),
        MmStoreUPs => c(9, 5, ANY),
        MmStoreSs | MmStoreLPi => c(3, 1, ANY),
        MmAddPs => c(5, 1, P1),
        MmMulPs => c(5, 2, P0),
        MmHaddPs => c(8, 7, PortReq::All),
        MmShufPs | MmUnpckPs => c(1, 1, P0),
        MmSetZeroPs | MmMovAps => c(1, 1, ANY),
        FAdd => c(5, 1, P1),
        FMul => c(4, 1, P0),
        FMac => c(9, 2, P0),
        FLoad | FStore => c(3, 1, ANY),
        FMov => c(1, 1, ANY),
        IAddr => c(1, 1, ANY),
        Branch => c(1, 1, ANY),
        CallOverhead => c(48, 48, PortReq::All),
        // NEON opcodes cannot occur on x86; conservative fallback.
        _ => c(8, 4, ANY),
    }
}

/// ARM Cortex-A8: the NEON unit issues one load/store/permute (port 0)
/// together with one data-processing instruction (port 1) per cycle;
/// doubleword DP instructions are twice as fast as quadword ones; the
/// scalar VFP is non-pipelined (§2.2.2). Port 2 is the integer pipe.
fn a8_cost(op: MOp) -> InstCost {
    use MOp::*;
    match op {
        VldQ | VldD | VldDup => c(3, 1, P0),
        VldLane => c(4, 2, P0),
        VstQ | VstD => c(2, 1, P0),
        VstLane => c(3, 2, P0),
        VaddQ | VmulQ => c(5, 2, P1),
        VaddD | VmulD => c(5, 1, P1),
        VmlaQ | VmlaLaneQ => c(7, 2, P1),
        VmlaD | VmlaLaneD => c(7, 1, P1),
        VmulLaneQ => c(5, 2, P1),
        VmulLaneD => c(5, 1, P1),
        Vpadd => c(5, 1, P1),
        Vmov | VdupLane | Vperm => c(1, 1, P0),
        VsetLane => c(2, 1, P0),
        // NEON-to-core transfers stall the Cortex-A8 pipeline.
        VgetLane => c(14, 2, P0),
        Vzero => c(1, 1, P1),
        // Non-pipelined VFP: "each instruction has to run to completion
        // before the next instruction can be issued".
        FAdd | FMul => c(10, 8, P1),
        FMac => c(11, 9, P1),
        FLoad => c(3, 1, P0),
        FStore => c(2, 1, P0),
        FMov => c(2, 1, P1),
        IAddr => c(1, 1, P2),
        Branch => c(1, 1, P2),
        CallOverhead => c(48, 48, PortReq::All),
        _ => c(8, 4, ANY),
    }
}

/// ARM Cortex-A9: out-of-order core, but the NEON pipeline issues only one
/// instruction per cycle — memory accesses share the single NEON issue port
/// with data processing (§2.2.3). The VFP is pipelined, so scalar floating
/// point is much faster than on the A8.
fn a9_cost(op: MOp) -> InstCost {
    use MOp::*;
    match op {
        VldQ => c(4, 2, P0),
        VldD | VldDup => c(3, 1, P0),
        VldLane => c(4, 2, P0),
        VstQ => c(2, 2, P0),
        VstD => c(1, 1, P0),
        VstLane => c(2, 2, P0),
        VaddQ | VmulQ | VmulLaneQ => c(5, 2, P0),
        VaddD | VmulD | VmulLaneD => c(5, 1, P0),
        VmlaQ | VmlaLaneQ => c(7, 2, P0),
        VmlaD | VmlaLaneD => c(7, 1, P0),
        Vpadd => c(5, 1, P0),
        Vmov | VdupLane | Vperm => c(1, 1, P0),
        VsetLane | VgetLane => c(3, 1, P0),
        Vzero => c(1, 1, P0),
        // Pipelined VFP.
        FAdd => c(4, 1, P0),
        FMul => c(5, 1, P0),
        FMac => c(8, 1, P0),
        FLoad => c(4, 1, P0),
        FStore => c(2, 1, P0),
        FMov => c(1, 1, P0),
        IAddr => c(1, 1, P1),
        Branch => c(1, 1, P1),
        CallOverhead => c(48, 48, PortReq::All),
        _ => c(8, 4, ANY),
    }
}

/// ARM1176JZF-S: single-issue; the FMAC, DS and LS pipelines share their
/// first two stages, so at most one floating-point instruction enters per
/// cycle (§2.2.4) — peak 1 flop/cycle.
fn arm1176_cost(op: MOp) -> InstCost {
    use MOp::*;
    match op {
        FAdd | FMul => c(4, 1, P0),
        FMac => c(5, 2, P0),
        FLoad => c(3, 1, P0),
        FStore => c(2, 1, P0),
        FMov => c(1, 1, P0),
        IAddr => c(1, 1, P0),
        Branch => c(2, 1, P0),
        CallOverhead => c(48, 48, PortReq::All),
        // SIMD opcodes cannot occur on ARMv6; conservative fallback.
        _ => c(8, 4, P0),
    }
}

/// Big out-of-order x86 cores (Haswell … Nehalem): Table 3.1 gives
/// `_mm_add_ps` = 3/1 and `_mm_hadd_ps` = 5/2 on all five of them.
fn big_x86_cost(op: MOp) -> InstCost {
    use MOp::*;
    match op {
        MmAddPs | MmMulPs => c(3, 1, ANY),
        MmHaddPs => c(5, 2, ANY),
        MmLoadAPs | MmLoadSs | MmLoadLPi | MmLoad1Ps => c(3, 1, ANY),
        MmLoadUPs => c(4, 1, ANY),
        MmStoreAPs | MmStoreUPs | MmStoreSs | MmStoreLPi => c(3, 1, ANY),
        MmShufPs | MmUnpckPs | MmSetZeroPs | MmMovAps => c(1, 1, ANY),
        FAdd | FMul => c(3, 1, ANY),
        FMac => c(5, 1, ANY),
        FLoad | FStore => c(3, 1, ANY),
        FMov => c(1, 1, ANY),
        IAddr | Branch => c(1, 1, ANY),
        CallOverhead => c(48, 48, PortReq::All),
        _ => c(8, 4, ANY),
    }
}

/// The data behind the paper's Table 3.1: `(microarch, _mm_add_ps cost,
/// _mm_hadd_ps cost)` for the six x86 microarchitectures listed there.
pub fn haswell_family_add_vs_hadd() -> Vec<(Microarch, InstCost, InstCost)> {
    [
        Microarch::Haswell,
        Microarch::IvyBridge,
        Microarch::SandyBridge,
        Microarch::Westmere,
        Microarch::Nehalem,
        Microarch::Atom,
    ]
    .into_iter()
    .map(|m| (m, cost(m, MOp::MmAddPs), cost(m, MOp::MmHaddPs)))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 3.1, exactly.
    #[test]
    fn table_3_1_values() {
        for (m, add, hadd) in haswell_family_add_vs_hadd() {
            if m == Microarch::Atom {
                assert_eq!((add.latency, add.issue), (5, 1));
                assert_eq!((hadd.latency, hadd.issue), (8, 7));
                assert!(hadd.ports.blocks_all());
            } else {
                assert_eq!((add.latency, add.issue), (3, 1));
                assert_eq!((hadd.latency, hadd.issue), (5, 2));
            }
        }
    }

    /// §2.2.2/§2.2.3: doubleword NEON DP is twice the throughput of quadword.
    #[test]
    fn neon_doubleword_twice_as_fast() {
        for arch in [Microarch::CortexA8, Microarch::CortexA9] {
            for (q, d) in [
                (MOp::VaddQ, MOp::VaddD),
                (MOp::VmulQ, MOp::VmulD),
                (MOp::VmlaQ, MOp::VmlaD),
                (MOp::VmlaLaneQ, MOp::VmlaLaneD),
            ] {
                assert_eq!(
                    cost(arch, q).issue,
                    2 * cost(arch, d).issue,
                    "{arch:?} {q:?}"
                );
            }
        }
    }

    /// §3.2.1: unaligned SSE accesses are much slower than aligned on Atom.
    #[test]
    fn atom_unaligned_penalty() {
        let a = cost(Microarch::Atom, MOp::MmLoadAPs);
        let u = cost(Microarch::Atom, MOp::MmLoadUPs);
        assert!(u.latency > 2 * a.latency || u.issue >= 3 * a.issue);
        // ... but roughly equal on the big cores.
        let a = cost(Microarch::Haswell, MOp::MmLoadAPs);
        let u = cost(Microarch::Haswell, MOp::MmLoadUPs);
        assert_eq!(a.issue, u.issue);
    }

    /// §2.2.2: the Cortex-A8 VFP is non-pipelined (issue ≈ latency), while
    /// the Cortex-A9 VFP is pipelined (issue 1).
    #[test]
    fn vfp_pipelining_difference() {
        let a8 = cost(Microarch::CortexA8, MOp::FAdd);
        assert!(a8.issue >= a8.latency - 2);
        let a9 = cost(Microarch::CortexA9, MOp::FAdd);
        assert_eq!(a9.issue, 1);
    }

    /// Memory and data-processing NEON ops use different ports on the A8
    /// (dual-issue) but the same port on the A9 (single NEON issue).
    #[test]
    fn a8_dual_issue_vs_a9_single_issue() {
        let a8_ld = cost(Microarch::CortexA8, MOp::VldD).ports.mask(3);
        let a8_dp = cost(Microarch::CortexA8, MOp::VmlaD).ports.mask(3);
        assert_eq!(a8_ld & a8_dp, 0, "A8 LS and DP ports must be disjoint");
        let a9_ld = cost(Microarch::CortexA9, MOp::VldD).ports.mask(2);
        let a9_dp = cost(Microarch::CortexA9, MOp::VmlaD).ports.mask(2);
        assert_eq!(a9_ld, a9_dp, "A9 LS and DP share the single NEON port");
    }

    /// Every opcode has a non-degenerate cost on every architecture.
    #[test]
    fn all_costs_well_formed() {
        use MOp::*;
        let all_ops = [
            MmLoadAPs,
            MmLoadUPs,
            MmLoadSs,
            MmLoadLPi,
            MmLoad1Ps,
            MmStoreAPs,
            MmStoreUPs,
            MmStoreSs,
            MmStoreLPi,
            MmAddPs,
            MmMulPs,
            MmHaddPs,
            MmShufPs,
            MmUnpckPs,
            MmSetZeroPs,
            MmMovAps,
            VldQ,
            VldD,
            VldLane,
            VldDup,
            VstQ,
            VstD,
            VstLane,
            VaddQ,
            VaddD,
            VmulQ,
            VmulD,
            VmlaQ,
            VmlaD,
            VmulLaneQ,
            VmulLaneD,
            VmlaLaneQ,
            VmlaLaneD,
            Vpadd,
            Vmov,
            VdupLane,
            Vperm,
            VsetLane,
            VgetLane,
            Vzero,
            FLoad,
            FStore,
            FAdd,
            FMul,
            FMac,
            FMov,
            IAddr,
            Branch,
            CallOverhead,
        ];
        for arch in [
            Microarch::Atom,
            Microarch::CortexA8,
            Microarch::CortexA9,
            Microarch::Arm1176,
            Microarch::Haswell,
        ] {
            let np = arch.params().num_ports;
            for op in all_ops {
                let k = cost(arch, op);
                assert!(k.latency >= 1 && k.issue >= 1, "{arch:?} {op:?}");
                assert!(k.ports.mask(np) != 0, "{arch:?} {op:?} has no usable port");
            }
        }
    }

    #[test]
    fn port_masks_are_clipped() {
        assert_eq!(PortReq::AnyOf(0xff).mask(2), 0b11);
        assert_eq!(PortReq::All.mask(3), 0b111);
        assert_eq!(PortReq::AnyOf(0b100).mask(3), 0b100);
    }
}
