//! The machine-level opcode set.
//!
//! Every kernel — LGen-generated or baseline — is ultimately a stream of
//! these opcodes. The set covers the SSE/SSSE3 intrinsics used by the x86
//! ν-BLACs (paper Listings 3.4–3.8), the NEON instructions used by the ARM
//! ν-BLACs (Listings 3.9–3.10), scalar floating-point operations, and the
//! loop/address bookkeeping that competes for issue slots on the in-order
//! embedded cores.

/// Coarse classification used by the schedulers and by cost tables.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum OpClass {
    /// Vector or scalar load.
    Load,
    /// Vector or scalar store.
    Store,
    /// Vector arithmetic (add/mul/fma/hadd/…).
    VectorArith,
    /// Vector permutation/lane manipulation.
    Shuffle,
    /// Scalar floating-point arithmetic.
    ScalarArith,
    /// Integer address arithmetic, compares, branches, call overhead.
    Overhead,
}

/// A machine opcode.
///
/// The `Q`/`D` suffix pairs on NEON opcodes distinguish 128-bit quadword
/// from 64-bit doubleword forms; doubleword data-processing instructions are
/// twice as fast on Cortex-A8/A9 (paper §2.2.2), which is what the
/// specialized ν-BLACs of §3.4 exploit.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum MOp {
    // ---- x86 SSE/SSSE3 (ν = 4 floats) ----
    /// `_mm_load_ps` — 16-byte-aligned 128-bit load.
    MmLoadAPs,
    /// `_mm_loadu_ps` — unaligned 128-bit load.
    MmLoadUPs,
    /// `_mm_load_ss` — scalar 32-bit load into lane 0.
    MmLoadSs,
    /// `_mm_loadl_pi` — 64-bit load into the low half.
    MmLoadLPi,
    /// `_mm_load1_ps` — load one float broadcast to all lanes.
    MmLoad1Ps,
    /// `_mm_store_ps` — 16-byte-aligned 128-bit store.
    MmStoreAPs,
    /// `_mm_storeu_ps` — unaligned 128-bit store.
    MmStoreUPs,
    /// `_mm_store_ss` — scalar 32-bit store from lane 0.
    MmStoreSs,
    /// `_mm_storel_pi` — 64-bit store of the low half.
    MmStoreLPi,
    /// `_mm_add_ps`.
    MmAddPs,
    /// `_mm_mul_ps`.
    MmMulPs,
    /// `_mm_hadd_ps` (SSE3 horizontal add) — slow on Atom (Table 3.1).
    MmHaddPs,
    /// `_mm_shuffle_ps`.
    MmShufPs,
    /// `_mm_unpacklo_ps` / `_mm_unpackhi_ps` (transpose building block).
    MmUnpckPs,
    /// `_mm_setzero_ps`.
    MmSetZeroPs,
    /// Register-to-register 128-bit move.
    MmMovAps,

    // ---- ARM NEON ----
    /// `vld1q_f32` — 128-bit load.
    VldQ,
    /// `vld1_f32` — 64-bit load.
    VldD,
    /// `vld1q_lane_f32` — single-lane load.
    VldLane,
    /// `vld1q_dup_f32` — broadcast load.
    VldDup,
    /// `vst1q_f32` — 128-bit store.
    VstQ,
    /// `vst1_f32` — 64-bit store.
    VstD,
    /// `vst1q_lane_f32` — single-lane store.
    VstLane,
    /// `vaddq_f32`.
    VaddQ,
    /// `vadd_f32` (doubleword).
    VaddD,
    /// `vmulq_f32`.
    VmulQ,
    /// `vmul_f32` (doubleword).
    VmulD,
    /// `vmlaq_f32` — quadword fused multiply-accumulate.
    VmlaQ,
    /// `vmla_f32` — doubleword fused multiply-accumulate.
    VmlaD,
    /// `vmulq_lane_f32` — multiply by a scalar from a lane.
    VmulLaneQ,
    /// `vmul_lane_f32` (doubleword).
    VmulLaneD,
    /// `vmlaq_lane_f32` — FMA with a scalar from a lane.
    VmlaLaneQ,
    /// `vmla_lane_f32` (doubleword).
    VmlaLaneD,
    /// `vpadd_f32` — pairwise add (doubleword, horizontal-add block).
    Vpadd,
    /// `vmov`/`vorr` register move.
    Vmov,
    /// `vdupq_n_f32` etc. — broadcast from register lane.
    VdupLane,
    /// `vzip`/`vuzp`/`vext`/`vtrn` — permutes.
    Vperm,
    /// `vsetq_lane_f32`.
    VsetLane,
    /// `vgetq_lane_f32`.
    VgetLane,
    /// `vmovq_n_f32(0)` — zero a register.
    Vzero,

    // ---- Scalar floating point (x86 scalar SSE or ARM VFP) ----
    /// Scalar load (4 bytes).
    FLoad,
    /// Scalar store (4 bytes).
    FStore,
    /// Scalar add.
    FAdd,
    /// Scalar multiply.
    FMul,
    /// Scalar fused multiply-accumulate (VFP `fmacs`).
    FMac,
    /// Scalar register move.
    FMov,

    // ---- Bookkeeping ----
    /// Integer address computation feeding a memory access.
    IAddr,
    /// Conditional branch closing a loop iteration.
    Branch,
    /// Amortized per-call overhead of a library routine (BLAS baselines).
    CallOverhead,
}

impl MOp {
    /// The coarse class of this opcode.
    pub fn class(self) -> OpClass {
        use MOp::*;
        match self {
            MmLoadAPs | MmLoadUPs | MmLoadSs | MmLoadLPi | MmLoad1Ps | VldQ | VldD | VldLane
            | VldDup | FLoad => OpClass::Load,
            MmStoreAPs | MmStoreUPs | MmStoreSs | MmStoreLPi | VstQ | VstD | VstLane | FStore => {
                OpClass::Store
            }
            MmAddPs | MmMulPs | MmHaddPs | VaddQ | VaddD | VmulQ | VmulD | VmlaQ | VmlaD
            | VmulLaneQ | VmulLaneD | VmlaLaneQ | VmlaLaneD | Vpadd => OpClass::VectorArith,
            MmShufPs | MmUnpckPs | MmSetZeroPs | MmMovAps | Vmov | VdupLane | Vperm | VsetLane
            | VgetLane | Vzero => OpClass::Shuffle,
            FAdd | FMul | FMac | FMov => OpClass::ScalarArith,
            IAddr | Branch | CallOverhead => OpClass::Overhead,
        }
    }

    /// Whether the opcode reads memory.
    pub fn is_load(self) -> bool {
        self.class() == OpClass::Load
    }

    /// Whether the opcode writes memory.
    pub fn is_store(self) -> bool {
        self.class() == OpClass::Store
    }

    /// Whether the opcode accesses memory at all.
    pub fn touches_memory(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Bytes moved by a memory opcode (0 otherwise).
    pub fn access_bytes(self) -> usize {
        use MOp::*;
        match self {
            MmLoadAPs | MmLoadUPs | MmStoreAPs | MmStoreUPs | VldQ | VstQ => 16,
            MmLoadLPi | MmStoreLPi | VldD | VstD => 8,
            MmLoadSs | MmStoreSs | MmLoad1Ps | VldLane | VstLane | VldDup | FLoad | FStore => 4,
            _ => 0,
        }
    }

    /// Whether this is an *aligned-only* memory opcode (faults on unaligned
    /// addresses, like `movaps`).
    pub fn requires_alignment(self) -> bool {
        matches!(self, MOp::MmLoadAPs | MOp::MmStoreAPs)
    }

    /// Floating-point operations performed (for peak-utilization debugging;
    /// kernel flops are always *deduced from the BLAC*, per §5.1.4, not from
    /// instruction counts).
    pub fn flops(self) -> usize {
        use MOp::*;
        match self {
            MmAddPs | MmMulPs => 4,
            MmHaddPs => 4,
            VaddQ | VmulQ | VmulLaneQ => 4,
            VmlaQ | VmlaLaneQ => 8,
            VaddD | VmulD | VmulLaneD | Vpadd => 2,
            VmlaD | VmlaLaneD => 4,
            FAdd | FMul => 1,
            FMac => 2,
            _ => 0,
        }
    }

    /// A short mnemonic for trace dumps and the C unparser.
    pub fn mnemonic(self) -> &'static str {
        use MOp::*;
        match self {
            MmLoadAPs => "_mm_load_ps",
            MmLoadUPs => "_mm_loadu_ps",
            MmLoadSs => "_mm_load_ss",
            MmLoadLPi => "_mm_loadl_pi",
            MmLoad1Ps => "_mm_load1_ps",
            MmStoreAPs => "_mm_store_ps",
            MmStoreUPs => "_mm_storeu_ps",
            MmStoreSs => "_mm_store_ss",
            MmStoreLPi => "_mm_storel_pi",
            MmAddPs => "_mm_add_ps",
            MmMulPs => "_mm_mul_ps",
            MmHaddPs => "_mm_hadd_ps",
            MmShufPs => "_mm_shuffle_ps",
            MmUnpckPs => "_mm_unpacklo_ps",
            MmSetZeroPs => "_mm_setzero_ps",
            MmMovAps => "movaps",
            VldQ => "vld1q_f32",
            VldD => "vld1_f32",
            VldLane => "vld1q_lane_f32",
            VldDup => "vld1q_dup_f32",
            VstQ => "vst1q_f32",
            VstD => "vst1_f32",
            VstLane => "vst1q_lane_f32",
            VaddQ => "vaddq_f32",
            VaddD => "vadd_f32",
            VmulQ => "vmulq_f32",
            VmulD => "vmul_f32",
            VmlaQ => "vmlaq_f32",
            VmlaD => "vmla_f32",
            VmulLaneQ => "vmulq_lane_f32",
            VmulLaneD => "vmul_lane_f32",
            VmlaLaneQ => "vmlaq_lane_f32",
            VmlaLaneD => "vmla_lane_f32",
            Vpadd => "vpadd_f32",
            Vmov => "vmov",
            VdupLane => "vdupq_lane_f32",
            Vperm => "vextq_f32",
            VsetLane => "vsetq_lane_f32",
            VgetLane => "vgetq_lane_f32",
            Vzero => "vmovq_n_f32",
            FLoad => "flds",
            FStore => "fsts",
            FAdd => "fadds",
            FMul => "fmuls",
            FMac => "fmacs",
            FMov => "fcpys",
            IAddr => "addr",
            Branch => "bne",
            CallOverhead => "call",
        }
    }
}

impl std::fmt::Display for MOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_is_consistent() {
        assert!(MOp::MmLoadAPs.is_load());
        assert!(MOp::VstD.is_store());
        assert!(!MOp::MmAddPs.touches_memory());
        assert_eq!(MOp::VmlaD.class(), OpClass::VectorArith);
        assert_eq!(MOp::MmShufPs.class(), OpClass::Shuffle);
        assert_eq!(MOp::FMac.class(), OpClass::ScalarArith);
    }

    #[test]
    fn access_bytes_match_width() {
        assert_eq!(MOp::MmLoadUPs.access_bytes(), 16);
        assert_eq!(MOp::VldD.access_bytes(), 8);
        assert_eq!(MOp::FLoad.access_bytes(), 4);
        assert_eq!(MOp::MmAddPs.access_bytes(), 0);
    }

    #[test]
    fn only_movaps_style_ops_require_alignment() {
        assert!(MOp::MmLoadAPs.requires_alignment());
        assert!(MOp::MmStoreAPs.requires_alignment());
        assert!(!MOp::MmLoadUPs.requires_alignment());
        assert!(!MOp::VldQ.requires_alignment());
    }

    #[test]
    fn flop_counts() {
        assert_eq!(MOp::VmlaQ.flops(), 8);
        assert_eq!(MOp::VmlaD.flops(), 4);
        assert_eq!(MOp::MmAddPs.flops(), 4);
        assert_eq!(MOp::FMac.flops(), 2);
        assert_eq!(MOp::VldQ.flops(), 0);
    }
}
