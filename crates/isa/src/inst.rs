//! Dynamic instruction traces.
//!
//! Kernel execution (the C-IR interpreter in `lgen-cir`, or a baseline
//! generator) produces a stream of [`MachInst`]s — one event per dynamic
//! instruction, with concrete memory addresses — which a [`TraceSink`]
//! consumes. `lgen-machine` implements `TraceSink` with the cycle-accurate
//! scheduler; lightweight sinks here support counting and debugging.

use crate::ops::MOp;

/// A concrete memory access performed by an instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct MemRef {
    /// Byte address within the kernel's flat memory space.
    pub addr: usize,
    /// Access width in bytes.
    pub bytes: usize,
}

impl MemRef {
    /// Whether the access is 16-byte aligned.
    pub fn aligned16(&self) -> bool {
        self.addr.is_multiple_of(16)
    }
}

/// One dynamic instruction: opcode, register dataflow, optional memory
/// reference.
///
/// Register ids identify *values* for dependence tracking (read-after-write
/// hazards); they need not correspond to a finite architectural register
/// file — the schedulers only use them to compute operand-ready times.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachInst {
    /// The opcode.
    pub op: MOp,
    /// Destination register, if the instruction produces a value.
    pub dst: Option<u32>,
    /// Source registers read by the instruction.
    pub srcs: Vec<u32>,
    /// Memory reference for loads/stores.
    pub mem: Option<MemRef>,
}

impl MachInst {
    /// A register-only instruction.
    pub fn reg(op: MOp, dst: Option<u32>, srcs: Vec<u32>) -> Self {
        debug_assert!(!op.touches_memory(), "{op} needs a memory operand");
        MachInst {
            op,
            dst,
            srcs,
            mem: None,
        }
    }

    /// A load producing `dst` from `addr`.
    pub fn load(op: MOp, dst: u32, addr: usize) -> Self {
        debug_assert!(op.is_load(), "{op} is not a load");
        MachInst {
            op,
            dst: Some(dst),
            srcs: Vec::new(),
            mem: Some(MemRef {
                addr,
                bytes: op.access_bytes(),
            }),
        }
    }

    /// A store of `src` to `addr`.
    pub fn store(op: MOp, src: u32, addr: usize) -> Self {
        debug_assert!(op.is_store(), "{op} is not a store");
        MachInst {
            op,
            dst: None,
            srcs: vec![src],
            mem: Some(MemRef {
                addr,
                bytes: op.access_bytes(),
            }),
        }
    }
}

/// Consumer of a dynamic instruction trace.
pub trait TraceSink {
    /// Called once per dynamic instruction, in program order.
    fn emit(&mut self, inst: &MachInst);
}

/// A sink that discards the trace (pure-correctness runs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&mut self, _inst: &MachInst) {}
}

/// A sink that counts dynamic instructions per opcode.
///
/// Used by the Table 3.2 reproduction (arithmetic-operation counts of the
/// old vs. new matrix-vector multiplication) and by tests that assert on
/// instruction mixes (e.g. "no shuffles remain after scalar replacement
/// with generic loads/stores", §3.1).
#[derive(Clone, Debug, Default)]
pub struct CountingSink {
    counts: std::collections::HashMap<MOp, u64>,
    total: u64,
}

impl CountingSink {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Dynamic count of `op`.
    pub fn count(&self, op: MOp) -> u64 {
        self.counts.get(&op).copied().unwrap_or(0)
    }

    /// Total dynamic instructions.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of counts over the opcodes for which `pred` holds.
    pub fn count_matching(&self, pred: impl Fn(MOp) -> bool) -> u64 {
        self.counts
            .iter()
            .filter(|(op, _)| pred(**op))
            .map(|(_, n)| n)
            .sum()
    }

    /// Iterator over `(opcode, count)` pairs (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (MOp, u64)> + '_ {
        self.counts.iter().map(|(op, n)| (*op, *n))
    }
}

impl TraceSink for CountingSink {
    fn emit(&mut self, inst: &MachInst) {
        *self.counts.entry(inst.op).or_insert(0) += 1;
        self.total += 1;
    }
}

/// A sink that records the whole trace (tests and debugging).
#[derive(Clone, Debug, Default)]
pub struct RecordingSink {
    /// The recorded instructions.
    pub insts: Vec<MachInst>,
}

impl TraceSink for RecordingSink {
    fn emit(&mut self, inst: &MachInst) {
        self.insts.push(inst.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_ref_alignment() {
        assert!(MemRef {
            addr: 32,
            bytes: 16
        }
        .aligned16());
        assert!(!MemRef {
            addr: 36,
            bytes: 16
        }
        .aligned16());
    }

    #[test]
    fn constructors_fill_memory_metadata() {
        let ld = MachInst::load(MOp::MmLoadUPs, 3, 100);
        assert_eq!(ld.mem.unwrap().bytes, 16);
        let st = MachInst::store(MOp::VstD, 7, 8);
        assert_eq!(st.mem.unwrap().bytes, 8);
        assert_eq!(st.srcs, vec![7]);
    }

    #[test]
    fn counting_sink_histograms() {
        let mut s = CountingSink::new();
        s.emit(&MachInst::reg(MOp::MmAddPs, Some(0), vec![1, 2]));
        s.emit(&MachInst::reg(MOp::MmAddPs, Some(0), vec![1, 2]));
        s.emit(&MachInst::reg(MOp::MmHaddPs, Some(0), vec![1, 2]));
        assert_eq!(s.count(MOp::MmAddPs), 2);
        assert_eq!(s.count(MOp::MmHaddPs), 1);
        assert_eq!(s.total(), 3);
        assert_eq!(
            s.count_matching(|op| op == MOp::MmAddPs || op == MOp::MmHaddPs),
            3
        );
    }
}
