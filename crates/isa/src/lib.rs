//! Instruction-set and microarchitecture models for the LGen backends.
//!
//! This crate defines the vocabulary shared by the code generator
//! (`lgen-cir`, `lgen-sigma`), the baselines (`lgen-baselines`) and the
//! performance simulator (`lgen-machine`):
//!
//! * [`VectorIsa`] — the supported SIMD extensions (SSSE3 with ν = 4, NEON
//!   with quadword ν = 4 / doubleword ν = 2, or scalar-only), §2.2 of the
//!   paper;
//! * [`MOp`] — the machine-level opcode set that generated kernels are
//!   lowered to (SSE intrinsics, NEON intrinsics, scalar VFP ops, and address
//!   /branch bookkeeping);
//! * [`Microarch`] — the evaluated processors (Intel Atom, ARM Cortex-A8,
//!   Cortex-A9, ARM1176) plus the big x86 cores of Table 3.1, each with an
//!   instruction cost model ([`InstCost`]) encoding the published latency /
//!   throughput / issue-port asymmetries that drive the paper's results;
//! * [`MachInst`] and [`TraceSink`] — the dynamic-trace interface between
//!   kernel execution and the cycle simulator.

pub mod cost;
pub mod energy;
pub mod inst;
pub mod ops;
pub mod uarch;

pub use cost::{haswell_family_add_vs_hadd, InstCost, PortReq};
pub use inst::{MachInst, MemRef, TraceSink};
pub use ops::{MOp, OpClass};
pub use uarch::{Microarch, UarchParams};

/// A SIMD instruction-set extension targeted by the compiler backend.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum VectorIsa {
    /// x86-64 SSSE3 (Intel Atom): 128-bit vectors, ν = 4 floats.
    Ssse3,
    /// ARMv7 NEON (Cortex-A8/A9): 128-bit quadword (ν = 4) and 64-bit
    /// doubleword (ν = 2) operations.
    Neon,
    /// No SIMD extension (ARM1176 / ARMv6): scalar code only.
    Scalar,
}

impl VectorIsa {
    /// The vector length ν in single-precision floats (1 for scalar).
    pub fn nu(self) -> usize {
        match self {
            VectorIsa::Ssse3 | VectorIsa::Neon => 4,
            VectorIsa::Scalar => 1,
        }
    }

    /// Whether this ISA has efficient doubleword (half-vector) operations
    /// (NEON only) — the property exploited by specialized ν-BLACs (§3.4).
    pub fn has_doubleword(self) -> bool {
        self == VectorIsa::Neon
    }

    /// Whether the ISA provides fused multiply-accumulate.
    pub fn has_fma(self) -> bool {
        self == VectorIsa::Neon
    }

    /// The alignment length in bytes relevant for aligned memory accesses.
    pub fn alignment_bytes(self) -> usize {
        match self {
            VectorIsa::Ssse3 | VectorIsa::Neon => 16,
            VectorIsa::Scalar => 4,
        }
    }
}

impl std::fmt::Display for VectorIsa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VectorIsa::Ssse3 => write!(f, "SSSE3"),
            VectorIsa::Neon => write!(f, "NEON"),
            VectorIsa::Scalar => write!(f, "scalar"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nu_values() {
        assert_eq!(VectorIsa::Ssse3.nu(), 4);
        assert_eq!(VectorIsa::Neon.nu(), 4);
        assert_eq!(VectorIsa::Scalar.nu(), 1);
    }

    #[test]
    fn capability_flags() {
        assert!(VectorIsa::Neon.has_fma());
        assert!(!VectorIsa::Ssse3.has_fma());
        assert!(VectorIsa::Neon.has_doubleword());
        assert!(!VectorIsa::Scalar.has_doubleword());
    }
}
