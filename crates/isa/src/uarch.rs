//! Microarchitecture descriptors (paper §2.2, Tables 2.2–2.5).

/// One of the processors modelled by the simulator.
///
/// The four embedded targets are the subject of the paper's evaluation; the
/// big x86 cores appear only in Table 3.1 (normal vs. horizontal vector
/// addition).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Microarch {
    /// Intel Atom D2550 (Bonnell): in-order, 2-wide, SSSE3 (Table 2.2).
    Atom,
    /// ARM Cortex-A8: in-order, NEON unit dual-issues one load/store with
    /// one data-processing instruction; non-pipelined scalar VFP (Table 2.3).
    CortexA8,
    /// ARM Cortex-A9: out-of-order core, but the NEON pipeline issues only
    /// one instruction per cycle; pipelined VFP (Table 2.4).
    CortexA9,
    /// ARM1176JZF-S: ARMv6, scalar-only VFP11 (Table 2.5).
    Arm1176,
    /// Intel Haswell (Table 3.1 row).
    Haswell,
    /// Intel Ivy Bridge (Table 3.1 row).
    IvyBridge,
    /// Intel Sandy Bridge (Table 3.1 row).
    SandyBridge,
    /// Intel Westmere (Table 3.1 row).
    Westmere,
    /// Intel Nehalem (Table 3.1 row).
    Nehalem,
}

/// Static parameters of a microarchitecture used by the scheduler and the
/// memory model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UarchParams {
    /// Display name.
    pub name: &'static str,
    /// Maximum instructions issued per cycle.
    pub issue_width: u32,
    /// Scheduling window: how far ahead of a stalled instruction issue may
    /// proceed. In-order cores get a small window modelling the *static*
    /// instruction scheduling done by the optimizing compiler (the paper's
    /// LGen "relies completely on the instruction reordering done by the
    /// underlying compiler", §2.2.1); the out-of-order Cortex-A9 gets a
    /// larger one.
    pub window: u32,
    /// Number of issue ports.
    pub num_ports: u32,
    /// L1 data cache capacity in bytes.
    pub l1d_bytes: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Additional latency of a load/store that misses L1.
    pub miss_penalty: u32,
    /// Additional cycles when an access straddles a cache line.
    pub cross_line_penalty: u32,
    /// Nominal clock (MHz) — informational only; all results are in cycles.
    pub clock_mhz: u32,
}

impl Microarch {
    /// The four embedded evaluation targets of the paper.
    pub const EVALUATED: [Microarch; 4] = [
        Microarch::Atom,
        Microarch::CortexA8,
        Microarch::CortexA9,
        Microarch::Arm1176,
    ];

    /// Scheduler/memory parameters for this core.
    pub fn params(self) -> UarchParams {
        match self {
            // Table 2.2: 1.86 GHz, 24 KB L1D, in-order, 2 issue ports.
            Microarch::Atom => UarchParams {
                name: "Intel Atom",
                issue_width: 2,
                window: 32,
                num_ports: 2,
                l1d_bytes: 24 * 1024,
                line_bytes: 64,
                miss_penalty: 16,
                cross_line_penalty: 2,
                clock_mhz: 1860,
            },
            // Table 2.3: 1 GHz, 32 KB L1D; NEON issues one load/store plus
            // one data-processing instruction per cycle (ports 0 and 1);
            // port 2 is the integer pipe.
            Microarch::CortexA8 => UarchParams {
                name: "ARM Cortex-A8",
                issue_width: 2,
                window: 16,
                num_ports: 3,
                l1d_bytes: 32 * 1024,
                line_bytes: 64,
                miss_penalty: 20,
                cross_line_penalty: 1,
                clock_mhz: 1000,
            },
            // Table 2.4: 1.4 GHz, 32 KB L1D; the NEON pipeline issues one
            // instruction per cycle (port 0), integer ops issue on port 1;
            // out-of-order core modelled with a small scheduling window.
            Microarch::CortexA9 => UarchParams {
                name: "ARM Cortex-A9",
                issue_width: 2,
                window: 24,
                num_ports: 2,
                l1d_bytes: 32 * 1024,
                line_bytes: 64,
                miss_penalty: 18,
                cross_line_penalty: 1,
                clock_mhz: 1400,
            },
            // Table 2.5: 700 MHz, 16 KB L1D; single-issue, the VFP11
            // pipelines share their first two stages with everything else.
            Microarch::Arm1176 => UarchParams {
                name: "ARM1176JZF-S",
                issue_width: 1,
                window: 16,
                num_ports: 1,
                l1d_bytes: 16 * 1024,
                line_bytes: 32,
                miss_penalty: 25,
                cross_line_penalty: 1,
                clock_mhz: 700,
            },
            // Big x86 cores: only used for the Table 3.1 cost comparison,
            // but given plausible parameters so they can run kernels too.
            Microarch::Haswell
            | Microarch::IvyBridge
            | Microarch::SandyBridge
            | Microarch::Westmere
            | Microarch::Nehalem => UarchParams {
                name: self.name(),
                issue_width: 4,
                window: 32,
                num_ports: 4,
                l1d_bytes: 32 * 1024,
                line_bytes: 64,
                miss_penalty: 10,
                cross_line_penalty: 1,
                clock_mhz: 3000,
            },
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Microarch::Atom => "Intel Atom",
            Microarch::CortexA8 => "ARM Cortex-A8",
            Microarch::CortexA9 => "ARM Cortex-A9",
            Microarch::Arm1176 => "ARM1176JZF-S",
            Microarch::Haswell => "Haswell",
            Microarch::IvyBridge => "Ivy Bridge",
            Microarch::SandyBridge => "Sandy Bridge",
            Microarch::Westmere => "Westmere",
            Microarch::Nehalem => "Nehalem",
        }
    }

    /// The SIMD extension this core implements (§2.2).
    pub fn vector_isa(self) -> crate::VectorIsa {
        match self {
            Microarch::Atom
            | Microarch::Haswell
            | Microarch::IvyBridge
            | Microarch::SandyBridge
            | Microarch::Westmere
            | Microarch::Nehalem => crate::VectorIsa::Ssse3,
            Microarch::CortexA8 | Microarch::CortexA9 => crate::VectorIsa::Neon,
            Microarch::Arm1176 => crate::VectorIsa::Scalar,
        }
    }

    /// Theoretical peak in single-precision flops per cycle (§2.2).
    pub fn peak_flops_per_cycle(self) -> f64 {
        match self {
            Microarch::Atom => 6.0,
            Microarch::CortexA8 | Microarch::CortexA9 => 4.0,
            Microarch::Arm1176 => 1.0,
            _ => 16.0,
        }
    }
}

impl std::fmt::Display for Microarch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VectorIsa;

    #[test]
    fn spec_tables_2_2_to_2_5() {
        let atom = Microarch::Atom.params();
        assert_eq!(atom.l1d_bytes, 24 * 1024);
        assert_eq!(atom.clock_mhz, 1860);
        assert_eq!(Microarch::CortexA8.params().l1d_bytes, 32 * 1024);
        assert_eq!(Microarch::CortexA9.params().clock_mhz, 1400);
        assert_eq!(Microarch::Arm1176.params().l1d_bytes, 16 * 1024);
    }

    #[test]
    fn isa_assignment() {
        assert_eq!(Microarch::Atom.vector_isa(), VectorIsa::Ssse3);
        assert_eq!(Microarch::CortexA8.vector_isa(), VectorIsa::Neon);
        assert_eq!(Microarch::Arm1176.vector_isa(), VectorIsa::Scalar);
    }

    #[test]
    fn peaks_match_paper() {
        assert_eq!(Microarch::Atom.peak_flops_per_cycle(), 6.0);
        assert_eq!(Microarch::CortexA8.peak_flops_per_cycle(), 4.0);
        assert_eq!(Microarch::CortexA9.peak_flops_per_cycle(), 4.0);
        assert_eq!(Microarch::Arm1176.peak_flops_per_cycle(), 1.0);
    }

    #[test]
    fn issue_disciplines() {
        // Among the NEON pair, the out-of-order A9 sees further than the
        // in-order A8; every evaluated core has a bounded window.
        let a8 = Microarch::CortexA8.params().window;
        let a9 = Microarch::CortexA9.params().window;
        assert!(a9 > a8);
        for m in Microarch::EVALUATED {
            let w = m.params().window;
            assert!((1..=64).contains(&w), "{m}: window {w}");
        }
        assert_eq!(Microarch::Arm1176.params().issue_width, 1);
    }
}
