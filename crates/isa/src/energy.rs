//! Per-instruction energy model (the paper's §6 future-work item:
//! "introduction of energy-related metrics in the autotuning feedback
//! loop").
//!
//! The thesis notes that measuring energy on real boards needs extra
//! hardware and isolation of processor power from board power; here the
//! simulator substitutes a first-order energy model: each dynamic
//! instruction is charged a per-class energy depending on the
//! microarchitecture, and each cycle is charged the core's static/leakage
//! power. The numbers are nominal picojoules chosen to respect the
//! well-established orderings (memory access ≫ multiply > add > move;
//! a wider vector op costs more than a doubleword one but less than the
//! equivalent scalar sequence; low-voltage cores cost less per op).

use crate::ops::{MOp, OpClass};
use crate::uarch::Microarch;

/// Energy charged per dynamic instruction, in picojoules.
pub fn op_energy_pj(arch: Microarch, op: MOp) -> u64 {
    // Base cost by class, then scaled per core.
    let class_cost = match op.class() {
        OpClass::Load | OpClass::Store => match op.access_bytes() {
            16 => 60,
            8 => 40,
            _ => 25,
        },
        OpClass::VectorArith => match op {
            MOp::MmHaddPs => 45,
            MOp::VmlaQ | MOp::VmlaLaneQ => 40,
            MOp::VmlaD | MOp::VmlaLaneD => 22,
            MOp::VaddD | MOp::VmulD | MOp::VmulLaneD | MOp::Vpadd => 16,
            _ => 30,
        },
        OpClass::ScalarArith => 12,
        OpClass::Shuffle => 8,
        OpClass::Overhead => {
            if op == MOp::CallOverhead {
                200
            } else {
                3
            }
        }
    };
    // Core scaling: frequency/voltage class.
    let scale_num = match arch {
        Microarch::Atom => 10,
        Microarch::CortexA8 => 6,
        Microarch::CortexA9 => 8,
        Microarch::Arm1176 => 4,
        _ => 20,
    };
    class_cost * scale_num / 10
}

/// Static (leakage + clock-tree) energy per cycle, in picojoules.
pub fn static_energy_pj_per_cycle(arch: Microarch) -> u64 {
    match arch {
        Microarch::Atom => 12,
        Microarch::CortexA8 => 5,
        Microarch::CortexA9 => 8,
        Microarch::Arm1176 => 3,
        _ => 30,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_costs_more_than_arithmetic() {
        for arch in Microarch::EVALUATED {
            assert!(op_energy_pj(arch, MOp::MmLoadUPs) > op_energy_pj(arch, MOp::MmAddPs).min(1));
            if arch.vector_isa() == crate::VectorIsa::Neon {
                assert!(op_energy_pj(arch, MOp::VldQ) > op_energy_pj(arch, MOp::VaddD));
            }
        }
    }

    #[test]
    fn doubleword_cheaper_than_quadword() {
        // The §3.4 specialized ν-BLACs save energy too.
        assert!(
            op_energy_pj(Microarch::CortexA8, MOp::VmlaD)
                < op_energy_pj(Microarch::CortexA8, MOp::VmlaQ)
        );
        assert!(
            op_energy_pj(Microarch::CortexA8, MOp::VaddD)
                < op_energy_pj(Microarch::CortexA8, MOp::VaddQ)
        );
    }

    #[test]
    fn low_power_cores_cost_less_per_op() {
        assert!(
            op_energy_pj(Microarch::Arm1176, MOp::FAdd) < op_energy_pj(Microarch::Atom, MOp::FAdd)
        );
        assert!(
            static_energy_pj_per_cycle(Microarch::Arm1176)
                < static_energy_pj_per_cycle(Microarch::Atom)
        );
    }

    #[test]
    fn call_overhead_is_expensive() {
        for arch in Microarch::EVALUATED {
            assert!(op_energy_pj(arch, MOp::CallOverhead) > op_energy_pj(arch, MOp::IAddr) * 20);
        }
    }
}
