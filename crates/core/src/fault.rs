//! Deterministic fault injection for the tuning stack.
//!
//! A tuner is only as good as its ability to survive bad candidates: a
//! panicking measurement, a hung simulator run, or a corrupt kernel must
//! degrade the search, not abort it. This module provides the test
//! harness that *proves* that: a [`FaultPlan`] deterministically makes
//! chosen candidates panic, hang, or produce corrupt C-IR, keyed by the
//! candidate's index in the search space — the same index the worker pool
//! uses, so injection is identical for every thread count.
//!
//! Like static verification (`LGEN_VERIFY`), injection is env-gated:
//! `LGEN_FAULTS="panic@1,corrupt@3,hang@5:250ms"` makes candidate 1
//! panic, candidate 3 compile to out-of-bounds C-IR, and candidate 5
//! stall for 250 ms before evaluating. CI drives `lgenc --tune` under
//! such a plan and greps the failure summary, keeping the degradation
//! path wired end to end.

use lgen_cir::{Inst, Kernel};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// What a fault does to the candidate it targets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// The evaluation panics before compiling anything.
    Panic,
    /// The evaluation stalls for the given duration before proceeding —
    /// a candidate that hangs past its deadline (or is merely
    /// pathologically slow when no deadline is set).
    Hang(Duration),
    /// Compilation succeeds but the kernel's C-IR is corrupted (an
    /// out-of-bounds load), so static verification rejects it — and the
    /// numeric check traps it when verification is off. Corrupt
    /// candidates compile outside the shared
    /// [`KernelCache`](crate::cache::KernelCache), so they can never
    /// poison it.
    CorruptIr,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Panic => write!(f, "panic"),
            FaultKind::Hang(d) => write!(f, "hang({d:?})"),
            FaultKind::CorruptIr => write!(f, "corrupt"),
        }
    }
}

/// A deterministic per-candidate fault schedule (empty = no injection).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: BTreeMap<usize, FaultKind>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects any fault at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of candidates the plan targets.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Makes candidate `index` panic.
    #[must_use]
    pub fn panic_at(mut self, index: usize) -> Self {
        self.faults.insert(index, FaultKind::Panic);
        self
    }

    /// Makes candidate `index` stall for `delay` before evaluating.
    #[must_use]
    pub fn hang_at(mut self, index: usize, delay: Duration) -> Self {
        self.faults.insert(index, FaultKind::Hang(delay));
        self
    }

    /// Makes candidate `index` compile to corrupt C-IR.
    #[must_use]
    pub fn corrupt_at(mut self, index: usize) -> Self {
        self.faults.insert(index, FaultKind::CorruptIr);
        self
    }

    /// The fault (if any) scheduled for candidate `index`.
    pub fn kind(&self, index: usize) -> Option<FaultKind> {
        self.faults.get(&index).copied()
    }

    /// Indices the plan targets, ascending.
    pub fn targets(&self) -> impl Iterator<Item = usize> + '_ {
        self.faults.keys().copied()
    }

    /// Reads the `LGEN_FAULTS` environment variable. The grammar is a
    /// comma-separated list of `panic@<i>`, `corrupt@<i>`, and
    /// `hang@<i>[:<ms>ms|<s>s]` entries (hang defaults to one second).
    /// Unset or empty means no injection; a malformed entry is ignored
    /// (fault injection must never break a production run).
    pub fn from_env() -> Self {
        match std::env::var("LGEN_FAULTS") {
            Ok(spec) => Self::parse(&spec),
            Err(_) => FaultPlan::default(),
        }
    }

    /// Parses the `LGEN_FAULTS` grammar (see [`from_env`](Self::from_env)).
    pub fn parse(spec: &str) -> Self {
        let mut plan = FaultPlan::default();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let Some((kind, rest)) = entry.split_once('@') else {
                continue;
            };
            match kind {
                "panic" => {
                    if let Ok(i) = rest.parse() {
                        plan = plan.panic_at(i);
                    }
                }
                "corrupt" => {
                    if let Ok(i) = rest.parse() {
                        plan = plan.corrupt_at(i);
                    }
                }
                "hang" => {
                    let (idx, delay) = match rest.split_once(':') {
                        Some((i, d)) => (i, parse_duration(d)),
                        None => (rest, Some(Duration::from_secs(1))),
                    };
                    if let (Ok(i), Some(d)) = (idx.parse(), delay) {
                        plan = plan.hang_at(i, d);
                    }
                }
                _ => {}
            }
        }
        plan
    }
}

/// Parses `<n>ms`, `<n>s`, or a bare integer (milliseconds). Shared with
/// `lgenc`'s `--tune-deadline`/`--tune-budget` flags.
pub fn parse_duration(s: &str) -> Option<Duration> {
    let s = s.trim();
    if let Some(ms) = s.strip_suffix("ms") {
        return ms.trim().parse().ok().map(Duration::from_millis);
    }
    if let Some(secs) = s.strip_suffix('s') {
        return secs.trim().parse().ok().map(Duration::from_secs);
    }
    s.parse().ok().map(Duration::from_millis)
}

/// Corrupts a compiled kernel in place so that static verification
/// rejects it: the first generic load's address is pushed far out of
/// bounds (the same mutation the verifier's own coverage tests use).
/// Falls back to corrupting the declared length of the first array if the
/// kernel contains no load at all.
pub fn corrupt_kernel(kernel: &mut Kernel) {
    fn bump_first_load(insts: &mut [Inst]) -> bool {
        insts.iter_mut().any(|inst| match inst {
            Inst::GLoad { addr, .. } => {
                addr.constant += 1_000_000;
                true
            }
            Inst::Loop { body, .. } => bump_first_load(body),
            _ => false,
        })
    }
    for version in &mut kernel.versions {
        if bump_first_load(&mut version.body) {
            return;
        }
    }
    if let Some(a) = kernel.arrays.first_mut() {
        a.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompileConfig;
    use crate::pipeline::compile;
    use lgen_cir::verify_kernel;
    use lgen_isa::Microarch;
    use lgen_ll::paper;

    #[test]
    fn parse_round_trips_the_ci_grammar() {
        let plan = FaultPlan::parse("panic@1, corrupt@3,hang@5:250ms,hang@7");
        assert_eq!(plan.kind(1), Some(FaultKind::Panic));
        assert_eq!(plan.kind(3), Some(FaultKind::CorruptIr));
        assert_eq!(
            plan.kind(5),
            Some(FaultKind::Hang(Duration::from_millis(250)))
        );
        assert_eq!(plan.kind(7), Some(FaultKind::Hang(Duration::from_secs(1))));
        assert_eq!(plan.kind(0), None);
        assert_eq!(plan.len(), 4);
    }

    #[test]
    fn malformed_entries_are_ignored() {
        let plan = FaultPlan::parse("panic@x,boom@2,hang@1:abc,,corrupt@2");
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.kind(2), Some(FaultKind::CorruptIr));
        assert!(FaultPlan::parse("").is_empty());
    }

    #[test]
    fn parse_duration_accepts_ms_s_and_bare_integers() {
        assert_eq!(parse_duration("250ms"), Some(Duration::from_millis(250)));
        assert_eq!(parse_duration("2s"), Some(Duration::from_secs(2)));
        assert_eq!(parse_duration("40"), Some(Duration::from_millis(40)));
        assert_eq!(parse_duration("nope"), None);
        assert_eq!(parse_duration(""), None);
    }

    #[test]
    fn corrupt_kernel_fails_verification() {
        let blac = paper::gemv(4, 12);
        let mut kernel = compile(&blac, "k", &CompileConfig::full(Microarch::Atom));
        assert!(verify_kernel(&kernel).is_empty(), "clean kernel verifies");
        corrupt_kernel(&mut kernel);
        assert!(
            !verify_kernel(&kernel).is_empty(),
            "corrupted kernel must fail verification"
        );
    }
}
