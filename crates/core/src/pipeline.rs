//! The compilation pipeline: LL → Σ-LL-style codegen → C-IR passes → kernel.

use crate::cache::KernelCache;
use crate::config::CompileConfig;
use crate::pool::run_indexed;
use lgen_cir::passes::{
    copy_prop, dce, detect_alignment, detect_alignment_partial, scalar_replacement, unroll,
    version_for_alignment,
};
use lgen_cir::{merge_kernel_versions, verify_stage, ArrayKind, Kernel, VerifyFailure};
use lgen_ll::Blac;
use lgen_sigma::{compile_blac, CodegenOptions};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Cumulative wall-clock nanoseconds and invocation counts per pipeline
/// stage. Shared by reference across threads (all counters are relaxed
/// atomics — totals, not a trace), these are the hook later observability
/// work builds on; today they feed `lgenc --cache-stats`.
#[derive(Debug, Default)]
pub struct StageStats {
    codegen_ns: AtomicU64,
    unroll_ns: AtomicU64,
    scalar_replacement_ns: AtomicU64,
    copy_prop_ns: AtomicU64,
    dce_ns: AtomicU64,
    alignment_ns: AtomicU64,
    compiles: AtomicU64,
}

impl StageStats {
    fn add(counter: &AtomicU64, since: Instant) {
        counter.fetch_add(since.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Number of full pipeline runs recorded.
    pub fn compiles(&self) -> u64 {
        self.compiles.load(Ordering::Relaxed)
    }

    /// `(stage name, cumulative nanoseconds)` rows in pipeline order.
    pub fn rows(&self) -> [(&'static str, u64); 6] {
        [
            ("codegen", self.codegen_ns.load(Ordering::Relaxed)),
            ("unroll", self.unroll_ns.load(Ordering::Relaxed)),
            (
                "scalar-replacement",
                self.scalar_replacement_ns.load(Ordering::Relaxed),
            ),
            ("copy-prop", self.copy_prop_ns.load(Ordering::Relaxed)),
            ("dce", self.dce_ns.load(Ordering::Relaxed)),
            ("alignment", self.alignment_ns.load(Ordering::Relaxed)),
        ]
    }

    /// Total nanoseconds across all stages.
    pub fn total_ns(&self) -> u64 {
        self.rows().iter().map(|(_, ns)| ns).sum()
    }
}

/// Compiles a BLAC to a finished kernel for `cfg` (Fig. 2.1, minus the
/// autotuning loop — see [`crate::Autotuner`]).
///
/// # Panics
///
/// Panics if the BLAC does not validate, or if `cfg.verify` is enabled and
/// the kernel fails static verification (the message names the offending
/// pass and renders the diagnostics). Use [`try_compile`] to handle
/// verification failures programmatically.
///
/// # Example
///
/// ```
/// use lgen_core::{compile, CompileConfig};
/// use lgen_isa::Microarch;
///
/// let blac = lgen_ll::paper::gemv(4, 12);
/// let kernel = compile(&blac, "sgemv_4x12", &CompileConfig::full(Microarch::Atom));
/// assert_eq!(kernel.flops, 2 * 4 * 12 + 12);
/// let c = lgen_cir::unparse::unparse(&kernel, Microarch::Atom.vector_isa());
/// assert!(c.contains("_mm_")); // vectorized
/// ```
pub fn compile(blac: &Blac, name: &str, cfg: &CompileConfig) -> Kernel {
    compile_with_stats(blac, name, cfg, None)
}

/// [`compile`] that reports verification failures instead of panicking.
pub fn try_compile(blac: &Blac, name: &str, cfg: &CompileConfig) -> Result<Kernel, VerifyFailure> {
    try_compile_with_stats(blac, name, cfg, None)
}

/// [`compile`] with optional per-stage accounting: when `stats` is given,
/// each stage's wall-clock time is added to the shared counters (this is
/// what [`KernelCache`] threads through so cache misses are attributed to
/// stages).
pub fn compile_with_stats(
    blac: &Blac,
    name: &str,
    cfg: &CompileConfig,
    stats: Option<&StageStats>,
) -> Kernel {
    try_compile_with_stats(blac, name, cfg, stats).unwrap_or_else(|e| panic!("{e}"))
}

/// [`compile_with_stats`] that reports verification failures instead of
/// panicking. Per `cfg.verify`, the kernel is checked at pipeline
/// boundaries or between every pass, so the returned failure pinpoints the
/// stage that broke an invariant.
pub fn try_compile_with_stats(
    blac: &Blac,
    name: &str,
    cfg: &CompileConfig,
    stats: Option<&StageStats>,
) -> Result<Kernel, VerifyFailure> {
    if let Some(s) = stats {
        s.compiles.fetch_add(1, Ordering::Relaxed);
    }
    if cfg.peeling && cfg.arch.vector_isa() != lgen_isa::VectorIsa::Scalar {
        let kernel = compile_peeled(blac, name, cfg, stats)?;
        verify_stage("peeling", &kernel, cfg.verify, true)?;
        return Ok(kernel);
    }
    let mut kernel = compile_one(blac, name, cfg, None, stats)?;

    // Alignment handling (§3.2).
    let t = Instant::now();
    if cfg.alignment_versioning {
        kernel = version_for_alignment(&kernel);
    } else if cfg.alignment_detection {
        let zeros = vec![0usize; kernel.arrays.len()];
        detect_alignment(kernel.body_mut(), &zeros);
    }
    if let Some(s) = stats {
        StageStats::add(&s.alignment_ns, t);
    }
    let exit_stage = if cfg.alignment_versioning {
        "alignment-versioning"
    } else if cfg.alignment_detection {
        "alignment"
    } else {
        "pipeline"
    };
    verify_stage(exit_stage, &kernel, cfg.verify, true)?;
    Ok(kernel)
}

/// Compiles many `(BLAC, name, config)` jobs over one worker pool and one
/// shared cache, returning kernels in job order. The batch analogue of
/// [`KernelCache::get_or_compile`]: repeated points across the batch (or
/// across batches on the same cache) compile once.
pub fn compile_many(
    jobs: &[(Blac, String, CompileConfig)],
    threads: usize,
    cache: &KernelCache,
) -> Vec<Arc<Kernel>> {
    run_indexed(jobs.len(), threads, |i| {
        let (blac, name, cfg) = &jobs[i];
        cache.get_or_compile(blac, name, cfg)
    })
}

/// One body: codegen with an optional peel assumption, then the code-level
/// optimizations (§2.1.4, §3.1).
fn compile_one(
    blac: &Blac,
    name: &str,
    cfg: &CompileConfig,
    peel: Option<usize>,
    stats: Option<&StageStats>,
) -> Result<Kernel, VerifyFailure> {
    let opts = CodegenOptions {
        isa: cfg.arch.vector_isa(),
        mvm: cfg.mvm,
        specialized_leftovers: cfg.specialized_leftovers,
        peel_offset: peel,
    };
    macro_rules! staged {
        ($counter:ident, $e:expr) => {{
            let t = Instant::now();
            let out = $e;
            if let Some(s) = stats {
                StageStats::add(&s.$counter, t);
            }
            out
        }};
    }
    let mut kernel = staged!(codegen_ns, compile_blac(blac, name, &opts));
    verify_stage("codegen", &kernel, cfg.verify, true)?;
    let body = std::mem::take(kernel.body_mut());
    let body = staged!(unroll_ns, unroll(body, cfg.unroll));
    *kernel.body_mut() = body;
    verify_stage("unroll", &kernel, cfg.verify, false)?;
    let body = std::mem::take(kernel.body_mut());
    let body = staged!(
        scalar_replacement_ns,
        scalar_replacement(body, &kernel.arrays)
    );
    *kernel.body_mut() = body;
    verify_stage("scalar-replacement", &kernel, cfg.verify, false)?;
    let body = std::mem::take(kernel.body_mut());
    let body = staged!(copy_prop_ns, copy_prop(body));
    *kernel.body_mut() = body;
    verify_stage("copy-prop", &kernel, cfg.verify, false)?;
    let body = std::mem::take(kernel.body_mut());
    let body = staged!(dce_ns, dce(body, &kernel.arrays));
    *kernel.body_mut() = body;
    verify_stage("dce", &kernel, cfg.verify, false)?;
    Ok(kernel)
}

/// §6 future-work loop peeling: one version per shared base-offset class of
/// the vector-sized parameter arrays (a common single-allocation pattern —
/// exactly the Fig. 5.9 protocol), each analyzed under its own assumption,
/// plus an unconditional unaligned fallback.
fn compile_peeled(
    blac: &Blac,
    name: &str,
    cfg: &CompileConfig,
    stats: Option<&StageStats>,
) -> Result<Kernel, VerifyFailure> {
    let nu = 4usize;
    let mut versions = Vec::with_capacity(nu + 1);
    for off in 0..nu {
        let mut k = compile_one(blac, name, cfg, Some(off), stats)?;
        let assumptions: Vec<Option<usize>> = k
            .arrays
            .iter()
            .map(|a| match a.kind {
                ArrayKind::Local => Some(0),
                _ if a.len >= nu => Some(off),
                _ => None,
            })
            .collect();
        detect_alignment_partial(k.body_mut(), &assumptions);
        let required: Vec<Option<usize>> = k
            .arrays
            .iter()
            .filter(|a| a.kind.is_param())
            .map(|a| if a.len >= nu { Some(off) } else { None })
            .collect();
        versions.push((Some(required), k));
    }
    versions.push((None, compile_one(blac, name, cfg, None, stats)?));
    Ok(merge_kernel_versions(versions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;
    use lgen_cir::passes::align::count_aligned;
    use lgen_cir::passes::UnrollPolicy;
    use lgen_isa::Microarch;
    use lgen_ll::paper;

    #[test]
    fn align_variant_marks_accesses() {
        let blac = paper::axpy(32);
        let base = compile(
            &blac,
            "k",
            &CompileConfig::variant(Microarch::Atom, Variant::Base),
        );
        let full = compile(&blac, "k", &CompileConfig::full(Microarch::Atom));
        assert_eq!(count_aligned(base.body()).0, 0);
        let (aligned, total) = count_aligned(full.body());
        assert_eq!(aligned, total);
        assert!(total > 0);
    }

    #[test]
    fn versioning_produces_dispatch_kernels() {
        let blac = paper::axpy(16);
        let cfg = CompileConfig::full(Microarch::Atom).with_versioning();
        let k = compile(&blac, "k", &cfg);
        // x and y are versioned (alpha is scalar): 4^2 + 1.
        assert_eq!(k.versions.len(), 17);
    }

    #[test]
    fn optimization_shrinks_chains() {
        // addt_gemm materializes a temporary; scalar replacement + DCE must
        // still leave a working kernel smaller than the raw emission.
        let blac = paper::addt_gemm(8, 4, 4);
        let cfg = CompileConfig::full(Microarch::Atom).with_unroll(UnrollPolicy::None);
        let raw = lgen_sigma::compile_blac(
            &blac,
            "raw",
            &lgen_sigma::CodegenOptions::full(Microarch::Atom.vector_isa()),
        );
        let opt = compile(&blac, "opt", &cfg);
        assert!(
            opt.static_size() <= raw.static_size(),
            "passes must not grow unrolled-free code: {} vs {}",
            opt.static_size(),
            raw.static_size()
        );
    }

    #[test]
    fn unroll_policy_is_respected() {
        let blac = paper::mvm(4, 64);
        let rolled = compile(
            &blac,
            "k",
            &CompileConfig::full(Microarch::Atom).with_unroll(UnrollPolicy::None),
        );
        let unrolled = compile(
            &blac,
            "k",
            &CompileConfig::full(Microarch::Atom).with_unroll(UnrollPolicy::Full { max_trip: 64 }),
        );
        assert!(unrolled.static_size() > rolled.static_size());
        // Fully unrolled: no loops remain.
        let mut loops = 0;
        unrolled.visit_insts(|i| {
            if matches!(i, lgen_cir::Inst::Loop { .. }) {
                loops += 1;
            }
        });
        assert_eq!(loops, 0);
    }

    #[test]
    fn peeled_kernels_have_five_versions_and_aligned_main_loops() {
        let blac = paper::axpy(37);
        let cfg = CompileConfig::full(Microarch::Atom).with_peeling();
        let k = compile(&blac, "k", &cfg);
        assert_eq!(k.versions.len(), 5);
        // Every non-fallback version must contain aligned full-width ops.
        for v in &k.versions[..4] {
            let (aligned, total) = count_aligned(&v.body);
            assert!(
                aligned > 0,
                "peeled version has no aligned access ({total} total)"
            );
        }
        // The fallback has none.
        assert_eq!(count_aligned(&k.versions[4].body).0, 0);
    }

    #[test]
    fn peeled_kernels_correct_at_every_shared_offset() {
        use crate::exec::run_blac_kernel;
        use lgen_ll::reference::{eval_reference, max_abs_diff, test_data};
        for blac in [paper::axpy(23), paper::madd(5, 7), paper::mvm(6, 10)] {
            let cfg = CompileConfig::full(Microarch::Atom).with_peeling();
            let kernel = compile(&blac, "k", &cfg);
            for off in 0..4usize {
                let values: Vec<_> = blac
                    .operands
                    .iter()
                    .enumerate()
                    .map(|(i, op)| test_data(op.dims, 55 + i as u64))
                    .collect();
                let expected = eval_reference(&blac, &values);
                let mut bufs: Vec<Vec<f32>> = values.iter().map(|v| v.data.clone()).collect();
                let offsets: Vec<usize> = blac
                    .operands
                    .iter()
                    .map(|o| if o.dims.len() >= 4 { off } else { 0 })
                    .collect();
                let layout = lgen_cir::MemLayout::with_float_offsets(&kernel, &offsets);
                {
                    let mut refs: Vec<&mut [f32]> =
                        bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
                    lgen_cir::run_kernel(
                        &kernel,
                        &mut refs,
                        &layout,
                        lgen_isa::VectorIsa::Ssse3,
                        &mut lgen_isa::inst::NullSink,
                    )
                    .unwrap_or_else(|e| panic!("off {off}: {e}"));
                }
                let got = lgen_ll::reference::MatrixValue::new(
                    blac.dims(blac.output),
                    bufs[blac.output.0].clone(),
                );
                assert!(max_abs_diff(&got, &expected) < 1e-3, "off {off}");
                let _ = run_blac_kernel; // silence unused import in some cfgs
            }
        }
    }

    #[test]
    fn peeling_beats_plain_versioning_on_misaligned_elementwise() {
        // The Fig. 5.9 limitation: plain alignment versioning cannot help
        // when every row is off by one float; peeling can.
        use crate::exec::measure_blac;
        let blac = paper::axpy(256);
        let peeled = compile(
            &blac,
            "k",
            &CompileConfig::full(Microarch::Atom).with_peeling(),
        );
        let versioned = compile(
            &blac,
            "k",
            &CompileConfig::full(Microarch::Atom).with_versioning(),
        );
        let offs = [0usize, 1, 1]; // alpha aligned, x and y off by one float
        let mp = measure_blac(&blac, &peeled, Microarch::Atom, &offs, 3).unwrap();
        let mv = measure_blac(&blac, &versioned, Microarch::Atom, &offs, 3).unwrap();
        assert!(
            mp.cycles < mv.cycles,
            "peeled {} vs versioned {}",
            mp.cycles,
            mv.cycles
        );
    }

    #[test]
    fn scalar_target_compiles_scalar_code() {
        let blac = paper::gemm(4, 5, 6);
        let k = compile(&blac, "k", &CompileConfig::full(Microarch::Arm1176));
        let c = lgen_cir::unparse::unparse(&k, lgen_isa::VectorIsa::Scalar);
        assert!(!c.contains("_mm_"));
        assert!(!c.contains("vld1"));
    }
}
