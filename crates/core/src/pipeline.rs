//! The compilation pipeline: LL → Σ-LL-style codegen → C-IR pass pipeline
//! → kernel.
//!
//! The C-IR optimization schedule is *data*, not code: the config's
//! [`PassPipeline`] (see `lgen_cir::passes::manager`) is run by the pass
//! manager, which owns per-pass timing ([`PassStats`]), between-pass
//! verification, fixpoint `repeat(...)` groups, and `--print-after-all`
//! tracing ([`PassTrace`]). This module contributes only what sits outside
//! the schedule: codegen in front of it, and the whole-kernel alignment
//! versioning / loop-peeling transforms behind it.

use crate::cache::KernelCache;
use crate::config::CompileConfig;
use crate::memo::{CompileMemo, OptKey};
use crate::pool::run_indexed;
use lgen_cir::passes::{
    detect_alignment_partial, version_for_alignment, PassCtx, PassPipeline, PassStats, PassTrace,
};
use lgen_cir::{
    merge_kernel_versions, verify_stage, ArrayKind, Kernel, VerifyFailure, VerifyLevel,
};
use lgen_ll::Blac;
use lgen_sigma::{compile_blac, CodegenOptions};
use std::sync::Arc;
use std::time::Instant;

/// Compiles a BLAC to a finished kernel for `cfg` (Fig. 2.1, minus the
/// autotuning loop — see [`crate::Autotuner`]).
///
/// # Panics
///
/// Panics if the BLAC does not validate, or if `cfg.verify` is enabled and
/// the kernel fails static verification (the message names the offending
/// pass and renders the diagnostics). Use [`try_compile`] to handle
/// verification failures programmatically.
///
/// # Example
///
/// ```
/// use lgen_core::{compile, CompileConfig};
/// use lgen_isa::Microarch;
///
/// let blac = lgen_ll::paper::gemv(4, 12);
/// let kernel = compile(&blac, "sgemv_4x12", &CompileConfig::full(Microarch::Atom));
/// assert_eq!(kernel.flops, 2 * 4 * 12 + 12);
/// let c = lgen_cir::unparse::unparse(&kernel, Microarch::Atom.vector_isa());
/// assert!(c.contains("_mm_")); // vectorized
/// ```
pub fn compile(blac: &Blac, name: &str, cfg: &CompileConfig) -> Kernel {
    compile_with_stats(blac, name, cfg, None)
}

/// [`compile`] that reports verification failures instead of panicking.
pub fn try_compile(blac: &Blac, name: &str, cfg: &CompileConfig) -> Result<Kernel, VerifyFailure> {
    try_compile_with_stats(blac, name, cfg, None)
}

/// [`compile`] with optional per-pass accounting: when `stats` is given,
/// every pass the pipeline runs (plus `codegen`) adds its wall-clock time
/// to the shared dynamic counters (this is what [`KernelCache`] threads
/// through so cache misses are attributed to passes).
pub fn compile_with_stats(
    blac: &Blac,
    name: &str,
    cfg: &CompileConfig,
    stats: Option<&PassStats>,
) -> Kernel {
    try_compile_with_stats(blac, name, cfg, stats).unwrap_or_else(|e| panic!("{e}"))
}

/// [`compile_with_stats`] that reports verification failures instead of
/// panicking. Per `cfg.verify`, the kernel is checked at pipeline
/// boundaries or between every pass, so the returned failure pinpoints the
/// stage that broke an invariant.
pub fn try_compile_with_stats(
    blac: &Blac,
    name: &str,
    cfg: &CompileConfig,
    stats: Option<&PassStats>,
) -> Result<Kernel, VerifyFailure> {
    try_compile_traced(blac, name, cfg, stats, None)
}

/// [`try_compile_with_stats`] that additionally records a
/// `--print-after-all` style IR snapshot after codegen and after every
/// pass the pipeline runs.
pub fn try_compile_traced(
    blac: &Blac,
    name: &str,
    cfg: &CompileConfig,
    stats: Option<&PassStats>,
    trace: Option<&PassTrace>,
) -> Result<Kernel, VerifyFailure> {
    let t = Instant::now();
    let mut span = lgen_telemetry::span("compile");
    if span.is_recording() {
        span.attr("kernel", name);
        span.attr("arch", format!("{:?}", cfg.arch));
        span.attr("pipeline", cfg.pipeline.to_spec());
    }
    let result = compile_body(blac, name, cfg, stats, trace);
    lgen_telemetry::counter("lgen.compile.count").inc();
    lgen_telemetry::histogram("lgen.compile.wall_us").record(t.elapsed().as_micros() as u64);
    if span.is_recording() {
        span.attr("ok", result.is_ok());
    }
    result
}

/// The actual LL → Σ-LL → C-IR pipeline body behind the telemetry shell of
/// [`try_compile_traced`].
fn compile_body(
    blac: &Blac,
    name: &str,
    cfg: &CompileConfig,
    stats: Option<&PassStats>,
    trace: Option<&PassTrace>,
) -> Result<Kernel, VerifyFailure> {
    if let Some(s) = stats {
        s.record_compile();
    }
    if cfg.peeling && cfg.arch.vector_isa() != lgen_isa::VectorIsa::Scalar {
        let kernel = compile_peeled(blac, name, cfg, stats, trace)?;
        verify_stage("peeling", &kernel, cfg.verify, true)?;
        return Ok(kernel);
    }
    // Versioning replaces the in-pipeline `align` step with per-version
    // detection, so the schedule runs without it.
    let pipeline = if cfg.alignment_versioning {
        cfg.pipeline.without("align")
    } else {
        cfg.pipeline.clone()
    };
    let mut kernel = compile_one(blac, name, cfg, None, &pipeline, stats, trace)?;

    if cfg.alignment_versioning {
        // Alignment versioning with runtime dispatch (§3.2.4).
        let t = Instant::now();
        let _span = lgen_telemetry::span("align-version");
        kernel = version_for_alignment(&kernel);
        if let Some(s) = stats {
            s.record("align-version", t.elapsed().as_nanos() as u64);
        }
        verify_stage("alignment-versioning", &kernel, cfg.verify, true)?;
    } else if cfg.verify != VerifyLevel::EveryPass || pipeline.is_empty() {
        // Pipeline-exit boundary check; at EveryPass the manager already
        // verified this exact kernel after its final pass.
        verify_stage("pipeline", &kernel, cfg.verify, true)?;
    }
    Ok(kernel)
}

/// [`try_compile_with_stats`] routed through a [`CompileMemo`]: lowering
/// and pipeline output are served from the memo when an earlier compile
/// (any unroll policy, any schedule) already produced them. Returns the
/// kernel and whether the *optimized* kernel was a memo hit. The caller
/// must have checked [`CompileMemo::eligible`]; the telemetry shell is the
/// same as [`try_compile_traced`]'s (the `compile` span gains a
/// `memo=hit|miss` attribute and the `lgen.compile.wall_us` histogram is
/// recorded on hits too, so tuning sweeps show their true per-candidate
/// compile cost).
pub(crate) fn try_compile_memoized(
    blac: &Blac,
    name: &str,
    cfg: &CompileConfig,
    stats: Option<&PassStats>,
    memo: &CompileMemo,
) -> Result<(Arc<Kernel>, bool), VerifyFailure> {
    debug_assert!(CompileMemo::eligible(cfg));
    let t = Instant::now();
    let mut span = lgen_telemetry::span("compile");
    if span.is_recording() {
        span.attr("kernel", name);
        span.attr("arch", format!("{:?}", cfg.arch));
        span.attr("pipeline", cfg.pipeline.to_spec());
    }
    let result = compile_memoized_body(blac, name, cfg, stats, memo);
    lgen_telemetry::counter("lgen.compile.count").inc();
    lgen_telemetry::histogram("lgen.compile.wall_us").record(t.elapsed().as_micros() as u64);
    if span.is_recording() {
        span.attr("ok", result.is_ok());
        if let Ok((_, hit)) = &result {
            span.attr("memo", if *hit { "hit" } else { "miss" });
        }
    }
    result
}

/// The memoized LL → Σ-LL → C-IR body behind [`try_compile_memoized`]:
/// lowering through the memo's codegen level, then either a memo hit on
/// the (structural × pipeline × unroll-signature) key or one real pipeline
/// run whose output is shared with every future equivalent candidate.
fn compile_memoized_body(
    blac: &Blac,
    name: &str,
    cfg: &CompileConfig,
    stats: Option<&PassStats>,
    memo: &CompileMemo,
) -> Result<(Arc<Kernel>, bool), VerifyFailure> {
    if let Some(s) = stats {
        s.record_compile();
    }
    let isa = cfg.arch.vector_isa();
    let lowered = memo.lowered_for(blac, name, cfg, || {
        let opts = CodegenOptions {
            isa,
            mvm: cfg.mvm,
            specialized_leftovers: cfg.specialized_leftovers,
            peel_offset: None,
        };
        let t = Instant::now();
        let kernel = {
            let _span = lgen_telemetry::span("codegen");
            compile_blac(blac, name, &opts)
        };
        if let Some(s) = stats {
            s.record("codegen", t.elapsed().as_nanos() as u64);
        }
        kernel
    });
    let key = OptKey::for_config(&lowered, cfg);
    if let Some(kernel) = memo.optimized_for(&key) {
        return Ok((kernel, true));
    }
    let mut kernel = (*lowered.kernel).clone();
    let ctx = PassCtx {
        unroll: cfg.unroll,
        verify: cfg.verify,
        isa,
        stats,
        trace: None,
    };
    cfg.pipeline.run(&mut kernel, &ctx)?;
    Ok((memo.insert_optimized(key, kernel), false))
}

/// Compiles many `(BLAC, name, config)` jobs over one worker pool and one
/// shared cache, returning kernels in job order. The batch analogue of
/// [`KernelCache::get_or_compile`]: repeated points across the batch (or
/// across batches on the same cache) compile once.
pub fn compile_many(
    jobs: &[(Blac, String, CompileConfig)],
    threads: usize,
    cache: &KernelCache,
) -> Vec<Arc<Kernel>> {
    run_indexed(jobs.len(), threads, |i| {
        let (blac, name, cfg) = &jobs[i];
        cache.get_or_compile(blac, name, cfg)
    })
}

/// One body: codegen with an optional peel assumption, then the given
/// C-IR pass schedule (§2.1.4, §3.1) under the pass manager.
fn compile_one(
    blac: &Blac,
    name: &str,
    cfg: &CompileConfig,
    peel: Option<usize>,
    pipeline: &PassPipeline,
    stats: Option<&PassStats>,
    trace: Option<&PassTrace>,
) -> Result<Kernel, VerifyFailure> {
    let isa = cfg.arch.vector_isa();
    let opts = CodegenOptions {
        isa,
        mvm: cfg.mvm,
        specialized_leftovers: cfg.specialized_leftovers,
        peel_offset: peel,
    };
    let t = Instant::now();
    let mut kernel = {
        let _span = lgen_telemetry::span("codegen");
        compile_blac(blac, name, &opts)
    };
    if let Some(s) = stats {
        s.record("codegen", t.elapsed().as_nanos() as u64);
    }
    if let Some(tr) = trace {
        tr.record("codegen", &kernel, isa);
    }
    verify_stage("codegen", &kernel, cfg.verify, true)?;
    let ctx = PassCtx {
        unroll: cfg.unroll,
        verify: cfg.verify,
        isa,
        stats,
        trace,
    };
    pipeline.run(&mut kernel, &ctx)?;
    Ok(kernel)
}

/// §6 future-work loop peeling: one version per shared base-offset class of
/// the vector-sized parameter arrays (a common single-allocation pattern —
/// exactly the Fig. 5.9 protocol), each analyzed under its own assumption,
/// plus an unconditional unaligned fallback.
fn compile_peeled(
    blac: &Blac,
    name: &str,
    cfg: &CompileConfig,
    stats: Option<&PassStats>,
    trace: Option<&PassTrace>,
) -> Result<Kernel, VerifyFailure> {
    let nu = 4usize;
    // Per-version alignment detection below replaces the schedule's
    // all-aligned `align` step.
    let pipeline = cfg.pipeline.without("align");
    let mut versions = Vec::with_capacity(nu + 1);
    for off in 0..nu {
        let mut k = compile_one(blac, name, cfg, Some(off), &pipeline, stats, trace)?;
        let assumptions: Vec<Option<usize>> = k
            .arrays
            .iter()
            .map(|a| match a.kind {
                ArrayKind::Local => Some(0),
                _ if a.len >= nu => Some(off),
                _ => None,
            })
            .collect();
        detect_alignment_partial(k.body_mut(), &assumptions);
        let required: Vec<Option<usize>> = k
            .arrays
            .iter()
            .filter(|a| a.kind.is_param())
            .map(|a| if a.len >= nu { Some(off) } else { None })
            .collect();
        versions.push((Some(required), k));
    }
    versions.push((
        None,
        compile_one(blac, name, cfg, None, &pipeline, stats, trace)?,
    ));
    Ok(merge_kernel_versions(versions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;
    use lgen_cir::passes::align::count_aligned;
    use lgen_cir::passes::UnrollPolicy;
    use lgen_isa::Microarch;
    use lgen_ll::paper;

    #[test]
    fn align_variant_marks_accesses() {
        let blac = paper::axpy(32);
        let base = compile(
            &blac,
            "k",
            &CompileConfig::variant(Microarch::Atom, Variant::Base),
        );
        let full = compile(&blac, "k", &CompileConfig::full(Microarch::Atom));
        assert_eq!(count_aligned(base.body()).0, 0);
        let (aligned, total) = count_aligned(full.body());
        assert_eq!(aligned, total);
        assert!(total > 0);
    }

    #[test]
    fn versioning_produces_dispatch_kernels() {
        let blac = paper::axpy(16);
        let cfg = CompileConfig::full(Microarch::Atom).with_versioning();
        let k = compile(&blac, "k", &cfg);
        // x and y are versioned (alpha is scalar): 4^2 + 1.
        assert_eq!(k.versions.len(), 17);
    }

    #[test]
    fn optimization_shrinks_chains() {
        // addt_gemm materializes a temporary; scalar replacement + DCE must
        // still leave a working kernel smaller than the raw emission.
        let blac = paper::addt_gemm(8, 4, 4);
        let cfg = CompileConfig::full(Microarch::Atom).with_unroll(UnrollPolicy::None);
        let raw = lgen_sigma::compile_blac(
            &blac,
            "raw",
            &lgen_sigma::CodegenOptions::full(Microarch::Atom.vector_isa()),
        );
        let opt = compile(&blac, "opt", &cfg);
        assert!(
            opt.static_size() <= raw.static_size(),
            "passes must not grow unrolled-free code: {} vs {}",
            opt.static_size(),
            raw.static_size()
        );
    }

    #[test]
    fn unroll_policy_is_respected() {
        let blac = paper::mvm(4, 64);
        let rolled = compile(
            &blac,
            "k",
            &CompileConfig::full(Microarch::Atom).with_unroll(UnrollPolicy::None),
        );
        let unrolled = compile(
            &blac,
            "k",
            &CompileConfig::full(Microarch::Atom).with_unroll(UnrollPolicy::Full { max_trip: 64 }),
        );
        assert!(unrolled.static_size() > rolled.static_size());
        // Fully unrolled: no loops remain.
        let mut loops = 0;
        unrolled.visit_insts(|i| {
            if matches!(i, lgen_cir::Inst::Loop { .. }) {
                loops += 1;
            }
        });
        assert_eq!(loops, 0);
    }

    #[test]
    fn custom_pipeline_spec_drives_the_schedule() {
        // A schedule without `align` must leave no aligned marks even on
        // the Full variant; a repeat(...) schedule still converges and
        // matches the standard schedule's output bits.
        let blac = paper::gemv(4, 12);
        let no_align = CompileConfig::full(Microarch::Atom)
            .with_passes(PassPipeline::parse("unroll,scalrep,copyprop,dce").unwrap());
        let k = compile(&blac, "k", &no_align);
        assert_eq!(count_aligned(k.body()).0, 0);

        let fixpoint = CompileConfig::full(Microarch::Atom)
            .with_passes(PassPipeline::parse("unroll,scalrep,repeat(copyprop,dce),align").unwrap());
        let kf = compile(&blac, "k", &fixpoint);
        let ks = compile(&blac, "k", &CompileConfig::full(Microarch::Atom));
        assert_eq!(kf.flops, ks.flops);
    }

    #[test]
    fn traced_compiles_snapshot_every_pass() {
        let blac = paper::gemv(4, 8);
        let cfg = CompileConfig::full(Microarch::Atom);
        let trace = PassTrace::new();
        try_compile_traced(&blac, "k", &cfg, None, Some(&trace)).unwrap();
        let stages: Vec<String> = trace.snapshots().iter().map(|(s, _)| s.clone()).collect();
        assert_eq!(
            stages,
            ["codegen", "unroll", "scalrep", "copyprop", "dce", "align"]
        );
        // Every snapshot is renderable C text.
        assert!(trace.snapshots().iter().all(|(_, ir)| ir.contains("void")));
    }

    #[test]
    fn pass_stats_have_one_row_per_pass_actually_run() {
        let blac = paper::gemv(4, 8);
        let stats = PassStats::new();
        compile_with_stats(
            &blac,
            "k",
            &CompileConfig::full(Microarch::Atom),
            Some(&stats),
        );
        let names: Vec<String> = stats.rows().iter().map(|(n, _, _)| n.clone()).collect();
        assert_eq!(
            names,
            ["codegen", "unroll", "scalrep", "copyprop", "dce", "align"]
        );
        assert_eq!(stats.compiles(), 1);
        // The base schedule runs fewer passes: no align row appears.
        let base_stats = PassStats::new();
        compile_with_stats(
            &blac,
            "k",
            &CompileConfig::base(Microarch::Atom),
            Some(&base_stats),
        );
        let names: Vec<String> = base_stats
            .rows()
            .iter()
            .map(|(n, _, _)| n.clone())
            .collect();
        assert!(!names.contains(&"align".to_string()));
    }

    #[test]
    fn peeled_kernels_have_five_versions_and_aligned_main_loops() {
        let blac = paper::axpy(37);
        let cfg = CompileConfig::full(Microarch::Atom).with_peeling();
        let k = compile(&blac, "k", &cfg);
        assert_eq!(k.versions.len(), 5);
        // Every non-fallback version must contain aligned full-width ops.
        for v in &k.versions[..4] {
            let (aligned, total) = count_aligned(&v.body);
            assert!(
                aligned > 0,
                "peeled version has no aligned access ({total} total)"
            );
        }
        // The fallback has none.
        assert_eq!(count_aligned(&k.versions[4].body).0, 0);
    }

    #[test]
    fn peeled_kernels_correct_at_every_shared_offset() {
        use lgen_ll::reference::{eval_reference, max_abs_diff, test_data};
        for blac in [paper::axpy(23), paper::madd(5, 7), paper::mvm(6, 10)] {
            let cfg = CompileConfig::full(Microarch::Atom).with_peeling();
            let kernel = compile(&blac, "k", &cfg);
            for off in 0..4usize {
                let values: Vec<_> = blac
                    .operands
                    .iter()
                    .enumerate()
                    .map(|(i, op)| test_data(op.dims, 55 + i as u64))
                    .collect();
                let expected = eval_reference(&blac, &values);
                let mut bufs: Vec<Vec<f32>> = values.iter().map(|v| v.data.clone()).collect();
                let offsets: Vec<usize> = blac
                    .operands
                    .iter()
                    .map(|o| if o.dims.len() >= 4 { off } else { 0 })
                    .collect();
                let layout = lgen_cir::MemLayout::with_float_offsets(&kernel, &offsets);
                {
                    let mut refs: Vec<&mut [f32]> =
                        bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
                    lgen_cir::run_kernel(
                        &kernel,
                        &mut refs,
                        &layout,
                        lgen_isa::VectorIsa::Ssse3,
                        &mut lgen_isa::inst::NullSink,
                    )
                    .unwrap_or_else(|e| panic!("off {off}: {e}"));
                }
                let got = lgen_ll::reference::MatrixValue::new(
                    blac.dims(blac.output),
                    bufs[blac.output.0].clone(),
                );
                assert!(max_abs_diff(&got, &expected) < 1e-3, "off {off}");
            }
        }
    }

    #[test]
    fn peeling_beats_plain_versioning_on_misaligned_elementwise() {
        // The Fig. 5.9 limitation: plain alignment versioning cannot help
        // when every row is off by one float; peeling can.
        use crate::exec::measure_blac;
        let blac = paper::axpy(256);
        let peeled = compile(
            &blac,
            "k",
            &CompileConfig::full(Microarch::Atom).with_peeling(),
        );
        let versioned = compile(
            &blac,
            "k",
            &CompileConfig::full(Microarch::Atom).with_versioning(),
        );
        let offs = [0usize, 1, 1]; // alpha aligned, x and y off by one float
        let mp = measure_blac(&blac, &peeled, Microarch::Atom, &offs, 3).unwrap();
        let mv = measure_blac(&blac, &versioned, Microarch::Atom, &offs, 3).unwrap();
        assert!(
            mp.cycles < mv.cycles,
            "peeled {} vs versioned {}",
            mp.cycles,
            mv.cycles
        );
    }

    #[test]
    fn scalar_target_compiles_scalar_code() {
        let blac = paper::gemm(4, 5, 6);
        let k = compile(&blac, "k", &CompileConfig::full(Microarch::Arm1176));
        let c = lgen_cir::unparse::unparse(&k, lgen_isa::VectorIsa::Scalar);
        assert!(!c.contains("_mm_"));
        assert!(!c.contains("vld1"));
    }
}
