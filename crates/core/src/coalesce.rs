//! In-flight request coalescing ("singleflight").
//!
//! Under concurrent traffic the same compile request arrives many times
//! *while the first one is still compiling* — the in-memory cache only
//! dedupes after the kernel lands, so N racing requests would burn N
//! pipelines to produce N identical kernels (the cache's `races` counter
//! measures exactly this). A [`Coalescer`] closes that window: callers
//! agree on a 64-bit fingerprint, the first caller in becomes the
//! **leader** and runs the work, everyone else arriving before it finishes
//! becomes a **follower** and blocks on the flight's condvar; the leader's
//! result is cloned to all of them (for `Arc<Kernel>` results, a pointer
//! bump).
//!
//! **Failure.** If the leader panics, the flight is marked abandoned, the
//! panic propagates to the leader's caller, and each follower wakes and
//! *retries from the top* — typically electing a new leader among
//! themselves. A panicking request therefore fails exactly the requests
//! that would have failed without coalescing, never its innocent
//! co-waiters, and — because this module uses std `Mutex`/`Condvar` with
//! poisoning explicitly swallowed — never wedges subsequent traffic on a
//! poisoned lock.
//!
//! **Lifecycle.** A flight lives in the map only while running: the leader
//! publishes its result *through the flight*, then unlinks it before
//! waking followers. A caller arriving after the unlink simply starts a
//! new flight — and immediately hits the now-warm kernel cache inside its
//! closure, so the extra flight costs a map lookup, not a compile.

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// State a follower can observe for one flight.
enum FlightState<T> {
    /// The leader is still working.
    Running,
    /// The leader finished; followers clone this.
    Done(T),
    /// The leader panicked; followers retry.
    Abandoned,
}

struct Flight<T> {
    state: Mutex<FlightState<T>>,
    cv: Condvar,
}

/// Dedup map for identical in-flight work items (see module docs).
///
/// `T` is the (cheaply cloneable) result type; the compile service uses
/// `Result<Arc<Kernel>, String>` so failures are shared with waiters too.
pub struct Coalescer<T> {
    flights: Mutex<HashMap<u64, Arc<Flight<T>>>>,
    coalesced: AtomicU64,
    led: AtomicU64,
}

impl<T: Clone> Default for Coalescer<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> Coalescer<T> {
    /// An empty coalescer.
    pub fn new() -> Self {
        Coalescer {
            flights: Mutex::new(HashMap::new()),
            coalesced: AtomicU64::new(0),
            led: AtomicU64::new(0),
        }
    }

    /// Runs `work` for fingerprint `fp`, or waits for an identical
    /// in-flight run and shares its result. Returns `(result, coalesced)`
    /// where `coalesced` is `true` iff this call piggybacked on another
    /// caller's work.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from `work` in the leader only; followers of a
    /// panicked leader retry (and may run `work` themselves).
    pub fn run(&self, fp: u64, work: impl FnOnce() -> T) -> (T, bool) {
        let mut work = Some(work);
        loop {
            let (flight, leader) = {
                let mut map = lock(&self.flights);
                match map.entry(fp) {
                    std::collections::hash_map::Entry::Occupied(e) => (e.get().clone(), false),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let f = Arc::new(Flight {
                            state: Mutex::new(FlightState::Running),
                            cv: Condvar::new(),
                        });
                        e.insert(f.clone());
                        (f, true)
                    }
                }
            };
            if leader {
                self.led.fetch_add(1, Ordering::Relaxed);
                let f = work.take().expect("leader runs once");
                let outcome = panic::catch_unwind(AssertUnwindSafe(f));
                // Publish, unlink, then wake: a follower that observes the
                // state is guaranteed the map no longer routes new arrivals
                // to this flight.
                {
                    let mut st = lock(&flight.state);
                    *st = match &outcome {
                        Ok(v) => FlightState::Done(v.clone()),
                        Err(_) => FlightState::Abandoned,
                    };
                }
                lock(&self.flights).remove(&fp);
                flight.cv.notify_all();
                match outcome {
                    Ok(v) => return (v, false),
                    Err(cause) => panic::resume_unwind(cause),
                }
            }
            // Follower: wait out the flight.
            let mut st = lock(&flight.state);
            loop {
                match &*st {
                    FlightState::Running => {
                        st = flight.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                    }
                    FlightState::Done(v) => {
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                        return (v.clone(), true);
                    }
                    FlightState::Abandoned => break,
                }
            }
            // Leader panicked; retry from the top (we may lead now).
        }
    }

    /// Number of calls served by piggybacking on another caller's work.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Number of calls that actually ran their closure as leader.
    pub fn led(&self) -> u64 {
        self.led.load(Ordering::Relaxed)
    }

    /// Number of flights currently in the air.
    pub fn in_flight(&self) -> usize {
        lock(&self.flights).len()
    }
}

/// `lock()` that swallows poisoning: a panicked leader must not wedge the
/// daemon (satellite bugfix — see DESIGN.md "The compile service").
fn lock<M>(m: &Mutex<M>) -> std::sync::MutexGuard<'_, M> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<T> std::fmt::Debug for Coalescer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coalescer")
            .field("in_flight", &lock(&self.flights).len())
            .field("coalesced", &self.coalesced.load(Ordering::Relaxed))
            .field("led", &self.led.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;
    use std::time::Duration;

    #[test]
    fn concurrent_identical_work_runs_once() {
        let co = Coalescer::<usize>::new();
        let runs = AtomicUsize::new(0);
        let gate = Barrier::new(8);
        let results: Vec<(usize, bool)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        gate.wait();
                        co.run(1, || {
                            runs.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open so late arrivals coalesce.
                            std::thread::sleep(Duration::from_millis(50));
                            7
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|&(v, _)| v == 7));
        let led = results.iter().filter(|&&(_, c)| !c).count();
        // Every thread either led or coalesced; at least one coalesced
        // (the barrier makes an 8-way no-overlap interleaving impossible
        // given the 50ms hold), and runs == leaders.
        assert_eq!(runs.load(Ordering::SeqCst), led);
        assert!(led < 8, "some calls must coalesce");
        assert_eq!(co.coalesced() as usize, 8 - led);
        assert_eq!(co.in_flight(), 0);
    }

    #[test]
    fn distinct_fingerprints_do_not_coalesce() {
        let co = Coalescer::<u64>::new();
        let (a, ca) = co.run(1, || 10);
        let (b, cb) = co.run(2, || 20);
        assert_eq!((a, b), (10, 20));
        assert!(!ca && !cb);
        assert_eq!(co.coalesced(), 0);
    }

    #[test]
    fn panicking_leader_does_not_poison_followers() {
        let co = Arc::new(Coalescer::<u64>::new());
        let gate = Arc::new(Barrier::new(2));
        let co2 = co.clone();
        let gate2 = gate.clone();
        let follower = std::thread::spawn(move || {
            gate2.wait();
            // Arrive while the doomed leader holds the flight; on abandon
            // we retry and run the work ourselves.
            co2.run(5, || 99)
        });
        let leader = std::thread::spawn(move || {
            let co = co;
            let gate = gate;
            std::panic::catch_unwind(AssertUnwindSafe(|| {
                co.run(5, || {
                    gate.wait();
                    std::thread::sleep(Duration::from_millis(30));
                    panic!("injected");
                })
            }))
        });
        assert!(leader.join().unwrap().is_err(), "leader sees its panic");
        let (v, _) = follower.join().unwrap();
        assert_eq!(v, 99, "follower recovers after abandoned flight");
    }

    #[test]
    fn sequential_calls_after_completion_start_fresh_flights() {
        let co = Coalescer::<u64>::new();
        let (a, ca) = co.run(3, || 1);
        let (b, cb) = co.run(3, || 2);
        assert_eq!((a, b), (1, 2), "completed flights are unlinked");
        assert!(!ca && !cb);
        assert_eq!(co.led(), 2);
    }
}
