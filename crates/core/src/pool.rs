//! A minimal scoped worker pool for embarrassingly parallel compile /
//! validate / measure jobs.
//!
//! Candidate evaluation in the autotuner and batch compilation are
//! index-addressed: job `i` writes result slot `i`, so the output order is
//! the input order no matter which worker ran what — the determinism the
//! autotuner's reduction relies on. Work distribution is a single atomic
//! counter (jobs are coarse — a full compile+validate+measure each — so
//! contention is negligible).
//!
//! Two entry points with different failure semantics:
//!
//! - [`run_indexed`] — a panicking job is fatal (batch compilation of
//!   trusted inputs): the panic propagates to the caller, and a
//!   cooperative cancel flag stops sibling workers from claiming further
//!   doomed jobs while the scope joins.
//! - [`run_outcomes`] — a panicking, hanging, or verifier-rejected job is
//!   *contained*: every job is wrapped in `catch_unwind`, optionally
//!   raced against a per-job deadline on a detached runner thread, and
//!   reported as a [`JobOutcome`] so the caller (the autotuner) can
//!   degrade gracefully instead of aborting the whole search.

use lgen_cir::VerifyFailure;
use parking_lot::Mutex;
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Resolves a requested thread count: `0` means "one per available core".
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// How one isolated job ended.
///
/// The lattice the fault-tolerant tuner reduces over: `Ok` beats
/// everything, the three failure modes are recorded (reason + counters)
/// and excluded from the reduction. `TimedOut` covers both a job that
/// exceeded its per-job deadline and a job never started because the
/// run's stop predicate (budget/cancel) already fired.
#[derive(Debug)]
pub enum JobOutcome<T> {
    /// The job completed.
    Ok(T),
    /// The job reported a verification failure (corrupt C-IR).
    Rejected(VerifyFailure),
    /// The job panicked; the payload rendered as text.
    Panicked(String),
    /// The job exceeded its deadline (its abandoned runner thread may
    /// still be unwinding) or was skipped because the run was stopped.
    TimedOut,
}

impl<T> JobOutcome<T> {
    /// The success value, if any.
    pub fn ok(self) -> Option<T> {
        match self {
            JobOutcome::Ok(t) => Some(t),
            _ => None,
        }
    }
}

/// Renders a caught panic payload (the common `&str`/`String` cases).
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `job(0..n_jobs)` on up to `threads` scoped workers and returns the
/// results in job order. With `threads <= 1` (or a single job) everything
/// runs on the caller's thread — the sequential path is the parallel path.
///
/// # Panics
///
/// A panicking job propagates out, matching the sequential behaviour the
/// batch compiler documents: a trusted input failing is a compiler bug,
/// not a recoverable condition. The panic sets a cancel flag checked in
/// the claim loop, so sibling workers stop claiming new (doomed) jobs
/// instead of running the rest of the batch to completion first; the
/// original payload is rethrown after the scope joins.
pub fn run_indexed<T, F>(n_jobs: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = effective_threads(threads).min(n_jobs);
    if threads <= 1 {
        return (0..n_jobs).map(job).collect();
    }

    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n_jobs).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    let job = &job;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let slots = &slots;
            let next = &next;
            let cancelled = &cancelled;
            let first_panic = &first_panic;
            scope.spawn(move || loop {
                if cancelled.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_jobs {
                    break;
                }
                // The job (a whole compile+validate+measure) runs outside
                // the lock; only the slot write serializes.
                match catch_unwind(AssertUnwindSafe(|| job(i))) {
                    Ok(result) => slots.lock()[i] = Some(result),
                    Err(payload) => {
                        cancelled.store(true, Ordering::Relaxed);
                        let mut slot = first_panic.lock();
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                        break;
                    }
                }
            });
        }
    });
    if let Some(payload) = first_panic.into_inner() {
        resume_unwind(payload);
    }
    slots
        .into_inner()
        .into_iter()
        .map(|s| s.expect("every job index was claimed"))
        .collect()
}

/// Runs one job under isolation: `catch_unwind` always; when a deadline
/// is given, the job runs on a detached runner thread and is abandoned if
/// it has not finished in time. The job receives its own deadline instant
/// so it can check cooperatively (e.g. to skip caching work whose result
/// nobody will collect).
fn run_isolated<T, F>(job: &Arc<F>, i: usize, deadline: Option<Duration>) -> JobOutcome<T>
where
    T: Send + 'static,
    F: Fn(usize, Option<Instant>) -> Result<T, VerifyFailure> + Send + Sync + 'static,
{
    let outcome_of = |caught: Result<Result<T, VerifyFailure>, Box<dyn Any + Send>>| match caught {
        Ok(Ok(t)) => JobOutcome::Ok(t),
        Ok(Err(v)) => JobOutcome::Rejected(v),
        Err(payload) => JobOutcome::Panicked(panic_message(payload.as_ref())),
    };
    match deadline {
        None => outcome_of(catch_unwind(AssertUnwindSafe(|| job(i, None)))),
        Some(d) => {
            let until = Instant::now() + d;
            let (tx, rx) = mpsc::channel();
            let job = job.clone();
            std::thread::spawn(move || {
                let _ = tx.send(catch_unwind(AssertUnwindSafe(|| job(i, Some(until)))));
            });
            match rx.recv_timeout(d) {
                Ok(caught) => outcome_of(caught),
                // The runner thread is abandoned: a hung job cannot be
                // killed in safe Rust, but it no longer occupies a worker
                // slot and its eventual result is discarded.
                Err(_) => JobOutcome::TimedOut,
            }
        }
    }
}

/// Fault-isolating variant of [`run_indexed`]: every job is contained
/// (`catch_unwind`, optional per-job `deadline`), failures become
/// [`JobOutcome`]s instead of aborting the run, and `stop` is checked in
/// the claim loop so sibling workers stop claiming jobs once the run is
/// doomed or its budget is spent (unclaimed slots report
/// [`JobOutcome::TimedOut`]).
///
/// The `'static` bounds exist because a deadline-guarded job runs on a
/// detached runner thread that may outlive the call; share context via
/// `Arc`.
pub fn run_outcomes<T, F>(
    n_jobs: usize,
    threads: usize,
    deadline: Option<Duration>,
    stop: &(dyn Fn() -> bool + Sync),
    job: Arc<F>,
) -> Vec<JobOutcome<T>>
where
    T: Send + 'static,
    F: Fn(usize, Option<Instant>) -> Result<T, VerifyFailure> + Send + Sync + 'static,
{
    let threads = effective_threads(threads).min(n_jobs.max(1));
    let slots: Mutex<Vec<Option<JobOutcome<T>>>> = Mutex::new((0..n_jobs).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    if threads <= 1 {
        loop {
            if stop() {
                break;
            }
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n_jobs {
                break;
            }
            let outcome = run_isolated(&job, i, deadline);
            slots.lock()[i] = Some(outcome);
        }
    } else {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let slots = &slots;
                let next = &next;
                let job = &job;
                scope.spawn(move || loop {
                    if stop() {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_jobs {
                        break;
                    }
                    let outcome = run_isolated(job, i, deadline);
                    slots.lock()[i] = Some(outcome);
                });
            }
        });
    }
    slots
        .into_inner()
        .into_iter()
        .map(|s| s.unwrap_or(JobOutcome::TimedOut))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_job_order() {
        for threads in [1, 2, 8] {
            let out = run_indexed(25, threads, |i| i * i);
            assert_eq!(out, (0..25).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_indexed(100, 4, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<usize> = run_indexed(0, 8, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn effective_threads_resolves_zero() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn panicking_job_still_propagates() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_indexed(8, 4, |i| {
                if i == 3 {
                    panic!("job 3 exploded");
                }
                i
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        assert_eq!(panic_message(payload.as_ref()), "job 3 exploded");
    }

    /// Regression: after one job panics, remaining workers must stop
    /// claiming doomed jobs instead of running the rest of the batch to
    /// completion before the scope joins.
    #[test]
    fn panicking_job_cancels_sibling_claims() {
        let ran = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_indexed(200, 4, |i| {
                if i == 0 {
                    panic!("doomed");
                }
                // Slow enough that the cancel flag is set long before the
                // batch could drain.
                std::thread::sleep(Duration::from_millis(5));
                ran.fetch_add(1, Ordering::Relaxed);
            })
        }));
        assert!(caught.is_err(), "the panic still propagates");
        let ran = ran.load(Ordering::Relaxed);
        assert!(
            ran < 40,
            "cancel flag ignored: {ran}/200 doomed jobs still ran"
        );
    }

    #[test]
    fn outcomes_contain_panics_and_preserve_order() {
        for threads in [1, 4] {
            let out: Vec<JobOutcome<usize>> = run_outcomes(
                10,
                threads,
                None,
                &|| false,
                Arc::new(|i, _| {
                    if i % 3 == 0 {
                        panic!("candidate {i} panicked");
                    }
                    Ok(i * 2)
                }),
            );
            assert_eq!(out.len(), 10);
            for (i, o) in out.iter().enumerate() {
                match o {
                    JobOutcome::Panicked(msg) => {
                        assert_eq!(i % 3, 0);
                        assert!(msg.contains("panicked"), "{msg}");
                    }
                    JobOutcome::Ok(v) => assert_eq!(*v, i * 2),
                    other => panic!("job {i}: unexpected {other:?}"),
                }
            }
        }
    }

    #[test]
    fn hung_job_times_out_and_the_run_continues() {
        let start = Instant::now();
        let out: Vec<JobOutcome<usize>> = run_outcomes(
            6,
            2,
            Some(Duration::from_millis(30)),
            &|| false,
            Arc::new(|i, _| {
                if i == 1 {
                    std::thread::sleep(Duration::from_millis(400));
                }
                Ok(i)
            }),
        );
        assert!(matches!(out[1], JobOutcome::TimedOut));
        let completed = out
            .iter()
            .filter(|o| matches!(o, JobOutcome::Ok(_)))
            .count();
        assert_eq!(completed, 5);
        assert!(
            start.elapsed() < Duration::from_millis(400),
            "the pool must not wait for the hung job"
        );
    }

    #[test]
    fn stop_predicate_skips_unclaimed_jobs() {
        // A stop predicate that fires after 4 completions: the remaining
        // slots must be reported TimedOut, not run.
        let done = Arc::new(AtomicUsize::new(0));
        let done_job = done.clone();
        let out: Vec<JobOutcome<usize>> = run_outcomes(
            50,
            2,
            None,
            &|| done.load(Ordering::Relaxed) >= 4,
            Arc::new(move |i, _| {
                done_job.fetch_add(1, Ordering::Relaxed);
                Ok(i)
            }),
        );
        assert_eq!(out.len(), 50);
        let skipped = out
            .iter()
            .filter(|o| matches!(o, JobOutcome::TimedOut))
            .count();
        assert!(skipped >= 40, "only {skipped}/50 jobs were skipped");

        // A stop predicate that is already true skips everything.
        let out2: Vec<JobOutcome<usize>> =
            run_outcomes(50, 2, None, &|| true, Arc::new(|i, _| Ok(i)));
        assert!(out2.iter().all(|o| matches!(o, JobOutcome::TimedOut)));
    }
}
