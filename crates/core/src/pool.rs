//! A minimal scoped worker pool for embarrassingly parallel compile /
//! validate / measure jobs.
//!
//! Candidate evaluation in the autotuner and batch compilation are
//! index-addressed: job `i` writes result slot `i`, so the output order is
//! the input order no matter which worker ran what — the determinism the
//! autotuner's reduction relies on. Work distribution is a single atomic
//! counter (jobs are coarse — a full compile+validate+measure each — so
//! contention is negligible).
//!
//! Two entry points with different failure semantics:
//!
//! - [`run_indexed`] — a panicking job is fatal (batch compilation of
//!   trusted inputs): the panic propagates to the caller, and a
//!   cooperative cancel flag stops sibling workers from claiming further
//!   doomed jobs while the scope joins.
//! - [`run_outcomes`] — a panicking, hanging, or verifier-rejected job is
//!   *contained*: every job is wrapped in `catch_unwind`, optionally
//!   raced against a per-job deadline on a detached runner thread, and
//!   reported as a [`JobOutcome`] so the caller (the autotuner) can
//!   degrade gracefully instead of aborting the whole search.

use lgen_cir::VerifyFailure;
use parking_lot::Mutex;
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Resolves a requested thread count: `0` means "one per available core".
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// How one isolated job ended.
///
/// The lattice the fault-tolerant tuner reduces over: `Ok` beats
/// everything, the three failure modes are recorded (reason + counters)
/// and excluded from the reduction. `TimedOut` covers both a job that
/// exceeded its per-job deadline and a job never started because the
/// run's stop predicate (budget/cancel) already fired.
#[derive(Debug)]
pub enum JobOutcome<T> {
    /// The job completed.
    Ok(T),
    /// The job reported a verification failure (corrupt C-IR).
    Rejected(VerifyFailure),
    /// The job panicked; the payload rendered as text.
    Panicked(String),
    /// The job exceeded its deadline (its abandoned runner thread may
    /// still be unwinding) or was skipped because the run was stopped.
    TimedOut,
}

impl<T> JobOutcome<T> {
    /// The success value, if any.
    pub fn ok(self) -> Option<T> {
        match self {
            JobOutcome::Ok(t) => Some(t),
            _ => None,
        }
    }
}

/// Renders a caught panic payload (the common `&str`/`String` cases).
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `job(0..n_jobs)` on up to `threads` scoped workers and returns the
/// results in job order. With `threads <= 1` (or a single job) everything
/// runs on the caller's thread — the sequential path is the parallel path.
///
/// # Panics
///
/// A panicking job propagates out, matching the sequential behaviour the
/// batch compiler documents: a trusted input failing is a compiler bug,
/// not a recoverable condition. The panic sets a cancel flag checked in
/// the claim loop, so sibling workers stop claiming new (doomed) jobs
/// instead of running the rest of the batch to completion first; the
/// original payload is rethrown after the scope joins.
pub fn run_indexed<T, F>(n_jobs: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = effective_threads(threads).min(n_jobs);
    if threads <= 1 {
        return (0..n_jobs).map(job).collect();
    }

    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n_jobs).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    let job = &job;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let slots = &slots;
            let next = &next;
            let cancelled = &cancelled;
            let first_panic = &first_panic;
            scope.spawn(move || loop {
                if cancelled.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_jobs {
                    break;
                }
                // The job (a whole compile+validate+measure) runs outside
                // the lock; only the slot write serializes.
                match catch_unwind(AssertUnwindSafe(|| job(i))) {
                    Ok(result) => slots.lock()[i] = Some(result),
                    Err(payload) => {
                        cancelled.store(true, Ordering::Relaxed);
                        let mut slot = first_panic.lock();
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                        break;
                    }
                }
            });
        }
    });
    if let Some(payload) = first_panic.into_inner() {
        resume_unwind(payload);
    }
    slots
        .into_inner()
        .into_iter()
        .map(|s| s.expect("every job index was claimed"))
        .collect()
}

/// A caught job result as it travels back from a runner thread.
type Caught<T> = Result<Result<T, VerifyFailure>, Box<dyn Any + Send>>;

/// One runner reply: the job index plus its caught result and measured
/// duration — `None` when the runner skipped the job after `halt` fired.
type Reply<T> = (usize, Option<(Caught<T>, Duration)>);

fn outcome_of<T>(caught: Caught<T>) -> JobOutcome<T> {
    match caught {
        Ok(Ok(t)) => JobOutcome::Ok(t),
        Ok(Err(v)) => JobOutcome::Rejected(v),
        Err(payload) => JobOutcome::Panicked(panic_message(payload.as_ref())),
    }
}

/// A persistent deadline-runner thread owned by one worker.
///
/// Spawning a thread per deadline-guarded job used to dominate a memoized
/// tuning sweep (the jobs finish in microseconds; a spawn costs tens, and
/// the per-job channel round-trip costs two context switches on a single
/// core). Instead each worker keeps one runner fed over a channel and
/// only abandons it — lazily respawning — when a job actually blows its
/// deadline, so the hung-job guarantee is unchanged while the happy path
/// spawns one thread per worker and streams jobs through it.
///
/// Each result carries the job's measured duration so the supervising
/// worker can adapt its claim-ahead depth, and `halt` lets the worker
/// tell the runner to skip queued jobs once the run's stop predicate
/// (budget) fires — skipped jobs come back as `None` payloads.
struct Runner<T> {
    jobs: mpsc::Sender<usize>,
    results: mpsc::Receiver<Reply<T>>,
    halt: Arc<AtomicBool>,
}

fn spawn_runner<T, F>(job: &Arc<F>, deadline: Duration) -> Runner<T>
where
    T: Send + 'static,
    F: Fn(usize, Option<Instant>) -> Result<T, VerifyFailure> + Send + Sync + 'static,
{
    let (tx_job, rx_job) = mpsc::channel::<usize>();
    let (tx_res, rx_res) = mpsc::channel();
    let halt = Arc::new(AtomicBool::new(false));
    let job = job.clone();
    let halted = halt.clone();
    std::thread::spawn(move || {
        while let Ok(i) = rx_job.recv() {
            let payload = if halted.load(Ordering::Relaxed) {
                None
            } else {
                let t = Instant::now();
                let until = t + deadline;
                let caught = catch_unwind(AssertUnwindSafe(|| job(i, Some(until))));
                Some((caught, t.elapsed()))
            };
            // A send error means the worker abandoned this runner (a job
            // overran its deadline); the stale result is discarded.
            if tx_res.send((i, payload)).is_err() {
                break;
            }
        }
    });
    Runner {
        jobs: tx_job,
        results: rx_res,
        halt,
    }
}

/// One worker's claim/dispatch loop for deadline-guarded jobs.
///
/// Jobs run on the worker's [`Runner`]; the worker adapts how far it
/// claims ahead of the results it has collected. One sub-millisecond job
/// opens the claim-ahead window fully (the runner then streams through
/// the queue in one timeslice instead of paying a channel round-trip —
/// two context switches on a single core — per job; this is the case a
/// memoized tuning sweep hits), anything slower snaps it back to one (so
/// slow jobs keep the claim-by-claim budget check and cross-worker
/// balance of the unpipelined loop). A job that has not produced a result within
/// `deadline` of becoming the oldest outstanding one is reported
/// [`JobOutcome::TimedOut`]; its runner is abandoned wholesale — dropping
/// the channels guarantees a hung job's eventual result is discarded and
/// never mistaken for a later job's — and the remaining claims are
/// re-sent to a fresh runner.
#[allow(clippy::too_many_arguments)]
fn supervise<T, F>(
    job: &Arc<F>,
    deadline: Duration,
    n_jobs: usize,
    next: &AtomicUsize,
    stop: &(dyn Fn() -> bool + Sync),
    slots: &Mutex<Vec<Option<JobOutcome<T>>>>,
) where
    T: Send + 'static,
    F: Fn(usize, Option<Instant>) -> Result<T, VerifyFailure> + Send + Sync + 'static,
{
    /// Jobs faster than this open the claim-ahead window; a channel
    /// round-trip is pure overhead for them.
    const FAST: Duration = Duration::from_millis(1);
    const MAX_AHEAD: usize = 32;

    let mut runner: Option<Runner<T>> = None;
    let mut pending: VecDeque<usize> = VecDeque::new();
    let mut head_started = Instant::now();
    let mut limit = 1usize;
    let mut stopped = false;
    let mut exhausted = false;
    loop {
        while pending.len() < limit && !stopped && !exhausted {
            if stop() {
                stopped = true;
                break;
            }
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n_jobs {
                exhausted = true;
                break;
            }
            let r = runner.get_or_insert_with(|| spawn_runner(job, deadline));
            if pending.is_empty() {
                head_started = Instant::now();
            }
            r.jobs.send(i).expect("runner thread alive");
            pending.push_back(i);
        }
        if pending.is_empty() {
            break;
        }
        let r = runner.as_ref().expect("pending implies a runner");
        if stopped {
            // Budget spent: queued claims are skipped by the runner and
            // reported TimedOut, matching the unclaimed-slot convention.
            r.halt.store(true, Ordering::Relaxed);
        }
        // In fast mode, yield the CPU to the runner a few times before
        // parking: on a loaded (or single-core) host the runner then
        // streams through its queued jobs in one timeslice and the worker
        // drains a batch per wake-up, instead of paying a futex wake and
        // two context switches per microsecond-sized job.
        let mut received = None;
        if limit > 1 {
            for _ in 0..4 {
                std::thread::yield_now();
                if let Ok(msg) = r.results.try_recv() {
                    received = Some(msg);
                    break;
                }
            }
        }
        if received.is_none() {
            let wait = (head_started + deadline).saturating_duration_since(Instant::now());
            // A result racing the deadline still counts: prefer draining
            // the channel over declaring a timeout.
            received = r
                .results
                .recv_timeout(wait)
                .ok()
                .or_else(|| r.results.try_recv().ok());
        }
        match received {
            Some((i, payload)) => {
                debug_assert_eq!(pending.front().copied(), Some(i));
                pending.pop_front();
                head_started = Instant::now();
                match payload {
                    Some((caught, dur)) => {
                        slots.lock()[i] = Some(outcome_of(caught));
                        limit = if dur < FAST { MAX_AHEAD } else { 1 };
                    }
                    None => slots.lock()[i] = Some(JobOutcome::TimedOut),
                }
            }
            None => {
                let i = pending.pop_front().expect("pending is non-empty");
                slots.lock()[i] = Some(JobOutcome::TimedOut);
                runner = None;
                limit = 1;
                head_started = Instant::now();
                let resend: Vec<usize> = pending.drain(..).collect();
                if !resend.is_empty() {
                    let r = runner.get_or_insert_with(|| spawn_runner(job, deadline));
                    for i in resend {
                        r.jobs.send(i).expect("fresh runner thread alive");
                        pending.push_back(i);
                    }
                }
            }
        }
    }
}

/// Runs one job under isolation on the caller's thread: `catch_unwind`
/// contains panics; hang containment is [`supervise`]'s job.
fn run_inline<T, F>(job: &Arc<F>, i: usize) -> JobOutcome<T>
where
    T: Send + 'static,
    F: Fn(usize, Option<Instant>) -> Result<T, VerifyFailure> + Send + Sync + 'static,
{
    outcome_of(catch_unwind(AssertUnwindSafe(|| job(i, None))))
}

/// Fault-isolating variant of [`run_indexed`]: every job is contained
/// (`catch_unwind`, optional per-job `deadline`), failures become
/// [`JobOutcome`]s instead of aborting the run, and `stop` is checked in
/// the claim loop so sibling workers stop claiming jobs once the run is
/// doomed or its budget is spent (unclaimed slots report
/// [`JobOutcome::TimedOut`]).
///
/// The `'static` bounds exist because a deadline-guarded job runs on a
/// detached runner thread that may outlive the call; share context via
/// `Arc`.
pub fn run_outcomes<T, F>(
    n_jobs: usize,
    threads: usize,
    deadline: Option<Duration>,
    stop: &(dyn Fn() -> bool + Sync),
    job: Arc<F>,
) -> Vec<JobOutcome<T>>
where
    T: Send + 'static,
    F: Fn(usize, Option<Instant>) -> Result<T, VerifyFailure> + Send + Sync + 'static,
{
    let threads = effective_threads(threads).min(n_jobs.max(1));
    let slots: Mutex<Vec<Option<JobOutcome<T>>>> = Mutex::new((0..n_jobs).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let worker = |job: &Arc<F>| match deadline {
        Some(d) => supervise(job, d, n_jobs, &next, stop, &slots),
        None => loop {
            if stop() {
                break;
            }
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n_jobs {
                break;
            }
            let outcome = run_inline(job, i);
            slots.lock()[i] = Some(outcome);
        },
    };
    if threads <= 1 {
        worker(&job);
    } else {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let worker = &worker;
                let job = &job;
                scope.spawn(move || worker(job));
            }
        });
    }
    slots
        .into_inner()
        .into_iter()
        .map(|s| s.unwrap_or(JobOutcome::TimedOut))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_job_order() {
        for threads in [1, 2, 8] {
            let out = run_indexed(25, threads, |i| i * i);
            assert_eq!(out, (0..25).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_indexed(100, 4, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<usize> = run_indexed(0, 8, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn effective_threads_resolves_zero() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn panicking_job_still_propagates() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_indexed(8, 4, |i| {
                if i == 3 {
                    panic!("job 3 exploded");
                }
                i
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        assert_eq!(panic_message(payload.as_ref()), "job 3 exploded");
    }

    /// Regression: after one job panics, remaining workers must stop
    /// claiming doomed jobs instead of running the rest of the batch to
    /// completion before the scope joins.
    #[test]
    fn panicking_job_cancels_sibling_claims() {
        let ran = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_indexed(200, 4, |i| {
                if i == 0 {
                    panic!("doomed");
                }
                // Slow enough that the cancel flag is set long before the
                // batch could drain.
                std::thread::sleep(Duration::from_millis(5));
                ran.fetch_add(1, Ordering::Relaxed);
            })
        }));
        assert!(caught.is_err(), "the panic still propagates");
        let ran = ran.load(Ordering::Relaxed);
        assert!(
            ran < 40,
            "cancel flag ignored: {ran}/200 doomed jobs still ran"
        );
    }

    #[test]
    fn outcomes_contain_panics_and_preserve_order() {
        for threads in [1, 4] {
            let out: Vec<JobOutcome<usize>> = run_outcomes(
                10,
                threads,
                None,
                &|| false,
                Arc::new(|i, _| {
                    if i % 3 == 0 {
                        panic!("candidate {i} panicked");
                    }
                    Ok(i * 2)
                }),
            );
            assert_eq!(out.len(), 10);
            for (i, o) in out.iter().enumerate() {
                match o {
                    JobOutcome::Panicked(msg) => {
                        assert_eq!(i % 3, 0);
                        assert!(msg.contains("panicked"), "{msg}");
                    }
                    JobOutcome::Ok(v) => assert_eq!(*v, i * 2),
                    other => panic!("job {i}: unexpected {other:?}"),
                }
            }
        }
    }

    #[test]
    fn hung_job_times_out_and_the_run_continues() {
        let start = Instant::now();
        let out: Vec<JobOutcome<usize>> = run_outcomes(
            6,
            2,
            Some(Duration::from_millis(30)),
            &|| false,
            Arc::new(|i, _| {
                if i == 1 {
                    std::thread::sleep(Duration::from_millis(400));
                }
                Ok(i)
            }),
        );
        assert!(matches!(out[1], JobOutcome::TimedOut));
        let completed = out
            .iter()
            .filter(|o| matches!(o, JobOutcome::Ok(_)))
            .count();
        assert_eq!(completed, 5);
        assert!(
            start.elapsed() < Duration::from_millis(400),
            "the pool must not wait for the hung job"
        );
    }

    #[test]
    fn stop_predicate_skips_unclaimed_jobs() {
        // A stop predicate that fires after 4 completions: the remaining
        // slots must be reported TimedOut, not run.
        let done = Arc::new(AtomicUsize::new(0));
        let done_job = done.clone();
        let out: Vec<JobOutcome<usize>> = run_outcomes(
            50,
            2,
            None,
            &|| done.load(Ordering::Relaxed) >= 4,
            Arc::new(move |i, _| {
                done_job.fetch_add(1, Ordering::Relaxed);
                Ok(i)
            }),
        );
        assert_eq!(out.len(), 50);
        let skipped = out
            .iter()
            .filter(|o| matches!(o, JobOutcome::TimedOut))
            .count();
        assert!(skipped >= 40, "only {skipped}/50 jobs were skipped");

        // A stop predicate that is already true skips everything.
        let out2: Vec<JobOutcome<usize>> =
            run_outcomes(50, 2, None, &|| true, Arc::new(|i, _| Ok(i)));
        assert!(out2.iter().all(|o| matches!(o, JobOutcome::TimedOut)));
    }
}
