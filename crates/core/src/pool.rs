//! A minimal scoped worker pool for embarrassingly parallel compile /
//! validate / measure jobs.
//!
//! Candidate evaluation in the autotuner and batch compilation are
//! index-addressed: job `i` writes result slot `i`, so the output order is
//! the input order no matter which worker ran what — the determinism the
//! autotuner's reduction relies on. Work distribution is a single atomic
//! counter (jobs are coarse — a full compile+validate+measure each — so
//! contention is negligible).

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a requested thread count: `0` means "one per available core".
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Runs `job(0..n_jobs)` on up to `threads` scoped workers and returns the
/// results in job order. With `threads <= 1` (or a single job) everything
/// runs on the caller's thread — the sequential path is the parallel path.
///
/// # Panics
///
/// A panicking job propagates out (after the scope joins all workers),
/// matching the sequential behaviour the autotuner documents: a candidate
/// failing validation is a compiler bug, not a recoverable condition.
pub fn run_indexed<T, F>(n_jobs: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = effective_threads(threads).min(n_jobs);
    if threads <= 1 {
        return (0..n_jobs).map(job).collect();
    }

    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n_jobs).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let job = &job;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let slots = &slots;
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_jobs {
                    break;
                }
                // The job (a whole compile+validate+measure) runs outside
                // the lock; only the slot write serializes.
                let result = job(i);
                slots.lock()[i] = Some(result);
            });
        }
    });
    slots
        .into_inner()
        .into_iter()
        .map(|s| s.expect("every job index was claimed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_job_order() {
        for threads in [1, 2, 8] {
            let out = run_indexed(25, threads, |i| i * i);
            assert_eq!(out, (0..25).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_indexed(100, 4, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<usize> = run_indexed(0, 8, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn effective_threads_resolves_zero() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }
}
