//! The autotuning feedback loop (Fig. 2.1, §5.1.5).
//!
//! LGen generates several code versions per BLAC, executes them on the
//! target device, and keeps the fastest. Here the "device" is the
//! `lgen-machine` simulator; the search space is the unrolling/outer-tiling
//! decision (§2.1.2 — outer tile sizes must divide the full-tile count, the
//! "leftovers in at most one level" restriction, which the `Factor`
//! unrolling policy enforces by skipping non-dividing trip counts).
//! The paper uses "random search over the search space with sample size
//! 10"; the sample size is configurable.

use crate::config::CompileConfig;
use crate::exec::{check_kernel, measure_blac, tolerance};
use crate::pipeline::compile;
use lgen_cir::passes::UnrollPolicy;
use lgen_cir::Kernel;
use lgen_ll::Blac;
use lgen_machine::Measurement;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// What the autotuner minimizes (§6 future work: "introduction of
/// energy-related metrics in the autotuning feedback loop").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Objective {
    /// Fastest kernel (the paper's default).
    Cycles,
    /// Least energy per invocation.
    Energy,
    /// Minimum energy-delay product.
    EnergyDelay,
}

impl Objective {
    fn score(self, m: &Measurement) -> u128 {
        match self {
            Objective::Cycles => m.cycles as u128,
            Objective::Energy => m.energy_pj as u128,
            Objective::EnergyDelay => m.energy_delay(),
        }
    }
}

/// How the search space is explored (§6 future work: random search visits
/// too little of large spaces — "LGen could possibly make use of heuristics
/// to prune the search space and/or direct the search").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum SearchStrategy {
    /// Uniform random sample of the given size (the paper's method,
    /// sample size 10 in §5.1.5).
    Random(usize),
    /// Every candidate (the space is small enough to enumerate).
    Exhaustive,
    /// Greedy hill climbing from the default decision: evaluates the
    /// current point's neighbours in the ordered space and moves while it
    /// improves — fewer evaluations than exhaustive, better coverage than
    /// a small random sample.
    Guided,
}

/// Result of an autotuning run.
#[derive(Clone, Debug)]
pub struct TunedKernel {
    /// The fastest validated kernel.
    pub kernel: Kernel,
    /// Its measurement.
    pub measurement: Measurement,
    /// The winning unroll decision.
    pub unroll: UnrollPolicy,
    /// `(candidate, median cycles)` for every sampled point.
    pub samples: Vec<(UnrollPolicy, u64)>,
}

/// Autotuner over the tiling/unrolling space.
#[derive(Clone, Debug)]
pub struct Autotuner {
    cfg: CompileConfig,
    strategy: SearchStrategy,
    objective: Objective,
    reps: usize,
    seed: u64,
}

impl Autotuner {
    /// Autotuner with the paper's defaults: random search, sample size 10,
    /// minimizing cycles.
    pub fn new(cfg: CompileConfig) -> Self {
        Autotuner {
            cfg,
            strategy: SearchStrategy::Random(10),
            objective: Objective::Cycles,
            reps: 3,
            seed: 0x5EED,
        }
    }

    /// Overrides the random-search sample size.
    #[must_use]
    pub fn with_sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.strategy = SearchStrategy::Random(n);
        self
    }

    /// Overrides the search strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides the tuning objective.
    #[must_use]
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Overrides the RNG seed (the search is deterministic per seed).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The candidate unrolling decisions.
    fn search_space() -> Vec<UnrollPolicy> {
        vec![
            UnrollPolicy::None,
            UnrollPolicy::Full { max_trip: 2 },
            UnrollPolicy::Full { max_trip: 4 },
            UnrollPolicy::Full { max_trip: 8 },
            UnrollPolicy::Full { max_trip: 16 },
            UnrollPolicy::Full { max_trip: 32 },
            UnrollPolicy::Full { max_trip: 128 },
            UnrollPolicy::Factor { factor: 2 },
            UnrollPolicy::Factor { factor: 4 },
            UnrollPolicy::Factor { factor: 8 },
        ]
    }

    /// Evaluates one candidate: compile, validate against the naive
    /// reference (§5.1.4), measure.
    fn evaluate(&self, blac: &Blac, name: &str, unroll: UnrollPolicy) -> (Kernel, Measurement) {
        let isa = self.cfg.arch.vector_isa();
        let offsets = vec![0usize; blac.operands.len()];
        let cfg = self.cfg.with_unroll(unroll);
        let kernel = compile(blac, name, &cfg);
        let diff = check_kernel(blac, &kernel, isa, 11)
            .unwrap_or_else(|e| panic!("candidate failed to execute: {e}"));
        assert!(
            diff < tolerance(blac.flops()),
            "candidate {unroll:?} numerically wrong: {diff}"
        );
        let m = measure_blac(blac, &kernel, self.cfg.arch, &offsets, self.reps)
            .expect("measurement");
        (kernel, m)
    }

    /// Tunes `blac` per the configured strategy and objective, returning
    /// the best validated kernel.
    ///
    /// # Panics
    ///
    /// Panics if a generated kernel fails validation — a compiler bug, not
    /// an input condition.
    pub fn tune(&self, blac: &Blac, name: &str) -> TunedKernel {
        let space = Self::search_space();
        let candidates: Vec<UnrollPolicy> = match self.strategy {
            SearchStrategy::Exhaustive => space,
            SearchStrategy::Random(sample_size) => {
                let mut rng = StdRng::seed_from_u64(self.seed);
                let mut s = space;
                s.shuffle(&mut rng);
                s.truncate(sample_size);
                s
            }
            SearchStrategy::Guided => {
                return self.tune_guided(blac, name, &space);
            }
        };

        let mut best: Option<(Kernel, Measurement, UnrollPolicy)> = None;
        let mut samples = Vec::with_capacity(candidates.len());
        for unroll in candidates {
            let (kernel, m) = self.evaluate(blac, name, unroll);
            samples.push((unroll, m.cycles));
            let better = match &best {
                None => true,
                Some((_, bm, _)) => self.objective.score(&m) < self.objective.score(bm),
            };
            if better {
                best = Some((kernel, m, unroll));
            }
        }
        let (kernel, measurement, unroll) = best.expect("non-empty sample");
        TunedKernel { kernel, measurement, unroll, samples }
    }

    /// Guided search: probe a few structurally diverse seeds (no unrolling,
    /// the default, maximal full unrolling, maximal factor unrolling), then
    /// hill-climb from the best seed.
    fn tune_guided(&self, blac: &Blac, name: &str, space: &[UnrollPolicy]) -> TunedKernel {
        let mut samples = Vec::new();
        let mut evaluated = vec![false; space.len()];
        let seeds = [
            0,               // UnrollPolicy::None
            space.len() / 2, // a mid-size full unroll
            space.len() - 4, // the largest full unroll
            space.len() - 1, // the largest factor unroll
        ];
        let mut idx = seeds[0];
        let mut best: Option<(Kernel, Measurement)> = None;
        for &si in &seeds {
            if evaluated[si] {
                continue;
            }
            evaluated[si] = true;
            let (k, m) = self.evaluate(blac, name, space[si]);
            samples.push((space[si], m.cycles));
            if best
                .as_ref()
                .is_none_or(|(_, bm)| self.objective.score(&m) < self.objective.score(bm))
            {
                best = Some((k, m));
                idx = si;
            }
        }
        let (mut best_k, mut best_m) = best.expect("seeds evaluated");
        loop {
            let mut improved = false;
            for next in [idx.wrapping_sub(1), idx + 1] {
                if next >= space.len() || evaluated[next] {
                    continue;
                }
                evaluated[next] = true;
                let (k, m) = self.evaluate(blac, name, space[next]);
                samples.push((space[next], m.cycles));
                if self.objective.score(&m) < self.objective.score(&best_m) {
                    best_k = k;
                    best_m = m;
                    idx = next;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
        let unroll = samples
            .iter()
            .find(|(_, c)| *c == best_m.cycles)
            .map(|(u, _)| *u)
            .expect("best was sampled");
        TunedKernel { kernel: best_k, measurement: best_m, unroll, samples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lgen_isa::Microarch;
    use lgen_ll::paper;

    #[test]
    fn exhaustive_search_is_at_least_as_good_as_random() {
        let blac = paper::gemv(4, 48);
        let cfg = CompileConfig::full(Microarch::Arm1176);
        let rand3 = Autotuner::new(cfg).with_sample_size(3).tune(&blac, "k");
        let exh = Autotuner::new(cfg).with_strategy(SearchStrategy::Exhaustive).tune(&blac, "k");
        assert!(exh.measurement.cycles <= rand3.measurement.cycles);
        assert_eq!(exh.samples.len(), 10);
    }

    #[test]
    fn guided_search_converges_with_fewer_evaluations_than_exhaustive() {
        let blac = paper::gemv(4, 64);
        let cfg = CompileConfig::full(Microarch::Arm1176);
        let guided = Autotuner::new(cfg).with_strategy(SearchStrategy::Guided).tune(&blac, "k");
        let exh = Autotuner::new(cfg).with_strategy(SearchStrategy::Exhaustive).tune(&blac, "k");
        assert!(guided.samples.len() < exh.samples.len());
        // Hill climbing must never end on a worse point than its start.
        let start_cycles = guided.samples[0].1;
        assert!(guided.measurement.cycles <= start_cycles);
    }

    #[test]
    fn energy_objective_selects_by_energy() {
        let blac = paper::mmm(4, 16, 4);
        let cfg = CompileConfig::full(Microarch::CortexA8);
        let by_energy = Autotuner::new(cfg)
            .with_strategy(SearchStrategy::Exhaustive)
            .with_objective(Objective::Energy)
            .tune(&blac, "k");
        let by_cycles = Autotuner::new(cfg)
            .with_strategy(SearchStrategy::Exhaustive)
            .with_objective(Objective::Cycles)
            .tune(&blac, "k");
        assert!(by_energy.measurement.energy_pj <= by_cycles.measurement.energy_pj);
        assert!(by_cycles.measurement.cycles <= by_energy.measurement.cycles);
        assert!(by_energy.measurement.energy_pj > 0);
    }

    #[test]
    fn tuning_never_loses_to_the_default() {
        let blac = paper::mvm(4, 64);
        let cfg = CompileConfig::full(Microarch::Atom);
        let tuned = Autotuner::new(cfg).with_sample_size(9).tune(&blac, "mvm");
        let default_kernel = compile(&blac, "mvm", &cfg);
        let default_m =
            measure_blac(&blac, &default_kernel, Microarch::Atom, &[0, 0, 0], 3).unwrap();
        assert!(tuned.measurement.cycles <= default_m.cycles);
        assert_eq!(tuned.samples.len(), 9);
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let blac = paper::mmm(4, 8, 4);
        let cfg = CompileConfig::full(Microarch::CortexA9);
        let a = Autotuner::new(cfg).with_sample_size(4).with_seed(7).tune(&blac, "k");
        let b = Autotuner::new(cfg).with_sample_size(4).with_seed(7).tune(&blac, "k");
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.unroll, b.unroll);
    }

    #[test]
    fn small_sample_visits_fewer_points() {
        let blac = paper::axpy(64);
        let cfg = CompileConfig::full(Microarch::CortexA8);
        let t = Autotuner::new(cfg).with_sample_size(2).tune(&blac, "k");
        assert_eq!(t.samples.len(), 2);
    }
}
