//! The autotuning feedback loop (Fig. 2.1, §5.1.5).
//!
//! LGen generates several code versions per BLAC, executes them on the
//! target device, and keeps the fastest. Here the "device" is the
//! `lgen-machine` simulator; the search space is the unrolling/outer-tiling
//! decision (§2.1.2 — outer tile sizes must divide the full-tile count, the
//! "leftovers in at most one level" restriction, which the `Factor`
//! unrolling policy enforces by skipping non-dividing trip counts).
//! The paper uses "random search over the search space with sample size
//! 10"; the sample size is configurable.
//!
//! Because the C-IR schedule is first-class data ([`PassPipeline`]), the
//! search space can optionally extend beyond tile sizes to *pass order*:
//! [`Autotuner::with_pipeline_search`] crosses the unrolling space with a
//! small set of legal schedule variants (fixpoint cleanup, extra
//! copy-propagation rounds, pass-dropped schedules), and the winner records
//! which schedule produced it.
//!
//! Candidate evaluation (compile → validate → measure) is embarrassingly
//! parallel, so it fans out over a scoped worker pool ([`crate::pool`]).
//! Every stage of evaluation is deterministic (the simulator is exact and
//! validation uses fixed seeds), results are collected index-addressed in
//! candidate order, and the reduction keeps the *first* best under a strict
//! `<` comparison — so the winning kernel is byte-identical no matter how
//! many threads ran the search. A shared [`KernelCache`] (optional) dedups
//! compilation across candidates, repeated tunes, and batch jobs.
//!
//! **Fault tolerance.** A search is only as good as its ability to survive
//! bad candidates. Every candidate evaluation is isolated
//! ([`crate::pool::run_outcomes`]): a panicking candidate is contained by
//! `catch_unwind`, a hanging one is abandoned at its per-candidate
//! deadline, and a verifier-rejected one is skipped — each failure is
//! recorded ([`CandidateFailure`], surfaced through [`TunedKernel`] and
//! the cache's `--cache-stats` counters) and the search continues with
//! the survivors. Only an all-candidates-failed search is an error
//! ([`TuneError`]); [`tune`](Autotuner::tune) panics on it,
//! [`try_tune`](Autotuner::try_tune) reports it. Deadlines and the
//! whole-search [`TuneBudget`] are opt-in; without them (the default) the
//! search remains byte-deterministic for every thread count. The
//! env-gated [`FaultPlan`] harness (`LGEN_FAULTS`) injects failures
//! deterministically to keep this degradation path tested end to end.
//!
//! **Model-guided pruning.** With a [`PrunePolicy`] other than `Off`, the
//! tuner first *ranks* every candidate with the static cost predictor
//! (`lgen-analysis` — compile is cheap and memoized; no execution, no
//! trace scheduling) and only simulates the statically best few
//! (successive halving, §6's "heuristics to prune the search space").
//! The model is continuously *audited*: the Spearman rank correlation
//! between predicted and measured scores over the measured set is
//! recorded ([`TunedKernel::rank_correlation`], telemetry), and when it
//! drops below the audit threshold the search widens back toward full
//! measurement — a bad model degrades tuning throughput, never answer
//! quality.

use crate::cache::KernelCache;
use crate::config::CompileConfig;
use crate::exec::{check_kernel, measure_blac, tolerance};
use crate::fault::{corrupt_kernel, FaultKind, FaultPlan};
use crate::pipeline::try_compile;
use crate::pool::{run_outcomes, JobOutcome};
use lgen_analysis::{analyze_kernel, StaticCost};
use lgen_cir::passes::{PassPipeline, UnrollPolicy};
use lgen_cir::{verify_kernel, Kernel, VerifyFailure};
use lgen_ll::Blac;
use lgen_machine::Measurement;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::str::FromStr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What the autotuner minimizes (§6 future work: "introduction of
/// energy-related metrics in the autotuning feedback loop").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Objective {
    /// Fastest kernel (the paper's default).
    Cycles,
    /// Least energy per invocation.
    Energy,
    /// Minimum energy-delay product.
    EnergyDelay,
}

impl Objective {
    fn score(self, m: &Measurement) -> u128 {
        match self {
            Objective::Cycles => m.cycles as u128,
            Objective::Energy => m.energy_pj as u128,
            Objective::EnergyDelay => m.energy_delay(),
        }
    }
}

/// How the search space is explored (§6 future work: random search visits
/// too little of large spaces — "LGen could possibly make use of heuristics
/// to prune the search space and/or direct the search").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum SearchStrategy {
    /// Uniform random sample of the given size (the paper's method,
    /// sample size 10 in §5.1.5).
    Random(usize),
    /// Every candidate (the space is small enough to enumerate).
    Exhaustive,
    /// Greedy hill climbing from the default decision: evaluates the
    /// current point's neighbours in the ordered space and moves while it
    /// improves — fewer evaluations than exhaustive, better coverage than
    /// a small random sample.
    Guided,
}

/// One point of the (possibly pipeline-extended) search space: an
/// unrolling decision plus the schedule to run it under (`None` = the
/// tuner config's own pipeline).
type Candidate = (UnrollPolicy, Option<PassPipeline>);

/// One evaluated candidate: its kernel and measurement.
type Eval = (Arc<Kernel>, Measurement);

/// Per-search evaluation memo: validated-and-measured results keyed by the
/// kernel's allocation identity plus the BLAC's fingerprint. The shared
/// [`KernelCache`]'s compile memo returns the *same* `Arc` for candidates
/// whose unroll decisions collapse to one kernel, so a sweep over N
/// policies with K distinct kernels validates and measures K times, not N.
/// Sound because every evaluation stage is deterministic (the map pins its
/// `Arc`s, so a key can never be reused by a different allocation while
/// the search runs), and value-neutral: a memo hit returns bit-identical
/// results, keeping the tuner's any-thread-count determinism.
type EvalMemo = Mutex<HashMap<(usize, u64), Eval>>;

/// Time limits for a tuning run: both knobs are opt-in (`None` = no
/// limit, the deterministic default).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TuneBudget {
    /// Per-candidate deadline: a candidate still evaluating when it
    /// expires is abandoned and recorded as timed out.
    pub deadline: Option<Duration>,
    /// Whole-search budget: once spent, workers stop claiming candidates;
    /// the unstarted remainder is recorded as timed out and the best
    /// *surviving* kernel wins. (For [`Autotuner::tune_many`] the budget
    /// spans the whole batch.)
    pub total: Option<Duration>,
}

/// How many candidates survive static ranking into full simulation.
///
/// Parsed from the `--prune=` CLI syntax: `off`, `topk:N` (`topk:inf`
/// keeps everything, useful for parity testing), or `frac:F` with
/// `0 < F <= 1`. At least one candidate always survives.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PrunePolicy {
    /// Measure every candidate (the default; the paper's exhaustive or
    /// random search, unchanged).
    Off,
    /// Measure the statically best `N` candidates.
    TopK(usize),
    /// Measure the statically best `ceil(F * n)` of `n` candidates.
    Frac(f64),
}

impl PrunePolicy {
    /// Is this policy a no-op?
    pub fn is_off(self) -> bool {
        matches!(self, PrunePolicy::Off)
    }

    /// How many of `n` candidates survive into measurement.
    pub fn survivors(self, n: usize) -> usize {
        match self {
            PrunePolicy::Off => n,
            PrunePolicy::TopK(k) => k.clamp(1, n.max(1)).min(n),
            PrunePolicy::Frac(f) => {
                let k = (f * n as f64).ceil() as usize;
                k.clamp(1, n.max(1)).min(n)
            }
        }
    }
}

impl FromStr for PrunePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "off" {
            return Ok(PrunePolicy::Off);
        }
        if let Some(k) = s.strip_prefix("topk:") {
            if k == "inf" || k == "∞" {
                return Ok(PrunePolicy::TopK(usize::MAX));
            }
            return match k.parse::<usize>() {
                Ok(k) if k >= 1 => Ok(PrunePolicy::TopK(k)),
                _ => Err(format!(
                    "invalid top-k count '{k}' (want an integer >= 1 or 'inf')"
                )),
            };
        }
        if let Some(fr) = s.strip_prefix("frac:") {
            return match fr.parse::<f64>() {
                Ok(f) if f > 0.0 && f <= 1.0 => Ok(PrunePolicy::Frac(f)),
                _ => Err(format!("invalid fraction '{fr}' (want 0 < F <= 1)")),
            };
        }
        Err(format!(
            "unknown prune policy '{s}' (want off, topk:N, or frac:F)"
        ))
    }
}

impl fmt::Display for PrunePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrunePolicy::Off => write!(f, "off"),
            PrunePolicy::TopK(k) if *k == usize::MAX => write!(f, "topk:inf"),
            PrunePolicy::TopK(k) => write!(f, "topk:{k}"),
            PrunePolicy::Frac(fr) => write!(f, "frac:{fr}"),
        }
    }
}

/// Why one candidate dropped out of the search.
#[derive(Clone, Debug)]
pub enum FailReason {
    /// Static verification rejected its kernel (corrupt C-IR).
    Rejected(VerifyFailure),
    /// Its evaluation panicked (contained by the worker pool).
    Panicked(String),
    /// It exceeded the per-candidate deadline, or was never started
    /// because the search budget was already spent.
    TimedOut,
}

impl fmt::Display for FailReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailReason::Rejected(v) => write!(f, "verify-rejected: {v}"),
            FailReason::Panicked(msg) => write!(f, "panicked: {msg}"),
            FailReason::TimedOut => write!(f, "timed out"),
        }
    }
}

/// A candidate the search survived: which point failed and why.
#[derive(Clone, Debug)]
pub struct CandidateFailure {
    /// The candidate's unrolling decision.
    pub unroll: UnrollPolicy,
    /// Its schedule, when pass-order search assigned one.
    pub pipeline: Option<PassPipeline>,
    /// What went wrong.
    pub reason: FailReason,
}

impl fmt::Display for CandidateFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "candidate {:?} {}", self.unroll, self.reason)
    }
}

/// The search could not produce any kernel: every candidate failed.
#[derive(Clone, Debug)]
pub enum TuneError {
    /// No candidate survived evaluation; the failures say why.
    AllCandidatesFailed {
        /// How many candidates the strategy attempted.
        attempted: usize,
        /// Every failure, in candidate order.
        failures: Vec<CandidateFailure>,
    },
}

impl TuneError {
    /// The per-candidate failures behind the error.
    pub fn failures(&self) -> &[CandidateFailure] {
        match self {
            TuneError::AllCandidatesFailed { failures, .. } => failures,
        }
    }
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let TuneError::AllCandidatesFailed {
            attempted,
            failures,
        } = self;
        let (r, p, t) = count_reasons(failures);
        write!(
            f,
            "all {attempted} tuning candidate(s) failed \
             ({r} verify-rejected, {p} panicked, {t} timed out)"
        )?;
        if let Some(first) = failures.first() {
            write!(f, "; first: {first}")?;
        }
        Ok(())
    }
}

impl std::error::Error for TuneError {}

/// Counts `(rejected, panicked, timed_out)` over a failure list.
fn count_reasons(failures: &[CandidateFailure]) -> (usize, usize, usize) {
    let mut counts = (0, 0, 0);
    for fail in failures {
        match fail.reason {
            FailReason::Rejected(_) => counts.0 += 1,
            FailReason::Panicked(_) => counts.1 += 1,
            FailReason::TimedOut => counts.2 += 1,
        }
    }
    counts
}

/// Result of an autotuning run.
#[derive(Clone, Debug)]
pub struct TunedKernel {
    /// The fastest validated kernel.
    pub kernel: Kernel,
    /// Its measurement.
    pub measurement: Measurement,
    /// The winning unroll decision.
    pub unroll: UnrollPolicy,
    /// The schedule that produced the winner (the config's own pipeline
    /// unless pass-order search found a better one).
    pub pipeline: PassPipeline,
    /// `(candidate, median cycles)` for every sampled point (with
    /// pass-order search, one entry per `(unroll, pipeline)` pair).
    /// Failed candidates are excluded — see [`failures`](Self::failures).
    pub samples: Vec<(UnrollPolicy, u64)>,
    /// Candidates excluded because they failed static verification
    /// (`cfg.verify` enabled) — never measured, never eligible to win.
    pub rejected: usize,
    /// Every candidate the search survived, with its reason — the
    /// graceful-degradation record ([`rejected`](Self::rejected) counts
    /// the `Rejected` subset).
    pub failures: Vec<CandidateFailure>,
    /// Candidates the static cost model pruned away (ranked too low to be
    /// worth simulating). Zero unless a [`PrunePolicy`] was set.
    pub pruned: usize,
    /// Spearman rank correlation between the static model's scores and
    /// the measured objective over the candidates that *were* measured.
    /// `None` when fewer than two candidates were measured or either
    /// ranking is constant — the model-audit signal behind
    /// graceful widening.
    pub rank_correlation: Option<f64>,
}

impl TunedKernel {
    /// Candidates whose evaluation panicked.
    pub fn panicked(&self) -> usize {
        count_reasons(&self.failures).1
    }

    /// Candidates abandoned at a deadline or skipped by the budget.
    pub fn timed_out(&self) -> usize {
        count_reasons(&self.failures).2
    }

    /// A one-line degradation summary, or `None` if nothing failed.
    pub fn failure_summary(&self) -> Option<String> {
        if self.failures.is_empty() {
            return None;
        }
        let (r, p, t) = count_reasons(&self.failures);
        Some(format!(
            "{} candidate(s) failed: {r} verify-rejected, {p} panicked, {t} timed out",
            self.failures.len()
        ))
    }
}

/// Autotuner over the tiling/unrolling space, optionally crossed with
/// pass-order variants.
#[derive(Clone, Debug)]
pub struct Autotuner {
    cfg: CompileConfig,
    strategy: SearchStrategy,
    objective: Objective,
    reps: usize,
    seed: u64,
    threads: usize,
    cache: Option<Arc<KernelCache>>,
    /// Pass schedules to search over; empty = unrolling-only search under
    /// the config's own pipeline.
    pipelines: Vec<PassPipeline>,
    budget: TuneBudget,
    faults: FaultPlan,
    prune: PrunePolicy,
    /// Minimum predicted-vs-measured Spearman correlation before the
    /// pruned search widens toward full measurement.
    audit_threshold: f64,
}

impl Autotuner {
    /// Autotuner with the paper's defaults: random search, sample size 10,
    /// minimizing cycles. Runs single-threaded and uncached; see
    /// [`Self::with_threads`] and [`Self::with_cache`]. Fault injection is
    /// read from `LGEN_FAULTS` (none when unset), like `LGEN_VERIFY`.
    pub fn new(cfg: CompileConfig) -> Self {
        Autotuner {
            cfg,
            strategy: SearchStrategy::Random(10),
            objective: Objective::Cycles,
            reps: 3,
            seed: 0x5EED,
            threads: 1,
            cache: None,
            pipelines: Vec::new(),
            budget: TuneBudget::default(),
            faults: FaultPlan::from_env(),
            prune: PrunePolicy::Off,
            audit_threshold: 0.5,
        }
    }

    /// Sets the model-guided pruning policy: rank all candidates with the
    /// static cost predictor, simulate only the best
    /// [`survivors`](PrunePolicy::survivors), and widen toward full
    /// measurement whenever the predicted-vs-measured rank correlation
    /// drops below the audit threshold.
    #[must_use]
    pub fn with_prune(mut self, prune: PrunePolicy) -> Self {
        self.prune = prune;
        self
    }

    /// Sets the Spearman-correlation floor below which a pruned search
    /// stops trusting the static model and widens (default `0.5`).
    #[must_use]
    pub fn with_audit_threshold(mut self, threshold: f64) -> Self {
        self.audit_threshold = threshold;
        self
    }

    /// Sets the worker-pool width for candidate evaluation (`0` = one per
    /// available core). The tuning result is identical for every width.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Shares a kernel cache: candidates already compiled (by earlier
    /// tunes, batch jobs, or plain [`compile`](crate::compile) calls
    /// through the cache) skip the pipeline.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<KernelCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Overrides the random-search sample size.
    #[must_use]
    pub fn with_sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.strategy = SearchStrategy::Random(n);
        self
    }

    /// Overrides the search strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides the tuning objective.
    #[must_use]
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Overrides the RNG seed (the search is deterministic per seed).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets a per-candidate deadline: a candidate still compiling,
    /// validating, or measuring when it expires is abandoned and counted
    /// as timed out instead of stalling the search.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.budget.deadline = Some(deadline);
        self
    }

    /// Sets a whole-search time budget: once spent, no further candidate
    /// is started and the best kernel found so far wins.
    #[must_use]
    pub fn with_budget(mut self, total: Duration) -> Self {
        self.budget.total = Some(total);
        self
    }

    /// Sets both time limits at once.
    #[must_use]
    pub fn with_tune_budget(mut self, budget: TuneBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Overrides the fault-injection plan (normally read from
    /// `LGEN_FAULTS`). Fault indices address the candidate list the
    /// strategy evaluates: for `Exhaustive`/`Random` the sampled list in
    /// order; for `Guided` (and per-BLAC entries of
    /// [`tune_many`](Self::tune_many)) the position in
    /// [`search_space`](Self::search_space).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Enables pass-order search: the unrolling space is crossed with
    /// [`Self::pipeline_space`] built from the config's own schedule, and
    /// each candidate compiles under its own [`PassPipeline`].
    #[must_use]
    pub fn with_pipeline_search(mut self) -> Self {
        self.pipelines = Self::pipeline_space(&self.cfg.pipeline);
        self
    }

    /// Pass-order search over an explicit list of schedules (each must
    /// already have been validated by [`PassPipeline::parse`]).
    #[must_use]
    pub fn with_pipelines(mut self, pipelines: Vec<PassPipeline>) -> Self {
        self.pipelines = pipelines;
        self
    }

    /// The candidate unrolling decisions, ordered: no unrolling, then full
    /// unrolling by rising trip-count threshold, then factor unrolling by
    /// rising factor. Guided search climbs along this order.
    pub fn search_space() -> Vec<UnrollPolicy> {
        let mut space = vec![UnrollPolicy::None];
        space.extend(
            [2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128]
                .map(|max_trip| UnrollPolicy::Full { max_trip }),
        );
        space.extend([2, 3, 4, 6, 8].map(|factor| UnrollPolicy::Factor { factor }));
        space
    }

    /// Legal schedule variants derived from a base pipeline: the base
    /// itself, fixpoint cleanup (`repeat(copyprop,dce)`), an extra
    /// copy-propagation round before scalar replacement, a double cleanup
    /// tail, and a scalar-replacement-dropped schedule. Variants keep the
    /// base's `align` decision (it changes semantics-visible alignment
    /// assumptions, not just code shape), and duplicates of the base are
    /// removed.
    pub fn pipeline_space(base: &PassPipeline) -> Vec<PassPipeline> {
        let tail = if base.contains("align") { ",align" } else { "" };
        let specs = [
            format!("unroll,scalrep,repeat(copyprop,dce){tail}"),
            format!("unroll,copyprop,scalrep,copyprop,dce{tail}"),
            format!("unroll,scalrep,copyprop,dce,copyprop,dce{tail}"),
            format!("unroll,copyprop,dce{tail}"),
        ];
        let mut space = vec![base.clone()];
        for spec in specs {
            let p = PassPipeline::parse(&spec).expect("pipeline_space specs are legal");
            if !space.contains(&p) {
                space.push(p);
            }
        }
        space
    }

    /// The candidate list the configured strategy will evaluate (the whole
    /// space for `Exhaustive`, a seeded shuffle prefix for `Random`). With
    /// pass-order search on, the unrolling space is crossed with the
    /// schedule space.
    fn candidates(&self) -> Vec<Candidate> {
        let unrolls = Self::search_space();
        let mut space: Vec<Candidate> = if self.pipelines.is_empty() {
            unrolls.into_iter().map(|u| (u, None)).collect()
        } else {
            unrolls
                .into_iter()
                .flat_map(|u| self.pipelines.iter().map(move |p| (u, Some(p.clone()))))
                .collect()
        };
        match self.strategy {
            SearchStrategy::Exhaustive | SearchStrategy::Guided => space,
            SearchStrategy::Random(sample_size) => {
                let mut rng = StdRng::seed_from_u64(self.seed);
                space.shuffle(&mut rng);
                space.truncate(sample_size);
                space
            }
        }
    }

    /// The config a candidate compiles under.
    fn candidate_cfg(&self, candidate: &Candidate) -> CompileConfig {
        let cfg = self.cfg.clone().with_unroll(candidate.0);
        match &candidate.1 {
            Some(p) => cfg.with_passes(p.clone()),
            None => cfg,
        }
    }

    /// Evaluates one candidate: compile (through the shared cache when one
    /// is attached), statically verify when `cfg.verify` is enabled,
    /// validate against the naive reference (§5.1.4), measure. Fully
    /// deterministic: safe to run from any worker thread. Returns `Err`
    /// when the candidate fails verification — the tuner skips it instead
    /// of measuring garbage.
    ///
    /// `index` addresses the fault plan; `deadline` (set by the isolating
    /// pool) is checked cooperatively so an already-abandoned evaluation
    /// stops before doing cacheable work.
    ///
    /// # Panics
    ///
    /// Panics on an injected panic fault, an expired deadline, or a
    /// candidate that fails numeric validation — all contained by
    /// [`crate::pool::run_outcomes`] when called from the tuner.
    fn evaluate(
        &self,
        blac: &Blac,
        name: &str,
        index: usize,
        candidate: &Candidate,
        deadline: Option<Instant>,
        memo: &EvalMemo,
    ) -> Result<Eval, VerifyFailure> {
        let mut span = lgen_telemetry::span("candidate");
        if span.is_recording() {
            span.attr("kernel", name);
            span.attr("index", index);
            span.attr("unroll", format!("{:?}", candidate.0));
            if let Some(p) = &candidate.1 {
                span.attr("pipeline", p.to_spec());
            }
        }
        lgen_telemetry::metric_counter!("lgen.tune.candidates").inc();
        // Outcome tagging: `ok`/`rejected` on return; a panicking or
        // deadline-abandoned candidate unwinds through the guard, which
        // marks the span `panicked=true` on drop.
        let result = self.evaluate_body(blac, name, index, candidate, deadline, memo, &mut span);
        if span.is_recording() {
            span.attr("outcome", if result.is_ok() { "ok" } else { "rejected" });
        }
        result
    }

    /// The compile → verify → validate → measure chain behind the
    /// telemetry shell of [`evaluate`](Self::evaluate).
    #[allow(clippy::too_many_arguments)]
    fn evaluate_body(
        &self,
        blac: &Blac,
        name: &str,
        index: usize,
        candidate: &Candidate,
        deadline: Option<Instant>,
        memo: &EvalMemo,
        span: &mut lgen_telemetry::SpanGuard<'_>,
    ) -> Result<Eval, VerifyFailure> {
        let mut corrupt = false;
        match self.faults.kind(index) {
            Some(FaultKind::Panic) => panic!("injected fault: candidate {index} panicked"),
            Some(FaultKind::Hang(delay)) => std::thread::sleep(delay),
            Some(FaultKind::CorruptIr) => corrupt = true,
            None => {}
        }
        let expired = || deadline.is_some_and(|d| Instant::now() >= d);
        if expired() {
            // The pool already recorded this candidate as timed out; bail
            // before compiling (and caching) work nobody will collect.
            panic!("candidate {index} abandoned at its deadline");
        }
        let isa = self.cfg.arch.vector_isa();
        let offsets = vec![0usize; blac.operands.len()];
        let cfg = self.candidate_cfg(candidate);
        let kernel = if corrupt {
            // Injected corrupt C-IR compiles *outside* the shared cache:
            // a corrupt kernel must never be able to poison it.
            let mut k = try_compile(blac, name, &cfg)?;
            corrupt_kernel(&mut k);
            Arc::new(k)
        } else {
            match &self.cache {
                Some(cache) => {
                    let (kernel, hit) = cache.try_get_or_compile_tagged(blac, name, &cfg)?;
                    if span.is_recording() {
                        span.attr("cache", if hit { "hit" } else { "miss" });
                    }
                    kernel
                }
                None => Arc::new(try_compile(blac, name, &cfg)?),
            }
        };
        // A candidate whose compile collapsed to an already-evaluated
        // kernel (same `Arc` via the cache's compile memo) reuses that
        // evaluation wholesale — verify, numeric validation, and
        // measurement are all deterministic functions of (BLAC, kernel),
        // and only fully successful evaluations are memoized.
        let memo_key = (Arc::as_ptr(&kernel) as usize, blac.fingerprint());
        if let Some(eval) = memo.lock().get(&memo_key).cloned() {
            if span.is_recording() {
                span.attr("eval", "memo");
            }
            return Ok(eval);
        }
        // Re-check cache-served kernels too: a seeded/stale entry must not
        // slip past the verification gate just because it skipped the
        // pipeline's boundary checks.
        if cfg.verify.is_enabled() || corrupt {
            let diagnostics = verify_kernel(&kernel);
            if !diagnostics.is_empty() {
                if let Some(cache) = &self.cache {
                    cache.record_verify_reject();
                }
                return Err(VerifyFailure {
                    pass: "autotune-candidate",
                    diagnostics,
                });
            }
        }
        let diff = check_kernel(blac, &kernel, isa, 11)
            .unwrap_or_else(|e| panic!("candidate failed to execute: {e}"));
        assert!(
            diff < tolerance(blac.flops()),
            "candidate {:?} numerically wrong: {diff}",
            candidate.0
        );
        if expired() {
            panic!("candidate {index} abandoned at its deadline");
        }
        let m =
            measure_blac(blac, &kernel, self.cfg.arch, &offsets, self.reps).expect("measurement");
        if !corrupt {
            memo.lock().insert(memo_key, (kernel.clone(), m));
        }
        Ok((kernel, m))
    }

    /// Evaluates `(fault index, candidate)` pairs on the isolating worker
    /// pool: panics contained, per-candidate deadline enforced, claims
    /// stopped once the budget (counted from `start`) is spent.
    fn eval_outcomes(
        &self,
        blac: &Blac,
        name: &str,
        indexed: Vec<(usize, Candidate)>,
        start: Instant,
        memo: &Arc<EvalMemo>,
    ) -> Vec<JobOutcome<Eval>> {
        let n = indexed.len();
        let ctx = Arc::new(self.clone());
        let blac = Arc::new(blac.clone());
        let name: Arc<str> = Arc::from(name);
        let indexed = Arc::new(indexed);
        let memo = memo.clone();
        let total = self.budget.total;
        let stop = move || total.is_some_and(|b| start.elapsed() >= b);
        run_outcomes(
            n,
            self.threads,
            self.budget.deadline,
            &stop,
            Arc::new(move |i, deadline| {
                let (index, candidate) = &indexed[i];
                ctx.evaluate(&blac, &name, *index, candidate, deadline, &memo)
            }),
        )
    }

    /// Records one failed candidate: bumps the attached cache's counters
    /// (verify rejections were already counted at the cache layer) and
    /// appends the reason to `failures`.
    fn record_failure(
        &self,
        failures: &mut Vec<CandidateFailure>,
        candidate: &Candidate,
        reason: FailReason,
    ) {
        match &self.cache {
            // The cache's counters mirror into the metrics registry.
            Some(cache) => match reason {
                FailReason::Panicked(_) => cache.record_tune_panic(),
                FailReason::TimedOut => cache.record_tune_timeout(),
                FailReason::Rejected(_) => {}
            },
            None => match reason {
                FailReason::Panicked(_) => {
                    lgen_telemetry::metric_counter!("lgen.tune.panics").inc()
                }
                FailReason::TimedOut => lgen_telemetry::metric_counter!("lgen.tune.timeouts").inc(),
                FailReason::Rejected(_) => {}
            },
        }
        failures.push(CandidateFailure {
            unroll: candidate.0,
            pipeline: candidate.1.clone(),
            reason,
        });
    }

    /// Reduces evaluated candidates to the winner, scanning in candidate
    /// order with a strict `<`: the first best wins, independent of which
    /// worker finished when. Failed candidates are recorded and excluded
    /// from `samples`.
    ///
    /// # Errors
    ///
    /// [`TuneError::AllCandidatesFailed`] if no candidate survived.
    fn reduce(
        &self,
        candidates: &[Candidate],
        outcomes: Vec<JobOutcome<Eval>>,
    ) -> Result<TunedKernel, TuneError> {
        self.reduce_slots(candidates, outcomes.into_iter().map(Some).collect(), None)
    }

    /// [`reduce`](Self::reduce) over a sparse outcome list: a `None` slot
    /// is a candidate the static model pruned away — never measured, not
    /// a failure, and never eligible to win.
    fn reduce_slots(
        &self,
        candidates: &[Candidate],
        slots: Vec<Option<JobOutcome<Eval>>>,
        rank_correlation: Option<f64>,
    ) -> Result<TunedKernel, TuneError> {
        let mut evaluated: Vec<(&Candidate, Arc<Kernel>, Measurement)> = Vec::new();
        let mut failures = Vec::new();
        let mut pruned = 0usize;
        let mut attempted = 0usize;
        for (c, slot) in candidates.iter().zip(slots) {
            let Some(outcome) = slot else {
                pruned += 1;
                continue;
            };
            attempted += 1;
            match outcome {
                JobOutcome::Ok((k, m)) => evaluated.push((c, k, m)),
                JobOutcome::Rejected(v) => {
                    self.record_failure(&mut failures, c, FailReason::Rejected(v))
                }
                JobOutcome::Panicked(msg) => {
                    self.record_failure(&mut failures, c, FailReason::Panicked(msg))
                }
                JobOutcome::TimedOut => self.record_failure(&mut failures, c, FailReason::TimedOut),
            }
        }
        if evaluated.is_empty() {
            return Err(TuneError::AllCandidatesFailed {
                attempted,
                failures,
            });
        }
        let samples: Vec<(UnrollPolicy, u64)> =
            evaluated.iter().map(|(c, _, m)| (c.0, m.cycles)).collect();
        let mut best = 0;
        for i in 1..evaluated.len() {
            if self.objective.score(&evaluated[i].2) < self.objective.score(&evaluated[best].2) {
                best = i;
            }
        }
        let (candidate, kernel, measurement) = &evaluated[best];
        Ok(TunedKernel {
            kernel: (**kernel).clone(),
            measurement: *measurement,
            unroll: candidate.0,
            pipeline: candidate
                .1
                .clone()
                .unwrap_or_else(|| self.cfg.pipeline.clone()),
            samples,
            rejected: count_reasons(&failures).0,
            failures,
            pruned,
            rank_correlation,
        })
    }

    /// The static analogue of [`Objective::score`]: ranks candidates by
    /// the model's [`StaticCost`] without executing anything.
    fn static_score(&self, cost: &StaticCost) -> u128 {
        match self.objective {
            Objective::Cycles => cost.predicted_cycles() as u128,
            Objective::Energy => cost.energy_pj as u128,
            Objective::EnergyDelay => cost.energy_delay(),
        }
    }

    /// Statically scores every candidate: compile (through the shared
    /// cache when one is attached — the measurement pass then rides the
    /// same memoized kernels) and run the `lgen-analysis` predictor.
    /// A candidate whose compile fails or whose analysis panics scores
    /// `0` — the *best* score — so it is always measured and its real
    /// failure recorded by the normal evaluation path, keeping parity
    /// with the unpruned search.
    fn static_scores(&self, blac: &Blac, name: &str, candidates: &[Candidate]) -> Vec<u128> {
        candidates
            .iter()
            .map(|candidate| {
                let cfg = self.candidate_cfg(candidate);
                catch_unwind(AssertUnwindSafe(|| {
                    let kernel = match &self.cache {
                        Some(cache) => cache.try_get_or_compile_tagged(blac, name, &cfg).ok()?.0,
                        None => Arc::new(try_compile(blac, name, &cfg).ok()?),
                    };
                    Some(self.static_score(&analyze_kernel(&kernel, self.cfg.arch)))
                }))
                .ok()
                .flatten()
                .unwrap_or(0)
            })
            .collect()
    }

    /// Model-guided search (§6: "heuristics to prune the search space"):
    /// rank every candidate with the static predictor, simulate only the
    /// top [`PrunePolicy::survivors`], and audit the model by Spearman-
    /// correlating predictions against measurements. While the audit is
    /// unhealthy (correlation below the threshold) and budget remains,
    /// the measured set widens — doubling — toward full measurement, so a
    /// bad model costs tuning throughput, never the winner's quality.
    ///
    /// Deterministic for any thread count: the ranking is a pure function
    /// of the candidates, each tranche is evaluated in ascending candidate
    /// order, and the reduction scans in candidate order. `topk:inf` puts
    /// everything in the first tranche, making the result byte-identical
    /// to the unpruned search.
    fn tune_pruned(
        &self,
        blac: &Blac,
        name: &str,
        candidates: &[Candidate],
        start: Instant,
        memo: &Arc<EvalMemo>,
    ) -> Result<TunedKernel, TuneError> {
        let n = candidates.len();
        let scores = self.static_scores(blac, name, candidates);
        // Stable static ranking: model score first, candidate index as the
        // deterministic tie-break.
        let mut ranked: Vec<usize> = (0..n).collect();
        ranked.sort_by_key(|&i| (scores[i], i));
        let mut slots: Vec<Option<JobOutcome<Eval>>> = (0..n).map(|_| None).collect();
        let mut taken = 0usize;
        let mut tranche = self.prune.survivors(n);
        let budget_spent = || self.budget.total.is_some_and(|b| start.elapsed() >= b);
        let correlation = loop {
            let mut batch: Vec<usize> = ranked[taken..(taken + tranche).min(n)].to_vec();
            taken += batch.len();
            batch.sort_unstable();
            let outcomes = self.eval_outcomes(
                blac,
                name,
                batch.iter().map(|&i| (i, candidates[i].clone())).collect(),
                start,
                memo,
            );
            for (&i, outcome) in batch.iter().zip(outcomes) {
                slots[i] = Some(outcome);
            }
            let measured: Vec<(u128, u128)> = slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match s {
                    Some(JobOutcome::Ok((_, m))) => Some((scores[i], self.objective.score(m))),
                    _ => None,
                })
                .collect();
            let rho = spearman(
                &measured.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
                &measured.iter().map(|&(_, m)| m).collect::<Vec<_>>(),
            );
            // A degenerate audit (one survivor, constant ranks) cannot
            // contradict the model, so it counts as healthy; an empty
            // measured set (every survivor failed) cannot pick a winner,
            // so it widens.
            let healthy = !measured.is_empty() && rho.is_none_or(|r| r >= self.audit_threshold);
            if taken >= n || healthy || budget_spent() {
                break rho;
            }
            tranche = tranche.saturating_mul(2);
        };
        let pruned = slots.iter().filter(|s| s.is_none()).count();
        match &self.cache {
            Some(cache) => cache.record_tune_pruned(pruned as u64),
            None => {
                lgen_telemetry::metric_counter!("lgen.tune.candidates_pruned").add(pruned as u64)
            }
        }
        if let Some(rho) = correlation {
            // Gauges are integral; store the audit in milli-units (ρ·1000).
            lgen_telemetry::gauge("lgen.tune.rank_correlation_milli").set((rho * 1000.0) as i64);
        }
        self.reduce_slots(candidates, slots, correlation)
    }

    /// Tunes `blac` per the configured strategy and objective, returning
    /// the best surviving kernel. Candidates are evaluated on the
    /// isolating worker pool; without a deadline/budget the result is
    /// identical for any thread count.
    ///
    /// # Errors
    ///
    /// [`TuneError::AllCandidatesFailed`] if every candidate panicked,
    /// timed out, or was verify-rejected.
    pub fn try_tune(&self, blac: &Blac, name: &str) -> Result<TunedKernel, TuneError> {
        let t = Instant::now();
        let mut span = lgen_telemetry::span("tune");
        if span.is_recording() {
            span.attr("kernel", name);
        }
        let result = if self.strategy == SearchStrategy::Guided {
            self.tune_guided_over_pipelines(blac, name)
        } else {
            let candidates = self.candidates();
            let memo = Arc::new(EvalMemo::default());
            if self.prune.is_off() {
                let indexed = candidates.iter().cloned().enumerate().collect();
                let outcomes = self.eval_outcomes(blac, name, indexed, Instant::now(), &memo);
                self.reduce(&candidates, outcomes)
            } else {
                self.tune_pruned(blac, name, &candidates, Instant::now(), &memo)
            }
        };
        lgen_telemetry::metric_histogram!("lgen.tune.wall_us")
            .record(t.elapsed().as_micros() as u64);
        if span.is_recording() {
            span.attr("ok", result.is_ok());
        }
        result
    }

    /// [`try_tune`](Self::try_tune) that panics when every candidate
    /// failed (historically the only failure mode surfaced).
    ///
    /// # Panics
    ///
    /// Panics on [`TuneError`].
    pub fn tune(&self, blac: &Blac, name: &str) -> TunedKernel {
        self.try_tune(blac, name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Tunes a batch of BLACs over one worker pool (and one cache, when
    /// attached). For `Exhaustive`/`Random` the whole
    /// `(BLAC, candidate)` grid is flattened into a single job list so the
    /// pool stays saturated across kernels; `Guided` is inherently
    /// sequential per BLAC and falls back to per-BLAC tuning. Results are
    /// in job order and identical to calling [`Self::tune`] per entry
    /// (fault indices address each BLAC's candidate list, and the search
    /// budget spans the whole batch).
    ///
    /// # Errors
    ///
    /// One [`TuneError`] per entry whose candidates all failed; surviving
    /// entries still tune.
    pub fn try_tune_many(&self, jobs: &[(Blac, String)]) -> Vec<Result<TunedKernel, TuneError>> {
        // Guided search is inherently sequential per BLAC; pruned search
        // ranks and widens per BLAC — both fall back to per-entry tuning.
        if self.strategy == SearchStrategy::Guided || !self.prune.is_off() {
            return jobs
                .iter()
                .map(|(blac, name)| self.try_tune(blac, name))
                .collect();
        }
        let start = Instant::now();
        let mut span = lgen_telemetry::span("tune_many");
        if span.is_recording() {
            span.attr("jobs", jobs.len());
        }
        let candidates = self.candidates();
        let per = candidates.len();
        let n = jobs.len() * per;
        let ctx = Arc::new(self.clone());
        let jobs_arc = Arc::new(jobs.to_vec());
        let cands = Arc::new(candidates.clone());
        let memo = Arc::new(EvalMemo::default());
        let total = self.budget.total;
        let stop = move || total.is_some_and(|b| start.elapsed() >= b);
        let outcomes = run_outcomes(
            n,
            self.threads,
            self.budget.deadline,
            &stop,
            Arc::new(move |i, deadline| {
                let job: &(Blac, String) = &jobs_arc[i / per];
                ctx.evaluate(&job.0, &job.1, i % per, &cands[i % per], deadline, &memo)
            }),
        );
        let mut outcomes = outcomes.into_iter();
        let results: Vec<Result<TunedKernel, TuneError>> = jobs
            .iter()
            .map(|_| self.reduce(&candidates, outcomes.by_ref().take(per).collect()))
            .collect();
        lgen_telemetry::metric_histogram!("lgen.tune.wall_us")
            .record(start.elapsed().as_micros() as u64);
        drop(span);
        results
    }

    /// [`try_tune_many`](Self::try_tune_many) that panics if any entry
    /// lost every candidate.
    ///
    /// # Panics
    ///
    /// Panics on the first [`TuneError`].
    pub fn tune_many(&self, jobs: &[(Blac, String)]) -> Vec<TunedKernel> {
        self.try_tune_many(jobs)
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
            .collect()
    }

    /// Guided search across schedules: one hill climb over the unrolling
    /// space per candidate pipeline (just the config's own when pass-order
    /// search is off), keeping the first best under a strict `<`. The
    /// winner aggregates the failures of every climb.
    fn tune_guided_over_pipelines(
        &self,
        blac: &Blac,
        name: &str,
    ) -> Result<TunedKernel, TuneError> {
        let start = Instant::now();
        let memo = Arc::new(EvalMemo::default());
        if self.pipelines.is_empty() {
            return self.tune_guided(blac, name, &Self::search_space(), None, start, &memo);
        }
        let mut best: Option<TunedKernel> = None;
        let mut all_failures = Vec::new();
        let mut attempted = 0;
        for p in &self.pipelines {
            match self.tune_guided(blac, name, &Self::search_space(), Some(p), start, &memo) {
                Ok(t) => {
                    all_failures.extend(t.failures.iter().cloned());
                    if best
                        .as_ref()
                        .is_none_or(|b| t.measurement.cycles < b.measurement.cycles)
                    {
                        best = Some(t);
                    }
                }
                Err(TuneError::AllCandidatesFailed {
                    attempted: a,
                    failures,
                }) => {
                    attempted += a;
                    all_failures.extend(failures);
                }
            }
        }
        match best {
            Some(mut t) => {
                t.failures = all_failures;
                t.rejected = count_reasons(&t.failures).0;
                Ok(t)
            }
            None => Err(TuneError::AllCandidatesFailed {
                attempted,
                failures: all_failures,
            }),
        }
    }

    /// Guided search: probe a few structurally diverse seeds (no unrolling,
    /// a mid-size full unroll, the maximal full unroll, the maximal factor
    /// unroll), then hill-climb from the best seed. The seed probes run on
    /// the worker pool; the climb itself is inherently sequential but
    /// evaluates both neighbours of the current point in parallel. Fault
    /// indices address positions in `space`.
    fn tune_guided(
        &self,
        blac: &Blac,
        name: &str,
        space: &[UnrollPolicy],
        pipeline: Option<&PassPipeline>,
        start: Instant,
        memo: &Arc<EvalMemo>,
    ) -> Result<TunedKernel, TuneError> {
        let cand = |u: UnrollPolicy| (u, pipeline.cloned());
        let mut samples = Vec::new();
        let mut failures = Vec::new();
        let mut attempted = 0usize;
        let mut evaluated = vec![false; space.len()];
        // Seed indices are derived from the space's structure so the probe
        // set stays meaningful if the space grows.
        let full_at = |pick: fn(&[usize]) -> usize| {
            let fulls: Vec<usize> = (0..space.len())
                .filter(|&i| matches!(space[i], UnrollPolicy::Full { .. }))
                .collect();
            pick(&fulls)
        };
        let mut seeds = vec![
            0,                               // UnrollPolicy::None
            full_at(|f| f[f.len() / 2]),     // a mid-size full unroll
            full_at(|f| *f.last().unwrap()), // the largest full unroll
            space.len() - 1,                 // the largest factor unroll
        ];
        seeds.dedup();
        for &si in &seeds {
            evaluated[si] = true;
        }
        attempted += seeds.len();
        let probes = self.eval_outcomes(
            blac,
            name,
            seeds.iter().map(|&si| (si, cand(space[si]))).collect(),
            start,
            memo,
        );
        let mut idx = seeds[0];
        let mut best: Option<Eval> = None;
        for (&si, probe) in seeds.iter().zip(probes) {
            let (k, m) = match outcome_to_result(probe) {
                Ok(r) => r,
                Err(reason) => {
                    self.record_failure(&mut failures, &cand(space[si]), reason);
                    continue;
                }
            };
            samples.push((space[si], m.cycles));
            if best
                .as_ref()
                .is_none_or(|(_, bm)| self.objective.score(&m) < self.objective.score(bm))
            {
                best = Some((k, m));
                idx = si;
            }
        }
        let Some((mut best_k, mut best_m)) = best else {
            return Err(TuneError::AllCandidatesFailed {
                attempted,
                failures,
            });
        };
        loop {
            let neighbours: Vec<usize> = [idx.wrapping_sub(1), idx + 1]
                .into_iter()
                .filter(|&n| n < space.len() && !evaluated[n])
                .collect();
            for &n in &neighbours {
                evaluated[n] = true;
            }
            let evals = self.eval_outcomes(
                blac,
                name,
                neighbours.iter().map(|&n| (n, cand(space[n]))).collect(),
                start,
                memo,
            );
            let mut improved = false;
            for (&next, eval) in neighbours.iter().zip(evals) {
                let (k, m) = match outcome_to_result(eval) {
                    Ok(r) => r,
                    Err(reason) => {
                        self.record_failure(&mut failures, &cand(space[next]), reason);
                        continue;
                    }
                };
                samples.push((space[next], m.cycles));
                if self.objective.score(&m) < self.objective.score(&best_m) {
                    best_k = k;
                    best_m = m;
                    idx = next;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
        let unroll = samples
            .iter()
            .find(|(_, c)| *c == best_m.cycles)
            .map(|(u, _)| *u)
            .expect("best was sampled");
        Ok(TunedKernel {
            kernel: (*best_k).clone(),
            measurement: best_m,
            unroll,
            pipeline: pipeline
                .cloned()
                .unwrap_or_else(|| self.cfg.pipeline.clone()),
            samples,
            rejected: count_reasons(&failures).0,
            failures,
            pruned: 0,
            rank_correlation: None,
        })
    }
}

/// Splits a [`JobOutcome`] into success or a [`FailReason`].
fn outcome_to_result(outcome: JobOutcome<Eval>) -> Result<Eval, FailReason> {
    match outcome {
        JobOutcome::Ok(eval) => Ok(eval),
        JobOutcome::Rejected(v) => Err(FailReason::Rejected(v)),
        JobOutcome::Panicked(msg) => Err(FailReason::Panicked(msg)),
        JobOutcome::TimedOut => Err(FailReason::TimedOut),
    }
}

/// Average ranks (1-based) with ties sharing their mean rank — the
/// fractional-rank convention Spearman's ρ is defined over.
fn ranks(values: &[u128]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| values[i]);
    let mut out = vec![0.0; n];
    let mut lo = 0;
    while lo < n {
        let mut hi = lo;
        while hi + 1 < n && values[order[hi + 1]] == values[order[lo]] {
            hi += 1;
        }
        let mean = (lo + hi) as f64 / 2.0 + 1.0;
        for &i in &order[lo..=hi] {
            out[i] = mean;
        }
        lo = hi + 1;
    }
    out
}

/// Spearman rank correlation between two paired score lists: Pearson
/// correlation over their fractional ranks. `None` when fewer than two
/// pairs exist or either side is constant (correlation is undefined —
/// there is no ranking to agree or disagree with).
pub fn spearman(xs: &[u128], ys: &[u128]) -> Option<f64> {
    let n = xs.len();
    if n < 2 || n != ys.len() {
        return None;
    }
    let (rx, ry) = (ranks(xs), ranks(ys));
    let mean = (n + 1) as f64 / 2.0;
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for i in 0..n {
        let (dx, dy) = (rx[i] - mean, ry[i] - mean);
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::compile;
    use lgen_cir::VerifyLevel;
    use lgen_isa::Microarch;
    use lgen_ll::paper;

    #[test]
    fn exhaustive_search_is_at_least_as_good_as_random() {
        let blac = paper::gemv(4, 48);
        let cfg = CompileConfig::full(Microarch::Arm1176);
        let rand3 = Autotuner::new(cfg.clone())
            .with_sample_size(3)
            .tune(&blac, "k");
        let exh = Autotuner::new(cfg)
            .with_strategy(SearchStrategy::Exhaustive)
            .tune(&blac, "k");
        assert!(exh.measurement.cycles <= rand3.measurement.cycles);
        assert_eq!(exh.samples.len(), Autotuner::search_space().len());
    }

    #[test]
    fn search_space_supports_large_samples() {
        // The paper's sample size is 10; the expanded space keeps larger
        // samples (≥16) meaningful for the parallel tuner.
        let space = Autotuner::search_space();
        assert!(space.len() >= 16, "space has only {} points", space.len());
        let unique: std::collections::HashSet<_> = space.iter().collect();
        assert_eq!(unique.len(), space.len(), "duplicate candidates");
    }

    #[test]
    fn guided_search_converges_with_fewer_evaluations_than_exhaustive() {
        let blac = paper::gemv(4, 64);
        let cfg = CompileConfig::full(Microarch::Arm1176);
        let guided = Autotuner::new(cfg.clone())
            .with_strategy(SearchStrategy::Guided)
            .tune(&blac, "k");
        let exh = Autotuner::new(cfg)
            .with_strategy(SearchStrategy::Exhaustive)
            .tune(&blac, "k");
        assert!(guided.samples.len() < exh.samples.len());
        // Hill climbing must never end on a worse point than its start.
        let start_cycles = guided.samples[0].1;
        assert!(guided.measurement.cycles <= start_cycles);
    }

    #[test]
    fn energy_objective_selects_by_energy() {
        let blac = paper::mmm(4, 16, 4);
        let cfg = CompileConfig::full(Microarch::CortexA8);
        let by_energy = Autotuner::new(cfg.clone())
            .with_strategy(SearchStrategy::Exhaustive)
            .with_objective(Objective::Energy)
            .tune(&blac, "k");
        let by_cycles = Autotuner::new(cfg)
            .with_strategy(SearchStrategy::Exhaustive)
            .with_objective(Objective::Cycles)
            .tune(&blac, "k");
        assert!(by_energy.measurement.energy_pj <= by_cycles.measurement.energy_pj);
        assert!(by_cycles.measurement.cycles <= by_energy.measurement.cycles);
        assert!(by_energy.measurement.energy_pj > 0);
    }

    #[test]
    fn tuning_never_loses_to_the_default() {
        let blac = paper::mvm(4, 64);
        let cfg = CompileConfig::full(Microarch::Atom);
        let tuned = Autotuner::new(cfg.clone())
            .with_sample_size(9)
            .tune(&blac, "mvm");
        let default_kernel = compile(&blac, "mvm", &cfg);
        let default_m =
            measure_blac(&blac, &default_kernel, Microarch::Atom, &[0, 0, 0], 3).unwrap();
        assert!(tuned.measurement.cycles <= default_m.cycles);
        assert_eq!(tuned.samples.len(), 9);
        // Without pass-order search, the winner reports the config's own
        // schedule.
        assert_eq!(tuned.pipeline, cfg.pipeline);
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let blac = paper::mmm(4, 8, 4);
        let cfg = CompileConfig::full(Microarch::CortexA9);
        let a = Autotuner::new(cfg.clone())
            .with_sample_size(4)
            .with_seed(7)
            .tune(&blac, "k");
        let b = Autotuner::new(cfg)
            .with_sample_size(4)
            .with_seed(7)
            .tune(&blac, "k");
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.unroll, b.unroll);
    }

    #[test]
    fn small_sample_visits_fewer_points() {
        let blac = paper::axpy(64);
        let cfg = CompileConfig::full(Microarch::CortexA8);
        let t = Autotuner::new(cfg).with_sample_size(2).tune(&blac, "k");
        assert_eq!(t.samples.len(), 2);
    }

    #[test]
    fn winner_is_identical_for_any_thread_count() {
        // The determinism guarantee: 1 thread and 8 threads pick
        // byte-identical winners over a GEMV/GEMM suite, samples included.
        let suite = [paper::gemv(4, 32), paper::gemm(4, 8, 8), paper::mvm(4, 48)];
        let cfg = CompileConfig::full(Microarch::Atom);
        for blac in &suite {
            let seq = Autotuner::new(cfg.clone())
                .with_sample_size(16)
                .with_threads(1)
                .tune(blac, "k");
            let par = Autotuner::new(cfg.clone())
                .with_sample_size(16)
                .with_threads(8)
                .tune(blac, "k");
            assert_eq!(seq.unroll, par.unroll);
            assert_eq!(seq.samples, par.samples);
            assert_eq!(seq.measurement, par.measurement);
            assert_eq!(seq.kernel, par.kernel, "winning kernels must be identical");
        }
    }

    #[test]
    fn guided_search_is_thread_count_invariant() {
        let blac = paper::gemv(4, 64);
        let cfg = CompileConfig::full(Microarch::Atom);
        let seq = Autotuner::new(cfg.clone())
            .with_strategy(SearchStrategy::Guided)
            .with_threads(1)
            .tune(&blac, "k");
        let par = Autotuner::new(cfg)
            .with_strategy(SearchStrategy::Guided)
            .with_threads(4)
            .tune(&blac, "k");
        assert_eq!(seq.unroll, par.unroll);
        assert_eq!(seq.samples, par.samples);
        assert_eq!(seq.kernel, par.kernel);
    }

    #[test]
    fn tune_many_matches_per_blac_tune() {
        let jobs = vec![
            (paper::gemv(4, 24), "gemv".to_string()),
            (paper::gemm(4, 4, 8), "gemm".to_string()),
        ];
        let cfg = CompileConfig::full(Microarch::CortexA9);
        let tuner = Autotuner::new(cfg).with_sample_size(6).with_threads(4);
        let batch = tuner.tune_many(&jobs);
        assert_eq!(batch.len(), 2);
        for ((blac, name), got) in jobs.iter().zip(&batch) {
            let solo = tuner.tune(blac, name);
            assert_eq!(solo.unroll, got.unroll);
            assert_eq!(solo.samples, got.samples);
            assert_eq!(solo.kernel, got.kernel);
        }
    }

    #[test]
    fn shared_cache_dedups_candidate_compiles() {
        let blac = paper::mvm(4, 32);
        let cfg = CompileConfig::full(Microarch::Atom);
        let cache = Arc::new(KernelCache::new());
        let tuner = Autotuner::new(cfg)
            .with_strategy(SearchStrategy::Exhaustive)
            .with_cache(cache.clone());
        let first = tuner.tune(&blac, "k");
        let compiles_after_first = cache.pass_stats().compiles();
        assert_eq!(compiles_after_first, Autotuner::search_space().len() as u64);
        // Re-tuning the same BLAC is served entirely from the cache.
        let second = tuner.tune(&blac, "k");
        assert_eq!(cache.pass_stats().compiles(), compiles_after_first);
        assert_eq!(first.unroll, second.unroll);
        assert_eq!(first.kernel, second.kernel);
        assert!(cache.stats().hits >= Autotuner::search_space().len() as u64);
    }

    #[test]
    fn pipeline_space_derives_legal_variants() {
        let full = Autotuner::pipeline_space(&PassPipeline::standard());
        assert!(full.len() >= 4);
        assert_eq!(full[0], PassPipeline::standard());
        assert!(full.iter().all(|p| p.contains("align")));
        let base = Autotuner::pipeline_space(&PassPipeline::standard().without("align"));
        assert!(base.iter().all(|p| !p.contains("align")));
        // All variants are distinct.
        for (i, p) in full.iter().enumerate() {
            assert!(!full[i + 1..].contains(p), "duplicate schedule {p}");
        }
    }

    #[test]
    fn pipeline_search_crosses_schedules_with_unrolls() {
        let blac = paper::gemv(4, 24);
        let cfg = CompileConfig::full(Microarch::Atom);
        let tuner = Autotuner::new(cfg.clone())
            .with_strategy(SearchStrategy::Exhaustive)
            .with_pipeline_search()
            .with_threads(4);
        let tuned = tuner.tune(&blac, "k");
        let n_pipelines = Autotuner::pipeline_space(&cfg.pipeline).len();
        assert_eq!(
            tuned.samples.len(),
            Autotuner::search_space().len() * n_pipelines
        );
        assert!(Autotuner::pipeline_space(&cfg.pipeline).contains(&tuned.pipeline));
        // Pass-order search can only improve on unrolling-only search.
        let plain = Autotuner::new(cfg)
            .with_strategy(SearchStrategy::Exhaustive)
            .tune(&blac, "k");
        assert!(tuned.measurement.cycles <= plain.measurement.cycles);
    }

    #[test]
    fn pipeline_search_is_deterministic_and_verified() {
        // Acceptance: pass-order search end-to-end under paranoid
        // verification, identical across runs and thread counts.
        let blac = paper::gemm(4, 8, 4);
        let cfg = CompileConfig::full(Microarch::Atom).with_verify(VerifyLevel::EveryPass);
        let a = Autotuner::new(cfg.clone())
            .with_sample_size(8)
            .with_seed(13)
            .with_pipeline_search()
            .with_threads(1)
            .tune(&blac, "k");
        let b = Autotuner::new(cfg)
            .with_sample_size(8)
            .with_seed(13)
            .with_pipeline_search()
            .with_threads(4)
            .tune(&blac, "k");
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.unroll, b.unroll);
        assert_eq!(a.pipeline, b.pipeline);
        assert_eq!(a.kernel, b.kernel);
        assert_eq!(a.rejected, 0, "no candidate may fail verification");
        assert!(a.failures.is_empty());
    }

    #[test]
    fn injected_panic_degrades_instead_of_aborting() {
        let blac = paper::gemv(4, 16);
        let cfg = CompileConfig::full(Microarch::Atom);
        let tuned = Autotuner::new(cfg.clone())
            .with_strategy(SearchStrategy::Exhaustive)
            .with_faults(FaultPlan::none().panic_at(0).panic_at(2))
            .tune(&blac, "k");
        let space = Autotuner::search_space().len();
        assert_eq!(tuned.samples.len(), space - 2);
        assert_eq!(tuned.panicked(), 2);
        assert_eq!(tuned.rejected, 0);
        // The clean run over the surviving candidates picks the same
        // winner.
        let clean = Autotuner::new(cfg)
            .with_strategy(SearchStrategy::Exhaustive)
            .tune(&blac, "k");
        let expected = clean
            .samples
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 0 && *i != 2)
            .min_by_key(|(_, (_, cycles))| *cycles)
            .map(|(_, (u, _))| *u)
            .unwrap();
        assert_eq!(tuned.unroll, expected);
    }

    #[test]
    fn all_candidates_failed_is_a_typed_error() {
        let blac = paper::axpy(16);
        let cfg = CompileConfig::full(Microarch::Atom);
        let mut plan = FaultPlan::none();
        for i in 0..Autotuner::search_space().len() {
            plan = plan.panic_at(i);
        }
        let err = Autotuner::new(cfg)
            .with_strategy(SearchStrategy::Exhaustive)
            .with_faults(plan)
            .try_tune(&blac, "k")
            .expect_err("no survivor");
        let TuneError::AllCandidatesFailed {
            attempted,
            failures,
        } = &err;
        assert_eq!(*attempted, Autotuner::search_space().len());
        assert_eq!(failures.len(), *attempted);
        assert!(err.to_string().contains("panicked"), "{err}");
    }

    #[test]
    fn prune_policy_parses_and_round_trips() {
        assert_eq!("off".parse::<PrunePolicy>().unwrap(), PrunePolicy::Off);
        assert_eq!(
            "topk:4".parse::<PrunePolicy>().unwrap(),
            PrunePolicy::TopK(4)
        );
        assert_eq!(
            "topk:inf".parse::<PrunePolicy>().unwrap(),
            PrunePolicy::TopK(usize::MAX)
        );
        assert_eq!(
            "frac:0.25".parse::<PrunePolicy>().unwrap(),
            PrunePolicy::Frac(0.25)
        );
        for bad in [
            "", "on", "topk:", "topk:0", "topk:-1", "frac:0", "frac:1.5", "frac:x",
        ] {
            assert!(bad.parse::<PrunePolicy>().is_err(), "accepted {bad:?}");
        }
        for p in [
            PrunePolicy::Off,
            PrunePolicy::TopK(7),
            PrunePolicy::TopK(usize::MAX),
        ] {
            assert_eq!(p.to_string().parse::<PrunePolicy>().unwrap(), p);
        }
        // At least one candidate always survives; never more than exist.
        assert_eq!(PrunePolicy::TopK(4).survivors(18), 4);
        assert_eq!(PrunePolicy::TopK(99).survivors(18), 18);
        assert_eq!(PrunePolicy::Frac(0.25).survivors(18), 5);
        assert_eq!(PrunePolicy::Frac(0.001).survivors(18), 1);
        assert_eq!(PrunePolicy::Off.survivors(18), 18);
    }

    #[test]
    fn spearman_matches_hand_computed_cases() {
        // Perfect agreement, perfect inversion, and the tie convention.
        assert_eq!(spearman(&[1, 2, 3, 4], &[10, 20, 30, 40]), Some(1.0));
        assert_eq!(spearman(&[1, 2, 3, 4], &[40, 30, 20, 10]), Some(-1.0));
        assert_eq!(spearman(&[5, 5, 5], &[1, 2, 3]), None); // constant side
        assert_eq!(spearman(&[1], &[1]), None); // too short
        let rho = spearman(&[1, 2, 2, 4], &[1, 2, 3, 4]).unwrap();
        assert!(rho > 0.9 && rho < 1.0, "ties average: {rho}");
    }

    #[test]
    fn topk_inf_is_byte_identical_to_off() {
        // Everything survives the first tranche, so the pruned path must
        // reproduce the unpruned search exactly — winner, samples, counts.
        let blac = paper::gemv(4, 48);
        let cfg = CompileConfig::full(Microarch::Atom);
        let base = Autotuner::new(cfg)
            .with_strategy(SearchStrategy::Exhaustive)
            .with_threads(4);
        let off = base.clone().tune(&blac, "k");
        let inf = base
            .with_prune(PrunePolicy::TopK(usize::MAX))
            .tune(&blac, "k");
        assert_eq!(off.unroll, inf.unroll);
        assert_eq!(off.samples, inf.samples);
        assert_eq!(off.measurement, inf.measurement);
        assert_eq!(off.kernel, inf.kernel);
        assert_eq!(inf.pruned, 0);
        assert!(inf.rank_correlation.is_some());
    }

    #[test]
    fn pruned_search_reproduces_the_exhaustive_winner() {
        // topk:4 of 18 candidates (~22%) must still find the same winner
        // the full simulation sweep finds, and report what it skipped.
        let suite = [paper::axpy(32), paper::gemv(4, 32), paper::mvm(4, 48)];
        let cfg = CompileConfig::full(Microarch::Atom);
        for blac in &suite {
            let base = Autotuner::new(cfg.clone()).with_strategy(SearchStrategy::Exhaustive);
            let full = base.clone().tune(blac, "k");
            let pruned = base.with_prune(PrunePolicy::TopK(4)).tune(blac, "k");
            assert_eq!(pruned.unroll, full.unroll);
            assert_eq!(pruned.measurement, full.measurement);
            assert!(
                pruned.pruned > 0,
                "a healthy model should have skipped candidates"
            );
            assert!(pruned.samples.len() < full.samples.len());
        }
    }

    #[test]
    fn pruned_search_is_thread_count_invariant() {
        let blac = paper::gemv(4, 32);
        let cfg = CompileConfig::full(Microarch::Atom);
        let base = Autotuner::new(cfg)
            .with_strategy(SearchStrategy::Exhaustive)
            .with_prune(PrunePolicy::TopK(4));
        let seq = base.clone().with_threads(1).tune(&blac, "k");
        let par = base.with_threads(8).tune(&blac, "k");
        assert_eq!(seq.unroll, par.unroll);
        assert_eq!(seq.samples, par.samples);
        assert_eq!(seq.pruned, par.pruned);
        assert_eq!(seq.rank_correlation, par.rank_correlation);
    }

    #[test]
    fn hostile_audit_threshold_widens_to_full_measurement() {
        // An unattainable audit threshold (> 1) keeps the search widening
        // until every candidate is measured — the graceful-degradation
        // path: a distrusted model can cost throughput, never the winner.
        // (GEMV with ten survivors: the statically best candidates are
        // the full-unroll family — eight policies collapsing to one
        // kernel and one cycle count — so a smaller tranche measures an
        // all-tie set whose undefined ρ cannot contradict the model and
        // legitimately stops early. Ten survivors mix in distinct
        // kernels, define ρ, and fail the impossible threshold.)
        let blac = paper::gemv(4, 48);
        let cfg = CompileConfig::full(Microarch::Atom);
        let base = Autotuner::new(cfg).with_strategy(SearchStrategy::Exhaustive);
        let full = base.clone().tune(&blac, "k");
        let widened = base
            .with_prune(PrunePolicy::TopK(10))
            .with_audit_threshold(2.0)
            .tune(&blac, "k");
        assert_eq!(widened.pruned, 0);
        assert_eq!(widened.samples, full.samples);
        assert_eq!(widened.unroll, full.unroll);
    }
}
