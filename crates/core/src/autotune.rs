//! The autotuning feedback loop (Fig. 2.1, §5.1.5).
//!
//! LGen generates several code versions per BLAC, executes them on the
//! target device, and keeps the fastest. Here the "device" is the
//! `lgen-machine` simulator; the search space is the unrolling/outer-tiling
//! decision (§2.1.2 — outer tile sizes must divide the full-tile count, the
//! "leftovers in at most one level" restriction, which the `Factor`
//! unrolling policy enforces by skipping non-dividing trip counts).
//! The paper uses "random search over the search space with sample size
//! 10"; the sample size is configurable.
//!
//! Because the C-IR schedule is first-class data ([`PassPipeline`]), the
//! search space can optionally extend beyond tile sizes to *pass order*:
//! [`Autotuner::with_pipeline_search`] crosses the unrolling space with a
//! small set of legal schedule variants (fixpoint cleanup, extra
//! copy-propagation rounds, pass-dropped schedules), and the winner records
//! which schedule produced it.
//!
//! Candidate evaluation (compile → validate → measure) is embarrassingly
//! parallel, so it fans out over a scoped worker pool ([`crate::pool`]).
//! Every stage of evaluation is deterministic (the simulator is exact and
//! validation uses fixed seeds), results are collected index-addressed in
//! candidate order, and the reduction keeps the *first* best under a strict
//! `<` comparison — so the winning kernel is byte-identical no matter how
//! many threads ran the search. A shared [`KernelCache`] (optional) dedups
//! compilation across candidates, repeated tunes, and batch jobs.

use crate::cache::KernelCache;
use crate::config::CompileConfig;
use crate::exec::{check_kernel, measure_blac, tolerance};
use crate::pipeline::try_compile;
use crate::pool::run_indexed;
use lgen_cir::passes::{PassPipeline, UnrollPolicy};
use lgen_cir::{verify_kernel, Kernel, VerifyFailure};
use lgen_ll::Blac;
use lgen_machine::Measurement;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;

/// What the autotuner minimizes (§6 future work: "introduction of
/// energy-related metrics in the autotuning feedback loop").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Objective {
    /// Fastest kernel (the paper's default).
    Cycles,
    /// Least energy per invocation.
    Energy,
    /// Minimum energy-delay product.
    EnergyDelay,
}

impl Objective {
    fn score(self, m: &Measurement) -> u128 {
        match self {
            Objective::Cycles => m.cycles as u128,
            Objective::Energy => m.energy_pj as u128,
            Objective::EnergyDelay => m.energy_delay(),
        }
    }
}

/// How the search space is explored (§6 future work: random search visits
/// too little of large spaces — "LGen could possibly make use of heuristics
/// to prune the search space and/or direct the search").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum SearchStrategy {
    /// Uniform random sample of the given size (the paper's method,
    /// sample size 10 in §5.1.5).
    Random(usize),
    /// Every candidate (the space is small enough to enumerate).
    Exhaustive,
    /// Greedy hill climbing from the default decision: evaluates the
    /// current point's neighbours in the ordered space and moves while it
    /// improves — fewer evaluations than exhaustive, better coverage than
    /// a small random sample.
    Guided,
}

/// One point of the (possibly pipeline-extended) search space: an
/// unrolling decision plus the schedule to run it under (`None` = the
/// tuner config's own pipeline).
type Candidate = (UnrollPolicy, Option<PassPipeline>);

/// Result of an autotuning run.
#[derive(Clone, Debug)]
pub struct TunedKernel {
    /// The fastest validated kernel.
    pub kernel: Kernel,
    /// Its measurement.
    pub measurement: Measurement,
    /// The winning unroll decision.
    pub unroll: UnrollPolicy,
    /// The schedule that produced the winner (the config's own pipeline
    /// unless pass-order search found a better one).
    pub pipeline: PassPipeline,
    /// `(candidate, median cycles)` for every sampled point (with
    /// pass-order search, one entry per `(unroll, pipeline)` pair).
    pub samples: Vec<(UnrollPolicy, u64)>,
    /// Candidates excluded because they failed static verification
    /// (`cfg.verify` enabled) — never measured, never eligible to win.
    pub rejected: usize,
}

/// Autotuner over the tiling/unrolling space, optionally crossed with
/// pass-order variants.
#[derive(Clone, Debug)]
pub struct Autotuner {
    cfg: CompileConfig,
    strategy: SearchStrategy,
    objective: Objective,
    reps: usize,
    seed: u64,
    threads: usize,
    cache: Option<Arc<KernelCache>>,
    /// Pass schedules to search over; empty = unrolling-only search under
    /// the config's own pipeline.
    pipelines: Vec<PassPipeline>,
}

impl Autotuner {
    /// Autotuner with the paper's defaults: random search, sample size 10,
    /// minimizing cycles. Runs single-threaded and uncached; see
    /// [`Self::with_threads`] and [`Self::with_cache`].
    pub fn new(cfg: CompileConfig) -> Self {
        Autotuner {
            cfg,
            strategy: SearchStrategy::Random(10),
            objective: Objective::Cycles,
            reps: 3,
            seed: 0x5EED,
            threads: 1,
            cache: None,
            pipelines: Vec::new(),
        }
    }

    /// Sets the worker-pool width for candidate evaluation (`0` = one per
    /// available core). The tuning result is identical for every width.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Shares a kernel cache: candidates already compiled (by earlier
    /// tunes, batch jobs, or plain [`compile`](crate::compile) calls
    /// through the cache) skip the pipeline.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<KernelCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Overrides the random-search sample size.
    #[must_use]
    pub fn with_sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.strategy = SearchStrategy::Random(n);
        self
    }

    /// Overrides the search strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides the tuning objective.
    #[must_use]
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Overrides the RNG seed (the search is deterministic per seed).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables pass-order search: the unrolling space is crossed with
    /// [`Self::pipeline_space`] built from the config's own schedule, and
    /// each candidate compiles under its own [`PassPipeline`].
    #[must_use]
    pub fn with_pipeline_search(mut self) -> Self {
        self.pipelines = Self::pipeline_space(&self.cfg.pipeline);
        self
    }

    /// Pass-order search over an explicit list of schedules (each must
    /// already have been validated by [`PassPipeline::parse`]).
    #[must_use]
    pub fn with_pipelines(mut self, pipelines: Vec<PassPipeline>) -> Self {
        self.pipelines = pipelines;
        self
    }

    /// The candidate unrolling decisions, ordered: no unrolling, then full
    /// unrolling by rising trip-count threshold, then factor unrolling by
    /// rising factor. Guided search climbs along this order.
    pub fn search_space() -> Vec<UnrollPolicy> {
        let mut space = vec![UnrollPolicy::None];
        space.extend(
            [2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128]
                .map(|max_trip| UnrollPolicy::Full { max_trip }),
        );
        space.extend([2, 3, 4, 6, 8].map(|factor| UnrollPolicy::Factor { factor }));
        space
    }

    /// Legal schedule variants derived from a base pipeline: the base
    /// itself, fixpoint cleanup (`repeat(copyprop,dce)`), an extra
    /// copy-propagation round before scalar replacement, a double cleanup
    /// tail, and a scalar-replacement-dropped schedule. Variants keep the
    /// base's `align` decision (it changes semantics-visible alignment
    /// assumptions, not just code shape), and duplicates of the base are
    /// removed.
    pub fn pipeline_space(base: &PassPipeline) -> Vec<PassPipeline> {
        let tail = if base.contains("align") { ",align" } else { "" };
        let specs = [
            format!("unroll,scalrep,repeat(copyprop,dce){tail}"),
            format!("unroll,copyprop,scalrep,copyprop,dce{tail}"),
            format!("unroll,scalrep,copyprop,dce,copyprop,dce{tail}"),
            format!("unroll,copyprop,dce{tail}"),
        ];
        let mut space = vec![base.clone()];
        for spec in specs {
            let p = PassPipeline::parse(&spec).expect("pipeline_space specs are legal");
            if !space.contains(&p) {
                space.push(p);
            }
        }
        space
    }

    /// The candidate list the configured strategy will evaluate (the whole
    /// space for `Exhaustive`, a seeded shuffle prefix for `Random`). With
    /// pass-order search on, the unrolling space is crossed with the
    /// schedule space.
    fn candidates(&self) -> Vec<Candidate> {
        let unrolls = Self::search_space();
        let mut space: Vec<Candidate> = if self.pipelines.is_empty() {
            unrolls.into_iter().map(|u| (u, None)).collect()
        } else {
            unrolls
                .into_iter()
                .flat_map(|u| self.pipelines.iter().map(move |p| (u, Some(p.clone()))))
                .collect()
        };
        match self.strategy {
            SearchStrategy::Exhaustive | SearchStrategy::Guided => space,
            SearchStrategy::Random(sample_size) => {
                let mut rng = StdRng::seed_from_u64(self.seed);
                space.shuffle(&mut rng);
                space.truncate(sample_size);
                space
            }
        }
    }

    /// The config a candidate compiles under.
    fn candidate_cfg(&self, candidate: &Candidate) -> CompileConfig {
        let cfg = self.cfg.clone().with_unroll(candidate.0);
        match &candidate.1 {
            Some(p) => cfg.with_passes(p.clone()),
            None => cfg,
        }
    }

    /// Evaluates one candidate: compile (through the shared cache when one
    /// is attached), statically verify when `cfg.verify` is enabled,
    /// validate against the naive reference (§5.1.4), measure. Fully
    /// deterministic: safe to run from any worker thread. Returns `Err`
    /// when the candidate fails verification — the tuner skips it instead
    /// of measuring garbage.
    fn evaluate(
        &self,
        blac: &Blac,
        name: &str,
        candidate: &Candidate,
    ) -> Result<(Arc<Kernel>, Measurement), VerifyFailure> {
        let isa = self.cfg.arch.vector_isa();
        let offsets = vec![0usize; blac.operands.len()];
        let cfg = self.candidate_cfg(candidate);
        let kernel = match &self.cache {
            Some(cache) => cache.try_get_or_compile(blac, name, &cfg)?,
            None => Arc::new(try_compile(blac, name, &cfg)?),
        };
        // Re-check cache-served kernels too: a seeded/stale entry must not
        // slip past the verification gate just because it skipped the
        // pipeline's boundary checks.
        if cfg.verify.is_enabled() {
            let diagnostics = verify_kernel(&kernel);
            if !diagnostics.is_empty() {
                if let Some(cache) = &self.cache {
                    cache.record_verify_reject();
                }
                return Err(VerifyFailure {
                    pass: "autotune-candidate",
                    diagnostics,
                });
            }
        }
        let diff = check_kernel(blac, &kernel, isa, 11)
            .unwrap_or_else(|e| panic!("candidate failed to execute: {e}"));
        assert!(
            diff < tolerance(blac.flops()),
            "candidate {:?} numerically wrong: {diff}",
            candidate.0
        );
        let m =
            measure_blac(blac, &kernel, self.cfg.arch, &offsets, self.reps).expect("measurement");
        Ok((kernel, m))
    }

    /// Reduces evaluated candidates to the winner, scanning in candidate
    /// order with a strict `<`: the first best wins, independent of which
    /// worker finished when. Verification-rejected candidates are counted
    /// and excluded from `samples`.
    ///
    /// # Panics
    ///
    /// Panics if every candidate was rejected, quoting the first failure.
    fn reduce(
        &self,
        candidates: &[Candidate],
        results: Vec<Result<(Arc<Kernel>, Measurement), VerifyFailure>>,
    ) -> TunedKernel {
        let mut evaluated: Vec<(&Candidate, Arc<Kernel>, Measurement)> = Vec::new();
        let mut rejected = 0usize;
        let mut first_err = None;
        for (c, r) in candidates.iter().zip(results) {
            match r {
                Ok((k, m)) => evaluated.push((c, k, m)),
                Err(e) => {
                    rejected += 1;
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if evaluated.is_empty() {
            panic!(
                "all {rejected} candidates failed verification: {}",
                first_err.expect("at least one rejection")
            );
        }
        let samples: Vec<(UnrollPolicy, u64)> =
            evaluated.iter().map(|(c, _, m)| (c.0, m.cycles)).collect();
        let mut best = 0;
        for i in 1..evaluated.len() {
            if self.objective.score(&evaluated[i].2) < self.objective.score(&evaluated[best].2) {
                best = i;
            }
        }
        let (candidate, kernel, measurement) = &evaluated[best];
        TunedKernel {
            kernel: (**kernel).clone(),
            measurement: *measurement,
            unroll: candidate.0,
            pipeline: candidate
                .1
                .clone()
                .unwrap_or_else(|| self.cfg.pipeline.clone()),
            samples,
            rejected,
        }
    }

    /// Tunes `blac` per the configured strategy and objective, returning
    /// the best validated kernel. Candidates are evaluated on the worker
    /// pool; the result is identical for any thread count.
    ///
    /// # Panics
    ///
    /// Panics if a generated kernel fails validation — a compiler bug, not
    /// an input condition.
    pub fn tune(&self, blac: &Blac, name: &str) -> TunedKernel {
        if self.strategy == SearchStrategy::Guided {
            return self.tune_guided_over_pipelines(blac, name);
        }
        let candidates = self.candidates();
        let results = run_indexed(candidates.len(), self.threads, |i| {
            self.evaluate(blac, name, &candidates[i])
        });
        self.reduce(&candidates, results)
    }

    /// Tunes a batch of BLACs over one worker pool (and one cache, when
    /// attached). For `Exhaustive`/`Random` the whole
    /// `(BLAC, candidate)` grid is flattened into a single job list so the
    /// pool stays saturated across kernels; `Guided` is inherently
    /// sequential per BLAC and falls back to per-BLAC tuning. Results are
    /// in job order and identical to calling [`Self::tune`] per entry.
    pub fn tune_many(&self, jobs: &[(Blac, String)]) -> Vec<TunedKernel> {
        if self.strategy == SearchStrategy::Guided {
            return jobs
                .iter()
                .map(|(blac, name)| self.tune(blac, name))
                .collect();
        }
        let candidates = self.candidates();
        let per = candidates.len();
        let results = run_indexed(jobs.len() * per, self.threads, |i| {
            let (blac, name) = &jobs[i / per];
            self.evaluate(blac, name, &candidates[i % per])
        });
        let mut results = results.into_iter();
        jobs.iter()
            .map(|_| self.reduce(&candidates, results.by_ref().take(per).collect()))
            .collect()
    }

    /// Guided search across schedules: one hill climb over the unrolling
    /// space per candidate pipeline (just the config's own when pass-order
    /// search is off), keeping the first best under a strict `<`.
    fn tune_guided_over_pipelines(&self, blac: &Blac, name: &str) -> TunedKernel {
        if self.pipelines.is_empty() {
            return self.tune_guided(blac, name, &Self::search_space(), None);
        }
        let mut best: Option<TunedKernel> = None;
        for p in &self.pipelines {
            let t = self.tune_guided(blac, name, &Self::search_space(), Some(p));
            if best
                .as_ref()
                .is_none_or(|b| t.measurement.cycles < b.measurement.cycles)
            {
                best = Some(t);
            }
        }
        best.expect("at least one pipeline candidate")
    }

    /// Guided search: probe a few structurally diverse seeds (no unrolling,
    /// a mid-size full unroll, the maximal full unroll, the maximal factor
    /// unroll), then hill-climb from the best seed. The seed probes run on
    /// the worker pool; the climb itself is inherently sequential but
    /// evaluates both neighbours of the current point in parallel.
    fn tune_guided(
        &self,
        blac: &Blac,
        name: &str,
        space: &[UnrollPolicy],
        pipeline: Option<&PassPipeline>,
    ) -> TunedKernel {
        let cand = |u: UnrollPolicy| (u, pipeline.cloned());
        let mut samples = Vec::new();
        let mut evaluated = vec![false; space.len()];
        // Seed indices are derived from the space's structure so the probe
        // set stays meaningful if the space grows.
        let full_at = |pick: fn(&[usize]) -> usize| {
            let fulls: Vec<usize> = (0..space.len())
                .filter(|&i| matches!(space[i], UnrollPolicy::Full { .. }))
                .collect();
            pick(&fulls)
        };
        let mut seeds = vec![
            0,                               // UnrollPolicy::None
            full_at(|f| f[f.len() / 2]),     // a mid-size full unroll
            full_at(|f| *f.last().unwrap()), // the largest full unroll
            space.len() - 1,                 // the largest factor unroll
        ];
        seeds.dedup();
        for &si in &seeds {
            evaluated[si] = true;
        }
        let probes = run_indexed(seeds.len(), self.threads, |i| {
            self.evaluate(blac, name, &cand(space[seeds[i]]))
        });
        let mut rejected = 0usize;
        let mut first_err = None;
        let mut idx = seeds[0];
        let mut best: Option<(Arc<Kernel>, Measurement)> = None;
        for (&si, probe) in seeds.iter().zip(probes) {
            let (k, m) = match probe {
                Ok(r) => r,
                Err(e) => {
                    rejected += 1;
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                    continue;
                }
            };
            samples.push((space[si], m.cycles));
            if best
                .as_ref()
                .is_none_or(|(_, bm)| self.objective.score(&m) < self.objective.score(bm))
            {
                best = Some((k, m));
                idx = si;
            }
        }
        let Some((mut best_k, mut best_m)) = best else {
            panic!(
                "all {rejected} guided seed candidates failed verification: {}",
                first_err.expect("at least one rejection")
            );
        };
        loop {
            let neighbours: Vec<usize> = [idx.wrapping_sub(1), idx + 1]
                .into_iter()
                .filter(|&n| n < space.len() && !evaluated[n])
                .collect();
            for &n in &neighbours {
                evaluated[n] = true;
            }
            let evals = run_indexed(neighbours.len(), self.threads, |i| {
                self.evaluate(blac, name, &cand(space[neighbours[i]]))
            });
            let mut improved = false;
            for (&next, eval) in neighbours.iter().zip(evals) {
                let (k, m) = match eval {
                    Ok(r) => r,
                    Err(_) => {
                        rejected += 1;
                        continue;
                    }
                };
                samples.push((space[next], m.cycles));
                if self.objective.score(&m) < self.objective.score(&best_m) {
                    best_k = k;
                    best_m = m;
                    idx = next;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
        let unroll = samples
            .iter()
            .find(|(_, c)| *c == best_m.cycles)
            .map(|(u, _)| *u)
            .expect("best was sampled");
        TunedKernel {
            kernel: (*best_k).clone(),
            measurement: best_m,
            unroll,
            pipeline: pipeline
                .cloned()
                .unwrap_or_else(|| self.cfg.pipeline.clone()),
            samples,
            rejected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::compile;
    use lgen_cir::VerifyLevel;
    use lgen_isa::Microarch;
    use lgen_ll::paper;

    #[test]
    fn exhaustive_search_is_at_least_as_good_as_random() {
        let blac = paper::gemv(4, 48);
        let cfg = CompileConfig::full(Microarch::Arm1176);
        let rand3 = Autotuner::new(cfg.clone())
            .with_sample_size(3)
            .tune(&blac, "k");
        let exh = Autotuner::new(cfg)
            .with_strategy(SearchStrategy::Exhaustive)
            .tune(&blac, "k");
        assert!(exh.measurement.cycles <= rand3.measurement.cycles);
        assert_eq!(exh.samples.len(), Autotuner::search_space().len());
    }

    #[test]
    fn search_space_supports_large_samples() {
        // The paper's sample size is 10; the expanded space keeps larger
        // samples (≥16) meaningful for the parallel tuner.
        let space = Autotuner::search_space();
        assert!(space.len() >= 16, "space has only {} points", space.len());
        let unique: std::collections::HashSet<_> = space.iter().collect();
        assert_eq!(unique.len(), space.len(), "duplicate candidates");
    }

    #[test]
    fn guided_search_converges_with_fewer_evaluations_than_exhaustive() {
        let blac = paper::gemv(4, 64);
        let cfg = CompileConfig::full(Microarch::Arm1176);
        let guided = Autotuner::new(cfg.clone())
            .with_strategy(SearchStrategy::Guided)
            .tune(&blac, "k");
        let exh = Autotuner::new(cfg)
            .with_strategy(SearchStrategy::Exhaustive)
            .tune(&blac, "k");
        assert!(guided.samples.len() < exh.samples.len());
        // Hill climbing must never end on a worse point than its start.
        let start_cycles = guided.samples[0].1;
        assert!(guided.measurement.cycles <= start_cycles);
    }

    #[test]
    fn energy_objective_selects_by_energy() {
        let blac = paper::mmm(4, 16, 4);
        let cfg = CompileConfig::full(Microarch::CortexA8);
        let by_energy = Autotuner::new(cfg.clone())
            .with_strategy(SearchStrategy::Exhaustive)
            .with_objective(Objective::Energy)
            .tune(&blac, "k");
        let by_cycles = Autotuner::new(cfg)
            .with_strategy(SearchStrategy::Exhaustive)
            .with_objective(Objective::Cycles)
            .tune(&blac, "k");
        assert!(by_energy.measurement.energy_pj <= by_cycles.measurement.energy_pj);
        assert!(by_cycles.measurement.cycles <= by_energy.measurement.cycles);
        assert!(by_energy.measurement.energy_pj > 0);
    }

    #[test]
    fn tuning_never_loses_to_the_default() {
        let blac = paper::mvm(4, 64);
        let cfg = CompileConfig::full(Microarch::Atom);
        let tuned = Autotuner::new(cfg.clone())
            .with_sample_size(9)
            .tune(&blac, "mvm");
        let default_kernel = compile(&blac, "mvm", &cfg);
        let default_m =
            measure_blac(&blac, &default_kernel, Microarch::Atom, &[0, 0, 0], 3).unwrap();
        assert!(tuned.measurement.cycles <= default_m.cycles);
        assert_eq!(tuned.samples.len(), 9);
        // Without pass-order search, the winner reports the config's own
        // schedule.
        assert_eq!(tuned.pipeline, cfg.pipeline);
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let blac = paper::mmm(4, 8, 4);
        let cfg = CompileConfig::full(Microarch::CortexA9);
        let a = Autotuner::new(cfg.clone())
            .with_sample_size(4)
            .with_seed(7)
            .tune(&blac, "k");
        let b = Autotuner::new(cfg)
            .with_sample_size(4)
            .with_seed(7)
            .tune(&blac, "k");
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.unroll, b.unroll);
    }

    #[test]
    fn small_sample_visits_fewer_points() {
        let blac = paper::axpy(64);
        let cfg = CompileConfig::full(Microarch::CortexA8);
        let t = Autotuner::new(cfg).with_sample_size(2).tune(&blac, "k");
        assert_eq!(t.samples.len(), 2);
    }

    #[test]
    fn winner_is_identical_for_any_thread_count() {
        // The determinism guarantee: 1 thread and 8 threads pick
        // byte-identical winners over a GEMV/GEMM suite, samples included.
        let suite = [paper::gemv(4, 32), paper::gemm(4, 8, 8), paper::mvm(4, 48)];
        let cfg = CompileConfig::full(Microarch::Atom);
        for blac in &suite {
            let seq = Autotuner::new(cfg.clone())
                .with_sample_size(16)
                .with_threads(1)
                .tune(blac, "k");
            let par = Autotuner::new(cfg.clone())
                .with_sample_size(16)
                .with_threads(8)
                .tune(blac, "k");
            assert_eq!(seq.unroll, par.unroll);
            assert_eq!(seq.samples, par.samples);
            assert_eq!(seq.measurement, par.measurement);
            assert_eq!(seq.kernel, par.kernel, "winning kernels must be identical");
        }
    }

    #[test]
    fn guided_search_is_thread_count_invariant() {
        let blac = paper::gemv(4, 64);
        let cfg = CompileConfig::full(Microarch::Atom);
        let seq = Autotuner::new(cfg.clone())
            .with_strategy(SearchStrategy::Guided)
            .with_threads(1)
            .tune(&blac, "k");
        let par = Autotuner::new(cfg)
            .with_strategy(SearchStrategy::Guided)
            .with_threads(4)
            .tune(&blac, "k");
        assert_eq!(seq.unroll, par.unroll);
        assert_eq!(seq.samples, par.samples);
        assert_eq!(seq.kernel, par.kernel);
    }

    #[test]
    fn tune_many_matches_per_blac_tune() {
        let jobs = vec![
            (paper::gemv(4, 24), "gemv".to_string()),
            (paper::gemm(4, 4, 8), "gemm".to_string()),
        ];
        let cfg = CompileConfig::full(Microarch::CortexA9);
        let tuner = Autotuner::new(cfg).with_sample_size(6).with_threads(4);
        let batch = tuner.tune_many(&jobs);
        assert_eq!(batch.len(), 2);
        for ((blac, name), got) in jobs.iter().zip(&batch) {
            let solo = tuner.tune(blac, name);
            assert_eq!(solo.unroll, got.unroll);
            assert_eq!(solo.samples, got.samples);
            assert_eq!(solo.kernel, got.kernel);
        }
    }

    #[test]
    fn shared_cache_dedups_candidate_compiles() {
        let blac = paper::mvm(4, 32);
        let cfg = CompileConfig::full(Microarch::Atom);
        let cache = Arc::new(KernelCache::new());
        let tuner = Autotuner::new(cfg)
            .with_strategy(SearchStrategy::Exhaustive)
            .with_cache(cache.clone());
        let first = tuner.tune(&blac, "k");
        let compiles_after_first = cache.pass_stats().compiles();
        assert_eq!(compiles_after_first, Autotuner::search_space().len() as u64);
        // Re-tuning the same BLAC is served entirely from the cache.
        let second = tuner.tune(&blac, "k");
        assert_eq!(cache.pass_stats().compiles(), compiles_after_first);
        assert_eq!(first.unroll, second.unroll);
        assert_eq!(first.kernel, second.kernel);
        assert!(cache.stats().hits >= Autotuner::search_space().len() as u64);
    }

    #[test]
    fn pipeline_space_derives_legal_variants() {
        let full = Autotuner::pipeline_space(&PassPipeline::standard());
        assert!(full.len() >= 4);
        assert_eq!(full[0], PassPipeline::standard());
        assert!(full.iter().all(|p| p.contains("align")));
        let base = Autotuner::pipeline_space(&PassPipeline::standard().without("align"));
        assert!(base.iter().all(|p| !p.contains("align")));
        // All variants are distinct.
        for (i, p) in full.iter().enumerate() {
            assert!(!full[i + 1..].contains(p), "duplicate schedule {p}");
        }
    }

    #[test]
    fn pipeline_search_crosses_schedules_with_unrolls() {
        let blac = paper::gemv(4, 24);
        let cfg = CompileConfig::full(Microarch::Atom);
        let tuner = Autotuner::new(cfg.clone())
            .with_strategy(SearchStrategy::Exhaustive)
            .with_pipeline_search()
            .with_threads(4);
        let tuned = tuner.tune(&blac, "k");
        let n_pipelines = Autotuner::pipeline_space(&cfg.pipeline).len();
        assert_eq!(
            tuned.samples.len(),
            Autotuner::search_space().len() * n_pipelines
        );
        assert!(Autotuner::pipeline_space(&cfg.pipeline).contains(&tuned.pipeline));
        // Pass-order search can only improve on unrolling-only search.
        let plain = Autotuner::new(cfg)
            .with_strategy(SearchStrategy::Exhaustive)
            .tune(&blac, "k");
        assert!(tuned.measurement.cycles <= plain.measurement.cycles);
    }

    #[test]
    fn pipeline_search_is_deterministic_and_verified() {
        // Acceptance: pass-order search end-to-end under paranoid
        // verification, identical across runs and thread counts.
        let blac = paper::gemm(4, 8, 4);
        let cfg = CompileConfig::full(Microarch::Atom).with_verify(VerifyLevel::EveryPass);
        let a = Autotuner::new(cfg.clone())
            .with_sample_size(8)
            .with_seed(13)
            .with_pipeline_search()
            .with_threads(1)
            .tune(&blac, "k");
        let b = Autotuner::new(cfg)
            .with_sample_size(8)
            .with_seed(13)
            .with_pipeline_search()
            .with_threads(4)
            .tune(&blac, "k");
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.unroll, b.unroll);
        assert_eq!(a.pipeline, b.pipeline);
        assert_eq!(a.kernel, b.kernel);
        assert_eq!(a.rejected, 0, "no candidate may fail verification");
    }
}
