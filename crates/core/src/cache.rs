//! A concurrent, content-addressed kernel cache.
//!
//! The autotuning feedback loop (Fig. 2.1, §5.1.5) is dominated by
//! redundant recompilation: every candidate re-runs the whole
//! LL → Σ-LL → C-IR pipeline, and the same `(BLAC, config)` point is
//! compiled again whenever the tuner resamples it, a benchmark reruns, or
//! alignment versioning builds near-identical bodies. This module
//! memoizes finished kernels behind a sharded map so repeated compiles are
//! served in O(key hash) instead of O(pipeline).
//!
//! **Key derivation.** A kernel is fully determined by the *structure* of
//! its BLAC (operand table + expression tree — [`lgen_ll::Blac`] hashes
//! structurally), the kernel name (baked into the emitted C), and the
//! [`CompileConfig`] (every field changes generated code; the unrolling
//! decision the autotuner varies is part of it, and so is the
//! [`PassPipeline`](lgen_cir::PassPipeline) — its structural hash *and*
//! its spec fingerprint enter the shard choice, so two schedules of the
//! same BLAC are distinct entries). The map keys on that full triple, so a
//! hit is exact by construction — [`Blac::fingerprint`] is used only to
//! pick a shard and to label diagnostics.
//!
//! **Concurrency.** The map is split into [`SHARDS`] independently locked
//! shards; the autotuner's worker pool hits disjoint shards with high
//! probability. Compilation happens *outside* the shard lock, so a slow
//! pipeline never blocks unrelated lookups; when two threads race on the
//! same cold key the first insert wins and both return the same `Arc`
//! (compilation is deterministic, so the discarded duplicate was
//! identical).

use crate::config::CompileConfig;
use crate::memo::CompileMemo;
use crate::persist::{stable_fingerprint, DiskCache, DiskStats};
use crate::pipeline::{try_compile_memoized, try_compile_with_stats};
use crate::program::{try_compile_program_memoized, try_compile_program_with};
use lgen_cir::passes::{PassStats, UnrollPolicy};
use lgen_cir::{Kernel, VerifyFailure};
use lgen_ll::{Blac, Program};
use lgen_telemetry::metric_counter;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of independently locked shards (power of two).
pub const SHARDS: usize = 16;

/// The exact identity of a compiled kernel.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// The computation, compared structurally.
    pub blac: Blac,
    /// Kernel (C function) name.
    pub name: String,
    /// The full compile configuration, unrolling decision included.
    pub cfg: CompileConfig,
}

/// The exact identity of a compiled *program* kernel: the [`CacheKey`]
/// analogue for multi-statement inputs, extended with the optional joint
/// per-statement unroll genome (one policy per fused statement; `None`
/// = `cfg.unroll` applied kernel-wide).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ProgramCacheKey {
    /// The program, compared structurally (operand table, structure
    /// annotations, and statement list included).
    pub program: Program,
    /// Kernel (C function) name.
    pub name: String,
    /// The full compile configuration.
    pub cfg: CompileConfig,
    /// Joint per-statement unroll genome, if the caller tunes one.
    pub policies: Option<Vec<UnrollPolicy>>,
}

/// Monotonic counters describing cache behaviour; cheap to read at any
/// time (used by `lgenc --cache-stats` and the benchmarks, and the hook
/// point for future observability work).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Kernels inserted (≤ misses; racing duplicates are not inserted).
    pub inserts: u64,
    /// Cold compiles that lost an insert race to an identical kernel.
    pub races: u64,
    /// Candidates rejected because they failed static verification
    /// (never inserted — see [`KernelCache::try_get_or_compile`] and the
    /// autotuner's final verification gate).
    pub verify_rejects: u64,
    /// Tuning candidates whose evaluation panicked (contained by the
    /// fault-tolerant pool; nothing is cached for them).
    pub tune_panics: u64,
    /// Tuning candidates abandoned at their deadline or skipped once the
    /// search budget was spent.
    pub tune_timeouts: u64,
    /// Tuning candidates never measured because the static cost model
    /// ranked them out of the survivor set (`--prune`); they were still
    /// compiled (cheap, memoized) for the ranking itself.
    pub tune_pruned: u64,
    /// Compiles served by the cross-candidate subtree memo (the
    /// `cir.memo_hits` counter): the exact `(BLAC, name, config)` key
    /// missed, but an equivalent candidate had already lowered and
    /// optimized the same subtree.
    pub memo_hits: u64,
    /// Memo lookups that ran the pass pipeline for real
    /// (`cir.memo_misses`).
    pub memo_misses: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.hits + self.misses;
        let rate = if total == 0 {
            0.0
        } else {
            100.0 * self.hits as f64 / total as f64
        };
        write!(
            f,
            "{} hits / {} misses ({rate:.1}% hit rate), {} entries",
            self.hits, self.misses, self.entries
        )?;
        if self.verify_rejects > 0 {
            write!(f, ", {} verify-rejected", self.verify_rejects)?;
        }
        if self.tune_panics > 0 {
            write!(f, ", {} candidate panic(s)", self.tune_panics)?;
        }
        if self.tune_timeouts > 0 {
            write!(f, ", {} candidate timeout(s)", self.tune_timeouts)?;
        }
        if self.tune_pruned > 0 {
            write!(f, ", {} candidate(s) pruned", self.tune_pruned)?;
        }
        if self.memo_hits + self.memo_misses > 0 {
            write!(
                f,
                ", memo {} hits / {} misses",
                self.memo_hits, self.memo_misses
            )?;
        }
        Ok(())
    }
}

/// Which tier served a compile request; returned by the `_outcome`
/// lookup variants so callers (the compile service's per-request spans and
/// hit-rate accounting) can distinguish the three costs without racing on
/// counter deltas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompileOutcome {
    /// Served from the in-memory map (O(hash)).
    Memory,
    /// Missed memory, loaded and verified from the persistent
    /// [`DiskCache`] (O(read + decode)); now resident in memory too.
    Disk,
    /// Missed everywhere; the pipeline ran (and the result was spilled to
    /// disk when a [`DiskCache`] is attached).
    Compiled,
}

impl CompileOutcome {
    /// Whether the request was served without running the pipeline.
    pub fn is_cache_hit(self) -> bool {
        !matches!(self, CompileOutcome::Compiled)
    }
}

/// A concurrent map from [`CacheKey`] to the compiled kernel.
pub struct KernelCache {
    shards: Vec<Mutex<HashMap<CacheKey, Arc<Kernel>>>>,
    programs: Mutex<HashMap<ProgramCacheKey, Arc<Kernel>>>,
    /// Optional persistent tier consulted on memory misses and filled on
    /// fresh compiles (see [`KernelCache::with_disk`]).
    disk: Option<Arc<DiskCache>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    races: AtomicU64,
    verify_rejects: AtomicU64,
    tune_panics: AtomicU64,
    tune_timeouts: AtomicU64,
    tune_pruned: AtomicU64,
    stages: PassStats,
    memo: CompileMemo,
}

impl Default for KernelCache {
    fn default() -> Self {
        Self::new()
    }
}

impl KernelCache {
    /// An empty cache.
    pub fn new() -> Self {
        // Register the mirrored registry counters up front: a metrics dump
        // always shows them (at zero if nothing happened), so consumers of
        // `lgenc --metrics` can rely on the keys existing.
        for name in [
            "lgen.cache.hits",
            "lgen.cache.misses",
            "lgen.cache.inserts",
            "lgen.cache.races",
            "lgen.cache.verify_rejects",
            "lgen.tune.panics",
            "lgen.tune.timeouts",
            "lgen.tune.candidates_pruned",
        ] {
            lgen_telemetry::counter(name);
        }
        KernelCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            programs: Mutex::new(HashMap::new()),
            disk: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            races: AtomicU64::new(0),
            verify_rejects: AtomicU64::new(0),
            tune_panics: AtomicU64::new(0),
            tune_timeouts: AtomicU64::new(0),
            tune_pruned: AtomicU64::new(0),
            stages: PassStats::new(),
            memo: CompileMemo::new(),
        }
    }

    /// Attaches a persistent on-disk tier: memory misses consult `disk`
    /// before compiling, and fresh compiles are spilled to it, so a
    /// restarted process warm-starts from the directory. The disk tier is
    /// strictly behind the memory map — a disk hit is promoted into
    /// memory and later lookups never touch the file again.
    pub fn with_disk(mut self, disk: Arc<DiskCache>) -> Self {
        self.disk = Some(disk);
        self
    }

    /// The attached persistent tier, if any.
    pub fn disk(&self) -> Option<&Arc<DiskCache>> {
        self.disk.as_ref()
    }

    /// Behaviour counters of the attached persistent tier, if any.
    pub fn disk_stats(&self) -> Option<DiskStats> {
        self.disk.as_ref().map(|d| d.stats())
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<HashMap<CacheKey, Arc<Kernel>>> {
        // The BLAC fingerprint is stable and already well mixed; fold in
        // the config/name via the std hasher, plus the pipeline's spec
        // fingerprint explicitly, for shard spread.
        let mut h = std::hash::DefaultHasher::new();
        key.cfg.hash(&mut h);
        key.name.hash(&mut h);
        let idx = (key.blac.fingerprint() ^ h.finish() ^ key.cfg.pipeline.fingerprint()) as usize
            & (SHARDS - 1);
        &self.shards[idx]
    }

    /// Looks up a kernel without compiling. Counts a hit or a miss.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Kernel>> {
        let found = self.shard(key).lock().get(key).cloned();
        match &found {
            Some(_) => self.record_hit(),
            None => self.record_miss(),
        };
        found
    }

    fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        metric_counter!("lgen.cache.hits").inc();
    }

    fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        metric_counter!("lgen.cache.misses").inc();
    }

    /// Returns the cached kernel for `(blac, name, cfg)`, compiling and
    /// inserting it on a miss. Compilation runs outside the shard lock.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.verify` is enabled and compilation fails
    /// verification; use [`try_get_or_compile`](Self::try_get_or_compile)
    /// to handle that case.
    pub fn get_or_compile(&self, blac: &Blac, name: &str, cfg: &CompileConfig) -> Arc<Kernel> {
        self.try_get_or_compile(blac, name, cfg)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`get_or_compile`](Self::get_or_compile) that reports verification
    /// failures instead of panicking. A kernel that fails verification is
    /// *not* inserted (the failure is not cached — every retry re-checks)
    /// and is counted in [`CacheStats::verify_rejects`].
    pub fn try_get_or_compile(
        &self,
        blac: &Blac,
        name: &str,
        cfg: &CompileConfig,
    ) -> Result<Arc<Kernel>, VerifyFailure> {
        self.try_get_or_compile_tagged(blac, name, cfg)
            .map(|(k, _)| k)
    }

    /// [`try_get_or_compile`](Self::try_get_or_compile) that also reports
    /// whether the kernel was served from cache (`true` on a hit). The
    /// autotuner uses this to tag each candidate span with `cache=hit` or
    /// `cache=miss` without racing on counter deltas.
    pub fn try_get_or_compile_tagged(
        &self,
        blac: &Blac,
        name: &str,
        cfg: &CompileConfig,
    ) -> Result<(Arc<Kernel>, bool), VerifyFailure> {
        self.try_get_or_compile_outcome(blac, name, cfg)
            .map(|(k, o)| (k, o.is_cache_hit()))
    }

    /// [`try_get_or_compile`](Self::try_get_or_compile) that reports which
    /// tier served the kernel ([`CompileOutcome`]); the compile service's
    /// hit-rate accounting is built on this.
    pub fn try_get_or_compile_outcome(
        &self,
        blac: &Blac,
        name: &str,
        cfg: &CompileConfig,
    ) -> Result<(Arc<Kernel>, CompileOutcome), VerifyFailure> {
        let key = CacheKey {
            blac: blac.clone(),
            name: name.to_string(),
            cfg: cfg.clone(),
        };
        if let Some(k) = self.shard(&key).lock().get(&key) {
            self.record_hit();
            return Ok((k.clone(), CompileOutcome::Memory));
        }
        self.record_miss();
        // Consult the persistent tier before paying for the pipeline; a
        // verified disk entry is promoted into the memory map.
        let disk_id = self
            .disk
            .as_ref()
            .map(|d| (d.clone(), stable_fingerprint(&key), format!("{key:?}")));
        if let Some((disk, fp, desc)) = &disk_id {
            if let Some(kernel) = disk.load(*fp, desc) {
                let k = self.promote(key, Arc::new(kernel));
                return Ok((k, CompileOutcome::Disk));
            }
        }
        // Eligible configs compile through the cross-candidate memo: the
        // exact key missed, but the lowering (and often the optimized
        // kernel) may be shared with an equivalent candidate — the
        // returned `Arc` is then the *same allocation* across all of them,
        // which downstream consumers (the autotuner's evaluation dedup)
        // rely on.
        let kernel = if CompileMemo::eligible(cfg) {
            match try_compile_memoized(blac, name, cfg, Some(&self.stages), &self.memo) {
                Ok((k, _memo_hit)) => k,
                Err(e) => {
                    self.record_verify_reject();
                    return Err(e);
                }
            }
        } else {
            match try_compile_with_stats(blac, name, cfg, Some(&self.stages)) {
                Ok(k) => Arc::new(k),
                Err(e) => {
                    self.record_verify_reject();
                    return Err(e);
                }
            }
        };
        if let Some((disk, fp, desc)) = &disk_id {
            disk.store(*fp, desc, &kernel);
        }
        Ok((self.promote(key, kernel), CompileOutcome::Compiled))
    }

    /// Installs a kernel for `key`, deferring to a racing insert (both
    /// kernels are identical; everyone shares the incumbent `Arc`).
    fn promote(&self, key: CacheKey, kernel: Arc<Kernel>) -> Arc<Kernel> {
        let mut shard = self.shard(&key).lock();
        match shard.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                // Another thread compiled the same point concurrently;
                // everyone shares its (identical) kernel.
                self.races.fetch_add(1, Ordering::Relaxed);
                metric_counter!("lgen.cache.races").inc();
                e.get().clone()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                self.inserts.fetch_add(1, Ordering::Relaxed);
                metric_counter!("lgen.cache.inserts").inc();
                e.insert(kernel).clone()
            }
        }
    }

    /// Returns the cached kernel for a whole program, compiling and
    /// inserting it on a miss — the [`get_or_compile`](Self::get_or_compile)
    /// analogue for multi-statement inputs (`policies` is the optional
    /// joint per-statement unroll genome).
    ///
    /// # Panics
    ///
    /// Panics if the program does not validate or compilation fails
    /// verification.
    pub fn get_or_compile_program(
        &self,
        program: &Program,
        name: &str,
        cfg: &CompileConfig,
        policies: Option<&[UnrollPolicy]>,
    ) -> Arc<Kernel> {
        self.try_get_or_compile_program(program, name, cfg, policies)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`get_or_compile_program`](Self::get_or_compile_program) that
    /// reports verification failures instead of panicking. Eligible
    /// configs route through the cross-candidate program memo, so a joint
    /// tuning sweep fuses and lowers the program once and shares the
    /// pass-pipeline output across genomes with equal effect.
    pub fn try_get_or_compile_program(
        &self,
        program: &Program,
        name: &str,
        cfg: &CompileConfig,
        policies: Option<&[UnrollPolicy]>,
    ) -> Result<Arc<Kernel>, VerifyFailure> {
        self.try_get_or_compile_program_outcome(program, name, cfg, policies)
            .map(|(k, _)| k)
    }

    /// [`try_get_or_compile_program`](Self::try_get_or_compile_program)
    /// that reports which tier served the kernel — the program analogue of
    /// [`try_get_or_compile_outcome`](Self::try_get_or_compile_outcome),
    /// including the persistent-tier consult/spill.
    pub fn try_get_or_compile_program_outcome(
        &self,
        program: &Program,
        name: &str,
        cfg: &CompileConfig,
        policies: Option<&[UnrollPolicy]>,
    ) -> Result<(Arc<Kernel>, CompileOutcome), VerifyFailure> {
        let key = ProgramCacheKey {
            program: program.clone(),
            name: name.to_string(),
            cfg: cfg.clone(),
            policies: policies.map(|p| p.to_vec()),
        };
        if let Some(k) = self.programs.lock().get(&key) {
            self.record_hit();
            return Ok((k.clone(), CompileOutcome::Memory));
        }
        self.record_miss();
        let disk_id = self
            .disk
            .as_ref()
            .map(|d| (d.clone(), stable_fingerprint(&key), format!("{key:?}")));
        if let Some((disk, fp, desc)) = &disk_id {
            if let Some(kernel) = disk.load(*fp, desc) {
                let k = self.promote_program(key, Arc::new(kernel));
                return Ok((k, CompileOutcome::Disk));
            }
        }
        let kernel = if CompileMemo::eligible(cfg) {
            match try_compile_program_memoized(
                program,
                name,
                cfg,
                policies,
                Some(&self.stages),
                &self.memo,
            ) {
                Ok(k) => k,
                Err(e) => {
                    self.record_verify_reject();
                    return Err(e);
                }
            }
        } else {
            match try_compile_program_with(program, name, cfg, policies, Some(&self.stages)) {
                Ok(c) => Arc::new(c.kernel),
                Err(e) => {
                    self.record_verify_reject();
                    return Err(e);
                }
            }
        };
        if let Some((disk, fp, desc)) = &disk_id {
            disk.store(*fp, desc, &kernel);
        }
        Ok((self.promote_program(key, kernel), CompileOutcome::Compiled))
    }

    /// [`promote`](Self::promote) for the program map.
    fn promote_program(&self, key: ProgramCacheKey, kernel: Arc<Kernel>) -> Arc<Kernel> {
        let mut map = self.programs.lock();
        match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.races.fetch_add(1, Ordering::Relaxed);
                metric_counter!("lgen.cache.races").inc();
                e.get().clone()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                self.inserts.fetch_add(1, Ordering::Relaxed);
                metric_counter!("lgen.cache.inserts").inc();
                e.insert(kernel).clone()
            }
        }
    }

    /// Inserts a pre-built kernel under an explicit key, replacing any
    /// resident entry. Used to seed a cache with externally produced
    /// kernels (and, in tests, to plant corrupt candidates that exercise
    /// the autotuner's verification gate).
    pub fn insert(&self, key: CacheKey, kernel: Arc<Kernel>) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        metric_counter!("lgen.cache.inserts").inc();
        self.shard(&key).lock().insert(key, kernel);
    }

    /// Counts a verification rejection decided outside the cache (the
    /// autotuner re-verifies even cache-served kernels before measuring).
    pub fn record_verify_reject(&self) {
        self.verify_rejects.fetch_add(1, Ordering::Relaxed);
        metric_counter!("lgen.cache.verify_rejects").inc();
    }

    /// Counts a tuning candidate whose evaluation panicked (contained by
    /// the fault-tolerant pool).
    pub fn record_tune_panic(&self) {
        self.tune_panics.fetch_add(1, Ordering::Relaxed);
        metric_counter!("lgen.tune.panics").inc();
    }

    /// Counts a tuning candidate abandoned at its deadline or skipped by
    /// an exhausted search budget.
    pub fn record_tune_timeout(&self) {
        self.tune_timeouts.fetch_add(1, Ordering::Relaxed);
        metric_counter!("lgen.tune.timeouts").inc();
    }

    /// Counts `n` tuning candidates the static cost model pruned from the
    /// measured set (`--prune`); they never reached validation or the
    /// simulator.
    pub fn record_tune_pruned(&self, n: u64) {
        self.tune_pruned.fetch_add(n, Ordering::Relaxed);
        metric_counter!("lgen.tune.candidates_pruned").add(n);
    }

    /// Number of resident kernels (single-BLAC and program entries).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum::<usize>() + self.programs.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().clear();
        }
        self.programs.lock().clear();
    }

    /// Snapshot of the behaviour counters.
    pub fn stats(&self) -> CacheStats {
        let (memo_hits, memo_misses) = self.memo.stats();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            races: self.races.load(Ordering::Relaxed),
            verify_rejects: self.verify_rejects.load(Ordering::Relaxed),
            tune_panics: self.tune_panics.load(Ordering::Relaxed),
            tune_timeouts: self.tune_timeouts.load(Ordering::Relaxed),
            tune_pruned: self.tune_pruned.load(Ordering::Relaxed),
            memo_hits,
            memo_misses,
            entries: self.len(),
        }
    }

    /// The cross-candidate compile memo behind this cache (lowering and
    /// optimized-subtree sharing for [`CompileMemo::eligible`] configs).
    pub fn memo(&self) -> &CompileMemo {
        &self.memo
    }

    /// Per-pass dynamic counters for compiles this cache performed: one
    /// row per pass actually run (plus `codegen`), in first-run order.
    pub fn pass_stats(&self) -> &PassStats {
        &self.stages
    }

    /// One coherent snapshot of the behaviour counters *and* the per-pass
    /// timing rows, read back-to-back so `--cache-stats` cannot show a
    /// counter total and a pass table from different moments of a running
    /// `tune_many`.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            stats: self.stats(),
            passes: self.stages.rows(),
            compiles: self.stages.compiles(),
        }
    }
}

/// A single-moment view of a [`KernelCache`]: behaviour counters plus the
/// per-pass timing table, captured together by [`KernelCache::snapshot`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Behaviour counters.
    pub stats: CacheStats,
    /// `(pass name, cumulative nanoseconds, runs)` rows in first-run order.
    pub passes: Vec<(String, u64, u64)>,
    /// Full pipeline runs behind those rows.
    pub compiles: u64,
}

impl fmt::Display for CacheSnapshot {
    /// Renders through the telemetry summary formatter: the counter line,
    /// then each pass row as a pseudo-span so the output shape matches
    /// `--trace-out`'s tree summary.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cache: {}", self.stats)?;
        writeln!(f, "compiles: {}", self.compiles)?;
        writeln!(
            f,
            "memo: {} hits / {} misses",
            self.stats.memo_hits, self.stats.memo_misses
        )?;
        let spans: Vec<lgen_telemetry::SpanRecord> = self
            .passes
            .iter()
            .enumerate()
            .map(|(i, (name, ns, runs))| lgen_telemetry::SpanRecord {
                id: i as u64 + 1,
                parent: None,
                name: name.clone(),
                start_us: 0,
                dur_us: ns / 1_000,
                tid: 0,
                attrs: vec![("runs".to_string(), runs.to_string())],
            })
            .collect();
        f.write_str(&lgen_telemetry::summary_tree(&spans))
    }
}

impl fmt::Debug for KernelCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KernelCache")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lgen_isa::Microarch;
    use lgen_ll::paper;

    #[test]
    fn second_compile_is_a_hit_with_identical_kernel() {
        let cache = KernelCache::new();
        let blac = paper::gemv(4, 12);
        let cfg = CompileConfig::full(Microarch::Atom);
        let cold = cache.get_or_compile(&blac, "k", &cfg);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.entries), (0, 1, 1, 1));
        let warm = cache.get_or_compile(&blac, "k", &cfg);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.entries), (1, 1, 1, 1));
        assert!(
            Arc::ptr_eq(&cold, &warm),
            "warm hit must share the cold kernel"
        );
        assert_eq!(*cold, *warm);
        // The pipeline ran exactly once.
        assert_eq!(cache.pass_stats().compiles(), 1);
    }

    #[test]
    fn distinct_configs_and_names_do_not_collide() {
        let cache = KernelCache::new();
        let blac = paper::axpy(16);
        let full = CompileConfig::full(Microarch::Atom);
        let base = CompileConfig::base(Microarch::Atom);
        let a = cache.get_or_compile(&blac, "k", &full);
        let b = cache.get_or_compile(&blac, "k", &base);
        let c = cache.get_or_compile(&blac, "other", &full);
        assert_ne!(*a, *b, "different configs must compile different kernels");
        assert_eq!(c.name, "other");
        assert_eq!(cache.stats().entries, 3);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn structurally_equal_blacs_share_an_entry() {
        let cache = KernelCache::new();
        let cfg = CompileConfig::full(Microarch::CortexA8);
        let a = cache.get_or_compile(&paper::gemm(4, 8, 4), "k", &cfg);
        let b = cache.get_or_compile(&paper::gemm(4, 8, 4), "k", &cfg);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().hits, 1);
        // A different size is a different structure.
        let _ = cache.get_or_compile(&paper::gemm(4, 8, 8), "k", &cfg);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn concurrent_compiles_of_one_point_share_a_kernel() {
        let cache = KernelCache::new();
        let blac = paper::mvm(4, 32);
        let cfg = CompileConfig::full(Microarch::Atom);
        let kernels: Vec<Arc<Kernel>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| cache.get_or_compile(&blac, "k", &cfg)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for k in &kernels[1..] {
            assert!(Arc::ptr_eq(&kernels[0], k));
        }
        let s = cache.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.hits + s.misses, 4);
        assert_eq!(s.inserts, 1);
    }

    #[test]
    fn tagged_lookup_reports_hit_and_miss() {
        let cache = KernelCache::new();
        let blac = paper::axpy(8);
        let cfg = CompileConfig::full(Microarch::Atom);
        let (cold, hit) = cache.try_get_or_compile_tagged(&blac, "k", &cfg).unwrap();
        assert!(!hit);
        let (warm, hit) = cache.try_get_or_compile_tagged(&blac, "k", &cfg).unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&cold, &warm));
    }

    #[test]
    fn snapshot_is_coherent_and_prints_pass_rows() {
        let cache = KernelCache::new();
        let blac = paper::gemv(4, 8);
        let cfg = CompileConfig::full(Microarch::Atom);
        cache.get_or_compile(&blac, "k", &cfg);
        cache.get_or_compile(&blac, "k", &cfg);
        let snap = cache.snapshot();
        assert_eq!((snap.stats.hits, snap.stats.misses), (1, 1));
        assert_eq!(snap.compiles, 1);
        let names: Vec<&str> = snap.passes.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(
            names,
            ["codegen", "unroll", "scalrep", "copyprop", "dce", "align"]
        );
        let text = snap.to_string();
        assert!(text.contains("1 hits / 1 misses"), "{text}");
        assert!(text.contains("codegen"), "{text}");
        assert!(text.contains("runs=1"), "{text}");
    }

    #[test]
    fn cache_counters_mirror_into_the_metrics_registry() {
        let before = lgen_telemetry::counter("lgen.cache.hits").get();
        let cache = KernelCache::new();
        let blac = paper::axpy(12);
        let cfg = CompileConfig::full(Microarch::Atom);
        cache.get_or_compile(&blac, "k", &cfg);
        cache.get_or_compile(&blac, "k", &cfg);
        assert!(lgen_telemetry::counter("lgen.cache.hits").get() > before);
    }

    #[test]
    fn disk_tier_survives_a_cache_restart() {
        let dir = std::env::temp_dir().join(format!("lgen-cache-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let blac = paper::gemv(4, 8);
        let program =
            lgen_ll::parse_program("A = matrix(4, 8)\nx = vector(8)\ny = vector(4)\ny = A * x;")
                .unwrap();
        let cfg = CompileConfig::full(Microarch::Atom);

        let disk = Arc::new(DiskCache::open(&dir).unwrap());
        let cache = KernelCache::new().with_disk(disk.clone());
        let (cold, o) = cache.try_get_or_compile_outcome(&blac, "k", &cfg).unwrap();
        assert_eq!(o, CompileOutcome::Compiled);
        assert!(!o.is_cache_hit());
        let (_, o) = cache
            .try_get_or_compile_program_outcome(&program, "p", &cfg, None)
            .unwrap();
        assert_eq!(o, CompileOutcome::Compiled);
        assert_eq!(disk.stats().persisted, 2);
        let (_, o) = cache.try_get_or_compile_outcome(&blac, "k", &cfg).unwrap();
        assert_eq!(o, CompileOutcome::Memory, "second lookup stays in memory");

        // "Restart": a fresh in-memory cache over the same directory must
        // warm-start from disk, then keep the promoted entry in memory.
        let disk2 = Arc::new(DiskCache::open(&dir).unwrap());
        let cache2 = KernelCache::new().with_disk(disk2.clone());
        let (warm, o) = cache2.try_get_or_compile_outcome(&blac, "k", &cfg).unwrap();
        assert_eq!(o, CompileOutcome::Disk);
        assert!(o.is_cache_hit());
        assert_eq!(*cold, *warm, "disk round-trip must preserve the kernel");
        let (_, o) = cache2
            .try_get_or_compile_program_outcome(&program, "p", &cfg, None)
            .unwrap();
        assert_eq!(o, CompileOutcome::Disk);
        let (_, o) = cache2.try_get_or_compile_outcome(&blac, "k", &cfg).unwrap();
        assert_eq!(o, CompileOutcome::Memory);
        assert_eq!(cache2.disk_stats().unwrap().hits, 2);
        assert_eq!(
            cache2.pass_stats().compiles(),
            0,
            "warm start compiles nothing"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_display_is_informative() {
        let cache = KernelCache::new();
        let blac = paper::axpy(8);
        let cfg = CompileConfig::full(Microarch::Atom);
        cache.get_or_compile(&blac, "k", &cfg);
        cache.get_or_compile(&blac, "k", &cfg);
        let text = cache.stats().to_string();
        assert!(text.contains("1 hits / 1 misses"), "{text}");
        assert!(text.contains("50.0% hit rate"), "{text}");
    }
}
