//! A persistent, content-addressed on-disk kernel cache.
//!
//! The compile service (`crates/serve`) amortizes compilation across
//! *restarts*, not just across requests: every kernel the in-memory
//! [`KernelCache`](crate::cache::KernelCache) compiles is spilled to disk,
//! and a memory miss consults the disk before running the pipeline. The
//! daemon can be killed and restarted and warm traffic keeps hitting.
//!
//! **Addressing.** Entries are keyed by a *stable* 64-bit fingerprint of
//! the full cache key (BLAC/program structure × kernel name × pipeline ×
//! config × genome) computed by [`StableHasher`] — FNV-1a, byte-order
//! fixed, identical across processes and builds, unlike
//! `std::hash::DefaultHasher`, whose output is explicitly not guaranteed
//! stable. One entry per fingerprint: `<dir>/<fp:016x>.lgk`.
//!
//! **Integrity.** A 64-bit fingerprint can collide and a file can rot, so
//! every entry carries (a) the format magic + version, (b) the key
//! fingerprint it was stored under, (c) an FNV checksum over the variable
//! payload, and (d) the full `Debug` rendering of the key. On load all
//! four are checked: structural damage **quarantines** the file (moved
//! into `quarantine/`, never deleted, never trusted) and reports a miss; a
//! well-formed entry whose key description differs is a fingerprint
//! collision and reports a plain miss. The kernel bytes themselves decode
//! through the validating [`lgen_cir::codec`], which rejects rather than
//! panics on malformed input — a corrupt cache can cost a recompile, never
//! the daemon.
//!
//! **Atomicity.** Writers serialize into a process+sequence-unique temp
//! file in the cache directory and `rename(2)` it into place, so readers
//! (including concurrent daemons sharing a directory) only ever observe
//! complete entries; the last writer of a fingerprint wins with an
//! identical payload (compilation is deterministic).

use lgen_cir::{codec, Kernel};
use lgen_telemetry::metric_counter;
use std::fmt;
use std::fs;
use std::hash::{Hash, Hasher};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// On-disk entry format revision (independent of
/// [`codec::CODEC_VERSION`], which versions the kernel payload inside).
pub const DISK_FORMAT_VERSION: u32 = 1;

const MAGIC: [u8; 4] = *b"LGKC";
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a as a [`std::hash::Hasher`]: deterministic across processes,
/// platforms, and builds, which `DefaultHasher` is documented **not** to
/// be. Used for every fingerprint that leaves the process (disk entries,
/// wire-level request coalescing).
pub struct StableHasher(u64);

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher(FNV_OFFSET)
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// The stable fingerprint of any hashable key (see [`StableHasher`]).
pub fn stable_fingerprint<T: Hash + ?Sized>(key: &T) -> u64 {
    let mut h = StableHasher::new();
    key.hash(&mut h);
    h.finish()
}

fn fnv_checksum(parts: &[&[u8]]) -> u64 {
    let mut h = StableHasher::new();
    for p in parts {
        Hasher::write(&mut h, p);
    }
    h.finish()
}

/// Counters describing disk-cache behaviour; all monotonic, cheap to read.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Loads that returned a verified kernel.
    pub hits: u64,
    /// Loads that found no (usable) entry.
    pub misses: u64,
    /// Entries written (temp-file + rename completed).
    pub persisted: u64,
    /// Corrupt entries moved into `quarantine/`.
    pub quarantined: u64,
    /// I/O errors (reads or writes) swallowed; the cache degrades to a
    /// pass-through, it never takes the compile path down.
    pub io_errors: u64,
}

impl fmt::Display for DiskStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses, {} persisted, {} quarantined",
            self.hits, self.misses, self.persisted, self.quarantined
        )?;
        if self.io_errors > 0 {
            write!(f, ", {} io error(s)", self.io_errors)?;
        }
        Ok(())
    }
}

/// A directory of content-addressed kernel entries (see module docs).
pub struct DiskCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    persisted: AtomicU64,
    quarantined: AtomicU64,
    io_errors: AtomicU64,
    tmp_seq: AtomicU64,
}

impl DiskCache {
    /// Opens (creating if needed) a cache rooted at `dir`, including its
    /// `quarantine/` subdirectory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(dir.join("quarantine"))?;
        for name in [
            "lgen.disk.hits",
            "lgen.disk.misses",
            "lgen.disk.persisted",
            "lgen.disk.quarantined",
        ] {
            lgen_telemetry::counter(name);
        }
        Ok(DiskCache {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            persisted: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, fp: u64) -> PathBuf {
        self.dir.join(format!("{fp:016x}.lgk"))
    }

    /// Loads and fully verifies the entry for `fp`. `key_desc` must be the
    /// exact description the entry was stored under (the `Debug` rendering
    /// of the cache key); a mismatch is a fingerprint collision and loads
    /// nothing. Corrupt entries are quarantined. Never panics; any I/O or
    /// decode problem is a miss.
    pub fn load(&self, fp: u64, key_desc: &str) -> Option<Kernel> {
        let path = self.entry_path(fp);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                if e.kind() != io::ErrorKind::NotFound {
                    self.io_errors.fetch_add(1, Ordering::Relaxed);
                }
                self.record_miss();
                return None;
            }
        };
        match parse_entry(&bytes, fp) {
            Ok((stored_desc, payload)) => {
                if stored_desc != key_desc.as_bytes() {
                    // A different key hashed to the same fingerprint: the
                    // entry is valid, just not ours.
                    self.record_miss();
                    return None;
                }
                match codec::decode_kernel(payload) {
                    Ok(kernel) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        metric_counter!("lgen.disk.hits").inc();
                        Some(kernel)
                    }
                    Err(_) => {
                        // Checksum passed but the payload does not decode:
                        // a stale codec revision or a bug — either way,
                        // quarantine and recompile.
                        self.quarantine(&path);
                        self.record_miss();
                        None
                    }
                }
            }
            Err(_) => {
                self.quarantine(&path);
                self.record_miss();
                None
            }
        }
    }

    /// Serializes `kernel` and atomically installs it as the entry for
    /// `fp`. Returns whether the entry landed; failures are counted and
    /// swallowed (a full disk must not fail compiles).
    pub fn store(&self, fp: u64, key_desc: &str, kernel: &Kernel) -> bool {
        let payload = codec::encode_kernel(kernel);
        let desc = key_desc.as_bytes();
        let checksum = fnv_checksum(&[desc, &payload]);
        let mut bytes = Vec::with_capacity(4 + 4 + 8 + 8 + 8 + desc.len() + 8 + payload.len());
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&DISK_FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&fp.to_le_bytes());
        bytes.extend_from_slice(&checksum.to_le_bytes());
        bytes.extend_from_slice(&(desc.len() as u64).to_le_bytes());
        bytes.extend_from_slice(desc);
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&payload);

        let tmp = self.dir.join(format!(
            ".tmp-{}-{}-{fp:016x}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let write = (|| -> io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            fs::rename(&tmp, self.entry_path(fp))
        })();
        match write {
            Ok(()) => {
                self.persisted.fetch_add(1, Ordering::Relaxed);
                metric_counter!("lgen.disk.persisted").inc();
                true
            }
            Err(_) => {
                self.io_errors.fetch_add(1, Ordering::Relaxed);
                let _ = fs::remove_file(&tmp);
                false
            }
        }
    }

    fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        metric_counter!("lgen.disk.misses").inc();
    }

    /// Moves a damaged entry into `quarantine/` (best effort; falls back
    /// to removal so the poisoned bytes are never re-read either way).
    fn quarantine(&self, path: &Path) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        metric_counter!("lgen.disk.quarantined").inc();
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "entry".to_string());
        let dest = self.dir.join("quarantine").join(name);
        if fs::rename(path, &dest).is_err() && fs::remove_file(path).is_err() {
            self.io_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of live entries on disk (excludes `quarantine/` and temp
    /// files). Walks the directory; intended for tests and stats requests,
    /// not hot paths.
    pub fn entries(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().map(|x| x == "lgk").unwrap_or(false))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Number of quarantined entries.
    pub fn quarantine_entries(&self) -> usize {
        fs::read_dir(self.dir.join("quarantine"))
            .map(|rd| rd.filter_map(|e| e.ok()).count())
            .unwrap_or(0)
    }

    /// Snapshot of the behaviour counters.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            persisted: self.persisted.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for DiskCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiskCache")
            .field("dir", &self.dir)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Splits a raw entry into `(key description, kernel payload)` after
/// checking magic, format version, stored fingerprint, and checksum.
fn parse_entry(bytes: &[u8], want_fp: u64) -> Result<(&[u8], &[u8]), &'static str> {
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], &'static str> {
        if bytes.len() - *pos < n {
            return Err("truncated");
        }
        let s = &bytes[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };
    let mut pos = 0;
    if take(&mut pos, 4)? != MAGIC {
        return Err("bad magic");
    }
    let version = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
    if version != DISK_FORMAT_VERSION {
        return Err("format version");
    }
    let stored_fp = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"));
    if stored_fp != want_fp {
        return Err("fingerprint mismatch");
    }
    let checksum = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"));
    let desc_len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes")) as usize;
    if desc_len > bytes.len() - pos {
        return Err("truncated");
    }
    let desc = take(&mut pos, desc_len)?;
    let payload_len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes")) as usize;
    if payload_len > bytes.len() - pos {
        return Err("truncated");
    }
    let payload = take(&mut pos, payload_len)?;
    if pos != bytes.len() {
        return Err("trailing bytes");
    }
    if fnv_checksum(&[desc, payload]) != checksum {
        return Err("checksum");
    }
    Ok((desc, payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompileConfig;
    use crate::pipeline::compile;
    use lgen_isa::Microarch;
    use lgen_ll::paper;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lgen-disk-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn sample() -> Kernel {
        compile(
            &paper::gemv(4, 8),
            "disk_sample",
            &CompileConfig::full(Microarch::Atom),
        )
    }

    #[test]
    fn store_then_load_roundtrips() {
        let cache = DiskCache::open(tmpdir("roundtrip")).unwrap();
        let k = sample();
        assert!(cache.store(42, "key", &k));
        assert_eq!(cache.load(42, "key").as_ref(), Some(&k));
        assert_eq!(cache.entries(), 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.persisted, s.quarantined), (1, 1, 0));
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn absent_and_collided_entries_are_plain_misses() {
        let cache = DiskCache::open(tmpdir("miss")).unwrap();
        assert!(cache.load(7, "key").is_none());
        let k = sample();
        cache.store(7, "key-a", &k);
        // Same fingerprint, different key: collision, not corruption.
        assert!(cache.load(7, "key-b").is_none());
        assert_eq!(cache.stats().quarantined, 0);
        assert_eq!(cache.entries(), 1, "collided entry must survive");
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_entries_are_quarantined_not_loaded() {
        let cache = DiskCache::open(tmpdir("corrupt")).unwrap();
        let k = sample();
        cache.store(9, "key", &k);
        let path = cache.entry_path(9);
        // Flip a byte deep in the payload: checksum must catch it.
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(cache.load(9, "key").is_none());
        assert_eq!(cache.stats().quarantined, 1);
        assert_eq!(cache.entries(), 0);
        assert_eq!(cache.quarantine_entries(), 1);
        // The quarantined entry stays out of the way of a fresh store.
        cache.store(9, "key", &k);
        assert!(cache.load(9, "key").is_some());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn truncated_and_foreign_files_are_quarantined() {
        let cache = DiskCache::open(tmpdir("foreign")).unwrap();
        let k = sample();
        cache.store(11, "key", &k);
        let path = cache.entry_path(11);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(cache.load(11, "key").is_none());
        fs::write(cache.entry_path(12), b"not a cache entry").unwrap();
        assert!(cache.load(12, "key").is_none());
        assert_eq!(cache.stats().quarantined, 2);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn stable_fingerprint_is_fixed_across_runs() {
        // Pin the FNV output so an accidental hasher change (which would
        // orphan every existing cache directory) fails loudly.
        assert_eq!(stable_fingerprint(&()), FNV_OFFSET);
        assert_eq!(stable_fingerprint("lgen"), 8112686060438997640);
        let a = stable_fingerprint(&(1u32, "x"));
        let b = stable_fingerprint(&(1u32, "x"));
        assert_eq!(a, b);
        assert_ne!(a, stable_fingerprint(&(2u32, "x")));
    }
}
